//! Lossy-link robustness: the PODC 2005 model is synchronous and
//! fault-free, but the library must degrade gracefully, not panic. Under
//! deterministic message-drop plans every distributed algorithm must still
//! terminate within its fixed schedule and emit a *feasible* solution
//! (clients recover through local fallbacks); quality guarantees are
//! explicitly out of scope with faults.

use distfl::congest::FaultPlan;
use distfl::prelude::*;

fn workloads(seed: u64) -> Vec<Instance> {
    vec![
        UniformRandom::new(6, 20).unwrap().generate(seed).unwrap(),
        GridNetwork::new(8, 8, 5, 18).unwrap().generate(seed).unwrap(),
    ]
}

#[test]
fn paydual_survives_light_and_heavy_loss() {
    for inst in workloads(4) {
        for drop_prob in [0.1, 0.5, 1.0] {
            let params = PayDualParams {
                fault: Some(FaultPlan::drop_with_probability(drop_prob, 99)),
                ..PayDualParams::with_phases(6)
            };
            let out = PayDual::new(params).run(&inst, 2).unwrap();
            out.solution.check_feasible(&inst).unwrap();
            let t = out.transcript.unwrap();
            if drop_prob == 1.0 {
                assert_eq!(t.total_messages(), 0, "nothing should survive total loss");
            } else {
                assert!(t.total_dropped() > 0, "drops should be observed at p={drop_prob}");
            }
        }
    }
}

#[test]
fn bucket_survives_loss() {
    for inst in workloads(5) {
        let params = BucketParams {
            fault: Some(FaultPlan::drop_with_probability(0.4, 7)),
            ..BucketParams::new(4, 3)
        };
        let out = GreedyBucket::new(params).run(&inst, 3).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }
}

#[test]
fn distributed_rounding_survives_loss() {
    for inst in workloads(6) {
        let frac = distfl::core::fraclp::spread_fractional(&inst, 2);
        let params = DistRoundParams {
            fault: Some(FaultPlan::drop_with_probability(0.6, 13)),
            ..DistRoundParams::for_instance(&inst)
        };
        let out = distributed_round(&inst, &frac, params, 8).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }
}

#[test]
fn loss_degrades_quality_monotonically_in_expectation() {
    // Not a per-seed guarantee, so average over several seeds.
    let inst = UniformRandom::new(8, 40).unwrap().generate(10).unwrap();
    let avg_cost = |drop: f64| -> f64 {
        (0..8)
            .map(|seed| {
                let fault =
                    (drop > 0.0).then(|| FaultPlan::drop_with_probability(drop, 1000 + seed));
                let params = PayDualParams { fault, ..PayDualParams::with_phases(8) };
                PayDual::new(params).run(&inst, seed).unwrap().solution.cost(&inst).value()
            })
            .sum::<f64>()
            / 8.0
    };
    let clean = avg_cost(0.0);
    let heavy = avg_cost(0.9);
    assert!(
        heavy >= clean * 0.99,
        "heavy loss ({heavy}) should not beat the fault-free run ({clean})"
    );
}

#[test]
fn paydual_survives_crashed_facilities() {
    // Crash-stop failures: a facility dies mid-protocol. The remaining
    // nodes finish their fixed schedule and every client still ends up
    // with a usable assignment (via other facilities or local fallback).
    use distfl::congest::{CongestConfig, Network};
    use distfl::core::paydual::node as pd;
    use distfl::core::{node_role, topology_of, Role};

    let inst = UniformRandom::new(6, 20).unwrap().generate(12).unwrap();
    let phases = 6;
    for crash_round in [0u32, 4, 10] {
        let topo = topology_of(&inst).unwrap();
        let nodes = pd::build_nodes(&inst, phases, Default::default());
        let config = CongestConfig {
            // Facility 1 crashes.
            crashes: vec![(NodeId::new(1), crash_round)],
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, 3, config).unwrap();
        let total = distfl::core::theory::paydual_rounds(phases);
        net.run(total).unwrap();
        // Extract assignments with the public fallback accessors.
        let m = inst.num_facilities();
        let mut assignment = Vec::new();
        for (index, node) in net.nodes().iter().enumerate() {
            if let (Role::Client(_), pd::PayDualNode::Client(c)) =
                (node_role(m, NodeId::new(index as u32)), node)
            {
                let target = c
                    .connected_facility()
                    .or_else(|| c.fallback_facility())
                    .expect("clients always have a recovery target");
                assignment.push(target);
            }
        }
        let solution = distfl::instance::Solution::from_assignment(&inst, assignment).unwrap();
        solution
            .check_feasible(&inst)
            .unwrap_or_else(|e| panic!("crash at round {crash_round}: infeasible: {e}"));
    }
}

#[test]
fn fault_plans_are_reproducible_end_to_end() {
    let inst = GridNetwork::new(7, 7, 4, 15).unwrap().generate(3).unwrap();
    let params = PayDualParams {
        fault: Some(FaultPlan::drop_with_probability(0.3, 5)),
        ..PayDualParams::with_phases(5)
    };
    let a = PayDual::new(params).run(&inst, 9).unwrap();
    let b = PayDual::new(params).run(&inst, 9).unwrap();
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.transcript, b.transcript);
}
