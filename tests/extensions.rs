//! Integration of the extension modules: transforms feeding k-median,
//! capacitated pipelines, local search, audits, and the two straw-man
//! implementations agreeing with each other.

use distfl::core::{audit, capacitated, kmedian, localsearch, seqdist, seqsim};
use distfl::instance::transform;
use distfl::prelude::*;

#[test]
fn transformed_instances_flow_through_the_whole_stack() {
    // Generate, perturb, normalize — then solve distributed and audit.
    let raw = Clustered::new(3, 8, 24).unwrap().generate(42).unwrap();
    let noisy = transform::perturb(&raw, 0.1, 5).unwrap();
    let (inst, scale) = transform::normalize(&noisy).unwrap();
    assert!(scale > 0.0);

    let out = PayDual::new(PayDualParams::with_phases(8)).run(&inst, 1).unwrap();
    out.solution.check_feasible(&inst).unwrap();

    let (audited, transcript) = audit::distributed_cost(&inst, &out.solution).unwrap();
    assert!((audited - out.solution.cost(&inst).value()).abs() < 1e-9);
    assert!(transcript.congest_compliant(72));
}

#[test]
fn capacitated_kmedian_and_localsearch_compose() {
    let base = Euclidean::new(8, 32).unwrap().generate(9).unwrap();

    // Soft capacities via the distributed engine, polished by local search
    // on the base problem.
    let cap = capacitated::CapacitatedInstance::uniform(base.clone(), 5).unwrap();
    let engine = PayDual::new(PayDualParams::with_phases(8));
    let soft = capacitated::solve_soft(&cap, &engine, 3).unwrap();
    soft.check_feasible(&cap).unwrap();
    let hard = capacitated::solve_hard(&cap, &engine, 3).unwrap();
    assert!(hard.cost(&cap) <= soft.cost(&cap) + 1e-9);

    // k-median on the same geography.
    let km = kmedian::distributed(&base, 3, 8, 3).unwrap();
    assert!(km.solution.num_open() <= 3);

    // Local search can only improve the k-median-ignoring UFL view.
    let polished = localsearch::optimize(&base, &km.solution, 100);
    assert!(polished.final_cost <= polished.initial_cost + 1e-9);
}

#[test]
fn modeled_and_executed_strawmen_agree_on_solutions() {
    for seed in 0..3 {
        let inst = UniformRandom::new(6, 18).unwrap().generate(seed).unwrap();
        let modeled = seqsim::SimulatedSeqGreedy::new().run(&inst, 0).unwrap();
        let (executed, transcript) = seqdist::run_protocol(&inst).unwrap();
        assert_eq!(modeled.solution, executed, "seed {seed}");
        // The model and the measurement stay in the same ballpark.
        let model = modeled.modeled_rounds.unwrap();
        let measured = transcript.num_rounds();
        let factor = f64::from(measured) / f64::from(model);
        assert!((0.3..4.0).contains(&factor), "model {model} vs measured {measured}");
    }
}

#[test]
fn orlib_round_trip_preserves_algorithm_behavior() {
    use distfl::instance::orlib;
    let inst = UniformRandom::new(7, 21).unwrap().generate(11).unwrap();
    let text = orlib::to_string(&inst).unwrap();
    let parsed = orlib::from_str(&text).unwrap();
    assert_eq!(inst, parsed);
    let a = PayDual::new(PayDualParams::with_phases(6)).run(&inst, 2).unwrap();
    let b = PayDual::new(PayDualParams::with_phases(6)).run(&parsed, 2).unwrap();
    assert_eq!(a.solution, b.solution);
}

#[test]
fn merged_markets_solve_independently() {
    // A disjoint union of two markets must cost exactly the sum of the
    // parts under the exact solver.
    let a = UniformRandom::new(5, 10).unwrap().generate(1).unwrap();
    let b = Euclidean::new(5, 10).unwrap().generate(2).unwrap();
    let merged = transform::merge(&a, &b).unwrap();
    let opt_a = exact::solve(&a).unwrap().cost.value();
    let opt_b = exact::solve(&b).unwrap().cost.value();
    let opt_merged = exact::solve(&merged).unwrap().cost.value();
    assert!((opt_merged - opt_a - opt_b).abs() < 1e-9);
}
