//! Property-based tests over randomly structured instances.
//!
//! The strategy builds arbitrary *valid* sparse instances (every client
//! linked, at least one positive coefficient) and checks the core
//! invariants of every layer against them.

use proptest::prelude::*;

use distfl::core::theory;
use distfl::instance::textio;
use distfl::prelude::*;

/// A raw recipe for an instance the strategy can shrink over.
#[derive(Debug, Clone)]
struct Recipe {
    opening: Vec<u32>,
    /// Per client: (first facility link, extra link mask, base cost).
    clients: Vec<(usize, u8, u32)>,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    let opening = prop::collection::vec(0u32..500, 1..8);
    let clients = prop::collection::vec((0usize..64, any::<u8>(), 1u32..400), 1..20);
    (opening, clients).prop_map(|(opening, clients)| Recipe { opening, clients })
}

/// Deterministically materializes a recipe into a valid instance.
fn build(recipe: &Recipe) -> Instance {
    let m = recipe.opening.len();
    let mut b = InstanceBuilder::new();
    let fids: Vec<_> =
        recipe.opening.iter().map(|&f| b.add_facility(Cost::new(f64::from(f)).unwrap())).collect();
    for (ci, &(first, mask, base)) in recipe.clients.iter().enumerate() {
        let c = b.add_client();
        // Guaranteed link.
        let anchor = first % m;
        b.link(c, fids[anchor], Cost::new(f64::from(base)).unwrap()).unwrap();
        // Extra links from the mask bits.
        for (bit, &fid) in fids.iter().enumerate().take(8usize.min(m)) {
            if mask & (1 << bit) != 0 && bit != anchor {
                let cost = f64::from(base % (100 + bit as u32 + ci as u32) + 1);
                b.link(c, fid, Cost::new(cost).unwrap()).unwrap();
            }
        }
    }
    // The builder may reject the all-zero corner; nudge one opening cost.
    match b.clone().build() {
        Ok(inst) => inst,
        Err(_) => {
            let mut b2 = InstanceBuilder::new();
            let mut fids = Vec::new();
            for (i, &f) in recipe.opening.iter().enumerate() {
                let v = if i == 0 { f64::from(f) + 1.0 } else { f64::from(f) };
                fids.push(b2.add_facility(Cost::new(v).unwrap()));
            }
            for &(first, _, base) in &recipe.clients {
                let c = b2.add_client();
                b2.link(c, fids[first % m], Cost::new(f64::from(base)).unwrap()).unwrap();
            }
            b2.build().unwrap()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn paydual_is_feasible_and_respects_its_round_formula(
        recipe in recipe_strategy(),
        phases in 1u32..12,
        seed in 0u64..1000,
    ) {
        let inst = build(&recipe);
        let out = PayDual::new(PayDualParams::with_phases(phases)).run(&inst, seed).unwrap();
        out.solution.check_feasible(&inst).unwrap();
        let t = out.transcript.unwrap();
        prop_assert_eq!(t.num_rounds(), theory::paydual_rounds(phases));
        prop_assert!(t.congest_compliant(72));
    }

    #[test]
    fn exact_is_a_true_lower_bound_for_all_algorithms(
        recipe in recipe_strategy(),
        seed in 0u64..1000,
    ) {
        let inst = build(&recipe);
        let opt = exact::solve(&inst).unwrap().cost.value();
        let paydual =
            PayDual::new(PayDualParams::with_phases(6)).run(&inst, seed).unwrap();
        prop_assert!(paydual.solution.cost(&inst).value() >= opt - 1e-6);
        let (greedy, _) = distfl::core::greedy::solve(&inst);
        prop_assert!(greedy.cost(&inst).value() >= opt - 1e-6);
    }

    #[test]
    fn greedy_stays_within_harmonic_of_optimum(recipe in recipe_strategy()) {
        let inst = build(&recipe);
        let opt = exact::solve(&inst).unwrap().cost.value();
        let (greedy, _) = distfl::core::greedy::solve(&inst);
        let h = theory::harmonic(inst.num_clients());
        prop_assert!(
            greedy.cost(&inst).value() <= h * opt + 1e-6,
            "greedy {} vs H_n * OPT {}", greedy.cost(&inst).value(), h * opt
        );
    }

    #[test]
    fn duals_certify_bounds_below_the_optimum(
        recipe in recipe_strategy(),
        seed in 0u64..1000,
    ) {
        let inst = build(&recipe);
        let opt = exact::solve(&inst).unwrap().cost.value();
        let out = PayDual::new(PayDualParams::with_phases(8)).run(&inst, seed).unwrap();
        let lb = out.dual.unwrap().lower_bound(&inst, distfl::lp::TOLERANCE);
        prop_assert!(lb <= opt + 1e-6, "dual LB {} above OPT {}", lb, opt);
    }

    #[test]
    fn text_format_round_trips(recipe in recipe_strategy()) {
        let inst = build(&recipe);
        let text = textio::to_string(&inst);
        let parsed = textio::from_str(&text).unwrap();
        prop_assert_eq!(inst, parsed);
    }

    #[test]
    fn greedy_reassignment_never_increases_cost(
        recipe in recipe_strategy(),
        seed in 0u64..1000,
    ) {
        let inst = build(&recipe);
        let out = GreedyBucket::new(BucketParams::new(3, 2)).run(&inst, seed).unwrap();
        let improved = out.solution.reassign_greedily(&inst);
        prop_assert!(improved.cost(&inst) <= out.solution.cost(&inst));
    }

    #[test]
    fn trivial_lower_bound_is_sound(recipe in recipe_strategy()) {
        let inst = build(&recipe);
        let opt = exact::solve(&inst).unwrap().cost.value();
        prop_assert!(bounds::trivial_lower_bound(&inst) <= opt + 1e-9);
    }

    #[test]
    fn distributed_rounding_always_feasible(
        recipe in recipe_strategy(),
        width in 1usize..5,
        trials in 0u32..8,
        seed in 0u64..1000,
    ) {
        let inst = build(&recipe);
        let frac = distfl::core::fraclp::spread_fractional(&inst, width);
        frac.check_feasible(&inst, 1e-9).unwrap();
        let params = DistRoundParams { boost: 2.0, trials, threads: None, fault: None };
        let out = distributed_round(&inst, &frac, params, seed).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }
}
