//! End-to-end integration: every algorithm against every workload family,
//! validated for feasibility, certified ratios, and CONGEST discipline.

use distfl::instance::{metric, spread, textio};
use distfl::prelude::*;

/// All workload families at small, exactly-solvable sizes.
fn families(seed: u64) -> Vec<(&'static str, Instance)> {
    vec![
        ("uniform", UniformRandom::new(8, 30).unwrap().generate(seed).unwrap()),
        ("euclidean", Euclidean::new(7, 25).unwrap().generate(seed).unwrap()),
        ("clustered", Clustered::new(3, 8, 24).unwrap().generate(seed).unwrap()),
        ("grid", GridNetwork::new(10, 10, 8, 30).unwrap().generate(seed).unwrap()),
        ("powerlaw", PowerLaw::new(8, 30, 1e4).unwrap().generate(seed).unwrap()),
        ("adversarial", AdversarialGreedy::new(12).unwrap().generate(seed).unwrap()),
        ("cdn", CdnTrace::new(8, 30).unwrap().generate(seed).unwrap()),
    ]
}

#[test]
fn every_distributed_algorithm_is_feasible_on_every_family() {
    for (name, inst) in families(3) {
        let paydual = PayDual::new(PayDualParams::with_phases(6));
        let bucket = GreedyBucket::new(BucketParams::new(4, 3));
        for algo in [&paydual as &dyn FlAlgorithm, &bucket] {
            let out =
                algo.run(&inst, 1).unwrap_or_else(|e| panic!("{} on {name}: {e}", algo.name()));
            out.solution
                .check_feasible(&inst)
                .unwrap_or_else(|e| panic!("{} on {name}: infeasible: {e}", algo.name()));
            let t = out.transcript.expect("distributed algorithms have transcripts");
            assert!(t.congest_compliant(72), "{} on {name}: CONGEST violation", algo.name());
        }
    }
}

#[test]
fn certified_ratios_are_at_least_one_everywhere() {
    for (name, inst) in families(9) {
        let paydual = PayDual::new(PayDualParams::with_phases(10));
        let greedy = StarGreedy::new();
        let reports = evaluate(&inst, &[&paydual, &greedy], 2, 10).unwrap();
        for r in &reports {
            let ratio = r.ratio.expect("positive lower bound");
            assert!(
                ratio >= 1.0 - 1e-9,
                "{name}/{}: ratio {ratio} below 1 — lower bound not a lower bound",
                r.algorithm
            );
            assert!(ratio < 100.0, "{name}/{}: ratio {ratio} absurdly large", r.algorithm);
        }
    }
}

#[test]
fn exact_optimum_beats_or_matches_every_algorithm() {
    for (name, inst) in families(5) {
        let opt = exact::solve(&inst).unwrap().cost.value();
        let paydual = PayDual::new(PayDualParams::with_phases(12)).run(&inst, 0).unwrap();
        let (greedy, _) = distfl::core::greedy::solve(&inst);
        for (algo, cost) in [
            ("paydual", paydual.solution.cost(&inst).value()),
            ("greedy", greedy.cost(&inst).value()),
        ] {
            assert!(cost >= opt - 1e-6, "{name}/{algo}: cost {cost} below the exact optimum {opt}");
        }
    }
}

#[test]
fn metric_baselines_work_on_metric_families_only() {
    let metric_inst = Euclidean::new(6, 18).unwrap().generate(2).unwrap();
    assert!(metric::is_metric(&metric_inst, 1e-9));
    let jv = JainVazirani::new().run(&metric_inst, 0).unwrap();
    let mp = MettuPlaxton::new().run(&metric_inst, 0).unwrap();
    jv.solution.check_feasible(&metric_inst).unwrap();
    mp.solution.check_feasible(&metric_inst).unwrap();

    let nonmetric = UniformRandom::new(6, 18).unwrap().generate(2).unwrap();
    assert!(JainVazirani::new().run(&nonmetric, 0).is_err());
    assert!(MettuPlaxton::new().run(&nonmetric, 0).is_err());
}

#[test]
fn instances_round_trip_through_the_text_format_with_identical_results() {
    let inst = GridNetwork::new(9, 9, 6, 25).unwrap().generate(7).unwrap();
    let text = textio::to_string(&inst);
    let parsed = textio::from_str(&text).unwrap();
    assert_eq!(inst, parsed);
    // Same algorithm, same seed, both copies: identical outcomes.
    let algo = PayDual::new(PayDualParams::with_phases(5));
    let a = algo.run(&inst, 11).unwrap();
    let b = algo.run(&parsed, 11).unwrap();
    assert_eq!(a.solution, b.solution);
}

#[test]
fn spread_drives_the_termination_bound() {
    let tight = PowerLaw::new(6, 20, 2.0).unwrap().generate(1).unwrap();
    let wide = PowerLaw::new(6, 20, 1e6).unwrap().generate(1).unwrap();
    assert!(spread::termination_bound(&wide) > spread::termination_bound(&tight) * 1e4);
    // Both still terminate within their fixed schedules.
    for inst in [&tight, &wide] {
        let out = PayDual::new(PayDualParams::with_phases(4)).run(inst, 0).unwrap();
        out.solution.check_feasible(inst).unwrap();
    }
}

#[test]
fn full_pipeline_fractional_solve_plus_distributed_rounding() {
    let inst = UniformRandom::new(10, 40).unwrap().generate(13).unwrap();
    // Stage 1: dual ascent provides the payment-proportional openings.
    let outcome = PayDual::new(PayDualParams::with_phases(8)).run(&inst, 4).unwrap();
    let dual = outcome.dual.expect("paydual emits duals");
    let fractional = distfl::core::fraclp::payment_fractional(&inst, &dual);
    fractional.check_feasible(&inst, 1e-9).unwrap();
    // Stage 2: distributed randomized rounding.
    let rounded =
        distributed_round(&inst, &fractional, DistRoundParams::for_instance(&inst), 4).unwrap();
    rounded.solution.check_feasible(&inst).unwrap();
    // The two-stage pipeline should stay within a log-ish factor of the
    // one-stage result on this easy instance.
    let one_stage = outcome.solution.cost(&inst).value();
    let two_stage = rounded.solution.cost(&inst).value();
    assert!(
        two_stage <= one_stage * 10.0,
        "two-stage {two_stage} wildly above one-stage {one_stage}"
    );
}

#[test]
fn paydual_is_invariant_under_uniform_cost_scaling() {
    // The dual ascent is driven by cost *ratios*, so uniformly scaling an
    // instance must not change which facilities open or who connects
    // where.
    use distfl::instance::transform;
    let inst = UniformRandom::new(8, 30).unwrap().generate(17).unwrap();
    let scaled = transform::scale_costs(&inst, 1337.5).unwrap();
    let algo = PayDual::new(PayDualParams::with_phases(9));
    let a = algo.run(&inst, 3).unwrap();
    let b = algo.run(&scaled, 3).unwrap();
    assert_eq!(a.solution, b.solution, "scaling changed the outcome");
    // And the cost scales exactly.
    let ca = a.solution.cost(&inst).value();
    let cb = b.solution.cost(&scaled).value();
    assert!((cb / ca - 1337.5).abs() < 1e-6);
}

#[test]
fn parallel_and_serial_simulation_agree_end_to_end() {
    let inst = CdnTrace::new(10, 60).unwrap().generate(21).unwrap();
    let serial = PayDual::new(PayDualParams::with_phases(7)).run(&inst, 5).unwrap();
    let parallel =
        PayDual::new(PayDualParams { threads: Some(8), ..PayDualParams::with_phases(7) })
            .run(&inst, 5)
            .unwrap();
    assert_eq!(serial.solution, parallel.solution);
    assert_eq!(serial.transcript, parallel.transcript);
}
