//! Statistical shape checks of the paper's analytical claims — the fast,
//! always-on versions of experiments E1–E3 (the full sweeps live in
//! `distfl-bench`).

use distfl::core::theory;
use distfl::prelude::*;

/// Average PayDual approximation ratio against the exact optimum over
/// several seeds.
fn avg_ratio(instance: &Instance, phases: u32, seeds: std::ops::Range<u64>) -> f64 {
    let opt = exact::solve(instance).unwrap().cost.value();
    let count = seeds.end - seeds.start;
    let total: f64 = seeds
        .map(|s| {
            PayDual::new(PayDualParams::with_phases(phases))
                .run(instance, s)
                .unwrap()
                .solution
                .cost(instance)
                .value()
                / opt
        })
        .sum();
    total / count as f64
}

#[test]
fn e1_more_rounds_buy_better_ratios() {
    // The headline trade-off: the coarsest budget must be measurably worse
    // than the finest on a wide-spread instance.
    let inst = PowerLaw::new(10, 40, 1e5).unwrap().generate(8).unwrap();
    let coarse = avg_ratio(&inst, 1, 0..4);
    let fine = avg_ratio(&inst, 32, 0..4);
    assert!(coarse > fine * 1.05, "no visible trade-off: coarse {coarse} vs fine {fine}");
    assert!(fine < 3.0, "fine-budget ratio {fine} should be small");
}

#[test]
fn e2_rounds_are_local_but_the_strawman_is_not() {
    // PayDual's round count is a function of its parameter only; the
    // simulated sequential greedy grows with the instance.
    let phases = 6;
    let small = UniformRandom::new(6, 30).unwrap().generate(1).unwrap();
    let large = UniformRandom::new(18, 300).unwrap().generate(1).unwrap();

    let rounds = |inst: &Instance| {
        PayDual::new(PayDualParams::with_phases(phases))
            .run(inst, 0)
            .unwrap()
            .transcript
            .unwrap()
            .num_rounds()
    };
    assert_eq!(rounds(&small), rounds(&large));
    assert_eq!(rounds(&small), theory::paydual_rounds(phases));

    let strawman =
        |inst: &Instance| SimulatedSeqGreedy::new().run(inst, 0).unwrap().modeled_rounds.unwrap();
    assert!(strawman(&large) > strawman(&small), "straw-man rounds should grow with the input");
    assert!(
        strawman(&large) > rounds(&large),
        "straw-man should be slower than paydual on the large instance"
    );
}

#[test]
fn e3_wider_spread_needs_more_phases_for_the_same_factor() {
    // The deterministic half of the rho-dependence claim: to reach the
    // same per-phase factor gamma, the phase budget must grow with the
    // coefficient spread (this is what inflates the paper's bound; the
    // measured-cost curves are reported by the E3 experiment binary).
    use distfl::instance::spread;
    let narrow = PowerLaw::new(8, 30, 2.0).unwrap().generate(3).unwrap();
    let wide = PowerLaw::new(8, 30, 1e6).unwrap().generate(3).unwrap();
    let target_gamma = 1.5;
    let narrow_phases = spread::phases_for_factor(&narrow, target_gamma);
    let wide_phases = spread::phases_for_factor(&wide, target_gamma);
    assert!(
        wide_phases >= 4 * narrow_phases,
        "spread 1e6 should need far more phases than spread 2: {wide_phases} vs {narrow_phases}"
    );
    // And the measured ratios stay below the theory bound on both ends of
    // the spread axis, at both ends of the budget axis.
    for (inst, label) in [(&narrow, "narrow"), (&wide, "wide")] {
        for phases in [2u32, 16] {
            let measured = avg_ratio(inst, phases, 0..4);
            let bound = theory::paydual_bound(inst, phases);
            assert!(
                measured <= bound,
                "{label}/{phases} phases: measured {measured} above bound {bound}"
            );
        }
    }
}

#[test]
fn paper_bound_formula_dominates_measured_ratios() {
    // The measured ratio should sit below the (loose) theoretical bound
    // for the equivalent round budget.
    for seed in 0..3 {
        let inst = UniformRandom::new(8, 30).unwrap().generate(seed).unwrap();
        for phases in [2, 8] {
            let measured = avg_ratio(&inst, phases, seed..seed + 2);
            let bound = theory::paydual_bound(&inst, phases);
            assert!(
                measured <= bound,
                "seed {seed}, phases {phases}: measured {measured} above bound {bound}"
            );
        }
    }
}
