//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`). Timing is a simple
//! warm-up-then-sample loop printing mean wall-clock per iteration; there
//! is no statistical analysis, HTML report, or baseline comparison. Good
//! enough to keep benches compiling and runnable offline; swap in real
//! criterion for publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque measurement settings; sampling is fixed and cheap in this stub.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the target number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(self, &id.to_string(), &mut f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Records the throughput basis (ignored by this stub's reporting).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &label, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput basis of a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant (parity with upstream).
    BytesDecimal(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, f: &mut F) {
    // One warm-up iteration, then `sample_size` timed single-iteration
    // samples; report the mean. Deliberately simple: the stub exists so
    // benches build and run offline, not for rigorous statistics.
    let mut warm = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut warm);
    let mut total = Duration::ZERO;
    let mut samples = 0u64;
    let budget = criterion.measurement_time;
    let started = Instant::now();
    for _ in 0..criterion.sample_size {
        let mut b = Bencher { iterations: 1, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        samples += 1;
        if started.elapsed() > budget {
            break;
        }
    }
    let mean = total.as_nanos() as f64 / samples.max(1) as f64;
    println!("bench: {label:<50} {:>12.0} ns/iter ({samples} samples)", mean);
}

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(2);
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
        let id = BenchmarkId::from_parameter("7x7");
        assert_eq!(id.to_string(), "7x7");
    }
}
