//! Offline no-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace derives serde traits on its public data types so that a
//! real serde can be dropped in when the build environment has network
//! access, but nothing in-tree calls serialization methods. These derives
//! accept the same surface syntax (including `#[serde(...)]` helper
//! attributes) and expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
