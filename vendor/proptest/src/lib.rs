//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and
//! tuple strategies, `prop::collection::vec`, `any::<T>()`, `Just`,
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name), and failing inputs are
//! reported but **not shrunk**. That trades minimal counterexamples for a
//! dependency-free offline build; the properties checked are identical.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`; rejection-sampled.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Error signalled by `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-property error with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run-time configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config executing `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type; `Debug` so failures can print the input.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary` for the primitives used in-tree.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy choosing uniformly among several alternatives; built by
/// [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S> Union<S> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// A strategy whose generate function is type-erased, so heterogeneous
/// strategies over one value type can live in a single [`Union`].
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Boxing combinator, mirroring `proptest::strategy::Strategy::boxed`.
pub trait StrategyExt: Strategy + Sized + 'static {
    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy { generate: Box::new(move |rng| self.generate(rng)) }
    }
}

impl<S: Strategy + Sized + 'static> StrategyExt for S {}

/// Uniformly picks one of several strategies per case, mirroring
/// `proptest::prop_oneof!`. Alternatives may have different concrete
/// types as long as they generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::StrategyExt::boxed($strat)),+])
    };
}

/// Combinator modules, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding `None` for one case in four, mirroring
        /// upstream's default `Some` weight.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// Generates `Option<S::Value>` with a 3:1 `Some` bias.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Sizes accepted by [`vec`]: a fixed length or a range.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty vec size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// Generates vectors whose elements come from `element`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R>
        where
            S::Value: Debug,
        {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, StrategyExt, TestCaseError,
        TestCaseResult, TestRng, Union,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`. Operands are taken by
/// reference, like upstream, so later code can still use them.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = &$left;
        let r = &$right;
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed from the test name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= u64::from(b);
                    seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
                }
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::new(seed ^ (u64::from(case) << 32));
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(concat!(stringify!($arg), " = {:?}, ")),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 3usize..10, v in prop::collection::vec(0.0f64..1.0, 1..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
        }

        #[test]
        fn map_and_tuples(pair in (0u32..5, any::<u8>()).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 5);
            let _ = pair.1;
        }

        #[test]
        fn oneof_and_option(
            v in prop_oneof![0u64..10, 100u64..110],
            o in prop::option::of(0u32..5),
        ) {
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn early_return_is_allowed(n in 0u32..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(n, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn inner(x in 0u32..1) {
                prop_assert_eq!(x, 99);
            }
        }
        inner();
    }
}
