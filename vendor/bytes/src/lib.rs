//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes 1.x` API the workspace uses for
//! canonical message encodings: [`Bytes`], [`BytesMut`], and the
//! big-endian `put_*` methods of [`BufMut`]. Backed by a plain `Vec<u8>`;
//! no zero-copy sharing (nothing here needs it).

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer; big-endian like upstream `bytes`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends the contents of `src`.
    fn put<T: AsRef<[u8]>>(&mut self, src: T) {
        self.put_slice(src.as_ref());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f32`.
    fn put_f32(&mut self, v: f32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u32(0x0102_0304);
        b.put_u64(1);
        let frozen = b.freeze();
        assert_eq!(&frozen[..5], &[0xAB, 1, 2, 3, 4]);
        assert_eq!(frozen.len(), 13);
        assert_eq!(frozen[12], 1);
    }

    #[test]
    fn put_concatenates_buffers() {
        let mut a = BytesMut::new();
        a.put_u8(1);
        let mut b = BytesMut::new();
        b.put(a.freeze());
        b.put_u8(2);
        assert_eq!(&b.freeze()[..], &[1, 2]);
    }
}
