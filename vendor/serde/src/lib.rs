//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports no-op derive macros and declares empty marker traits so that
//! `#[derive(Serialize, Deserialize)]` and `use serde::{...}` compile
//! without network access. No serialization is performed in-tree; swap in
//! real serde by restoring the crates.io dependency.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; no-op derives).
pub trait SerializeTrait {}

/// Marker trait mirroring `serde::Deserialize` (no methods; no-op derives).
pub trait DeserializeTrait<'de> {}
