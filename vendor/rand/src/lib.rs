//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`, and [`rngs::StdRng`]. Value streams are deterministic
//! and platform-independent (SplitMix64-seeded xoshiro256++) but are *not*
//! identical to upstream `StdRng`; nothing in this workspace depends on the
//! upstream stream, only on determinism for a given seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible `RngCore` operations; never produced here.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection sampling (no modulo bias).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range in gen_range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// API-compatible with `rand::rngs::StdRng` for the operations this
    /// workspace uses; the value stream differs from upstream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g: f64 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_mean_is_central() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..10.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }
}
