//! CDN cache placement: decide which candidate points-of-presence to build
//! for a Zipf-skewed demand map, entirely with node-local decisions.
//!
//! Scenario: 20 candidate cache sites, 120 demand regions. Each region's
//! connection cost is `latency × demand volume`, so the placement has to
//! chase the heavy hitters. We sweep the round budget to show the paper's
//! trade-off on an application-shaped workload, then print the chosen
//! build-out of the best run.
//!
//! ```sh
//! cargo run --release --example cdn_placement
//! ```

use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = CdnTrace::new(20, 120)?;
    let instance = generator.generate(2026)?;
    println!(
        "CDN workload: {} candidate sites, {} demand regions (Zipf demand)",
        instance.num_facilities(),
        instance.num_clients()
    );

    // Sweep the round budget: each extra phase buys a finer dual sweep.
    println!("\n round-budget sweep (distributed, node-local decisions only):");
    println!("  {:<10} {:>7} {:>12} {:>10} {:>6}", "phases", "rounds", "cost", "messages", "open");
    let mut best: Option<(f64, Solution)> = None;
    for phases in [1, 2, 4, 8, 16, 32] {
        let algo = PayDual::new(PayDualParams::with_phases(phases));
        let outcome = algo.run(&instance, 9)?;
        let transcript = outcome.transcript.as_ref().expect("distributed run");
        let cost = outcome.solution.cost(&instance).value();
        println!(
            "  {:<10} {:>7} {:>12.1} {:>10} {:>6}",
            phases,
            transcript.num_rounds(),
            cost,
            transcript.total_messages(),
            outcome.solution.num_open(),
        );
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, outcome.solution));
        }
    }

    let (cost, placement) = best.expect("at least one run");
    println!("\nchosen build-out (cost {cost:.1}):");
    for site in placement.open_facilities() {
        let regions = instance.clients().filter(|&j| placement.assigned(j) == site).count();
        println!(
            "  site {site}: build cost {:>8.1}, serves {regions} regions",
            instance.opening_cost(site).value()
        );
    }

    // Sanity: the sequential greedy needs global coordination but gives a
    // quality reference.
    let (greedy_solution, _) = distfl::core::greedy::solve(&instance);
    println!(
        "\nsequential greedy reference: cost {:.1} ({} sites)",
        greedy_solution.cost(&instance).value(),
        greedy_solution.num_open()
    );
    Ok(())
}
