//! Capacitated depot planning: soft capacities via the amortized-cost
//! reduction, hard capacities via min-cost-flow reassignment.
//!
//! Scenario: delivery depots with per-depot vehicle capacity. Opening a
//! depot buys one capacity unit of `u` stops; heavier demand opens more
//! copies. The distributed PayDual engine solves the reduced instance;
//! the flow stage then reassigns stops optimally under hard capacities.
//!
//! ```sh
//! cargo run --release --example depot_capacity
//! ```

use distfl::core::capacitated::{self, CapacitatedInstance};
use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Clustered::new(4, 10, 80)?.generate(23)?;
    println!(
        "delivery region: {} candidate depots, {} stops",
        base.num_facilities(),
        base.num_clients()
    );

    let engine = PayDual::new(PayDualParams::with_phases(10));
    println!(
        "\n{:<10} {:>12} {:>12} {:>8} {:>8}",
        "capacity", "soft cost", "hard cost", "copies", "depots"
    );
    for u in [4u32, 8, 16, 80] {
        let inst = CapacitatedInstance::uniform(base.clone(), u)?;
        let soft = capacitated::solve_soft(&inst, &engine, 7)?;
        let hard = capacitated::solve_hard(&inst, &engine, 7)?;
        let copies: u32 = hard.copies.iter().sum();
        let depots = hard.copies.iter().filter(|&&c| c > 0).count();
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>8} {:>8}",
            u,
            soft.cost(&inst),
            hard.cost(&inst),
            copies,
            depots
        );
    }
    println!(
        "\ntighter capacities force more copies; the min-cost-flow stage\n\
         (hard cost) never loses to the soft assignment at the same copies."
    );
    Ok(())
}
