//! Quickstart: generate a workload, run the paper's distributed algorithm,
//! and compare it against the sequential baselines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A non-metric workload: 12 candidate facilities, 60 clients, costs
    // drawn independently (the Set-Cover-hard regime of the paper).
    let instance = UniformRandom::new(12, 60)?.generate(42)?;
    println!(
        "instance: m={} facilities, n={} clients, {} links, spread rho={:.1}",
        instance.num_facilities(),
        instance.num_clients(),
        instance.num_links(),
        distfl::instance::spread::coefficient_spread(&instance),
    );

    // The paper's algorithm at three points of the round/quality trade-off,
    // plus the sequential greedy and the straw-man distributed greedy.
    let coarse = PayDual::new(PayDualParams::with_phases(2));
    let medium = PayDual::new(PayDualParams::with_phases(8));
    let fine = PayDual::new(PayDualParams::with_phases(24));
    let greedy = StarGreedy::new();
    let strawman = SimulatedSeqGreedy::new();

    let reports = evaluate(
        &instance,
        &[&coarse, &medium, &fine, &greedy, &strawman],
        7,
        /* exact optimum for m <= */ 14,
    )?;

    println!("\n{}", RunReport::table_header());
    for report in &reports {
        println!("{}", report.table_row());
    }
    println!(
        "\nNote how paydual's round count is a constant set by its phase budget,\n\
         while the simulated sequential greedy needs rounds proportional to the\n\
         number of stars it picks — the gap the PODC 2005 paper closes."
    );
    Ok(())
}
