//! Sensor-network cluster-head election on a multi-hop grid.
//!
//! Scenario: 400 grid positions, 18 candidate cluster heads (facilities),
//! 120 sensors (clients). A sensor may only affiliate with a head within
//! its radio radius, so the communication graph — and hence the CONGEST
//! network the algorithm runs on — is genuinely sparse. Opening a head
//! costs energy (its opening cost); affiliating costs hop-distance energy.
//!
//! This example highlights the *model* side of the reproduction: message
//! counts, per-message bits, and the one-message-per-edge discipline on a
//! sparse topology, plus fault-injection robustness of the simulator.
//!
//! ```sh
//! cargo run --release --example sensor_clustering
//! ```

use distfl::core::{node_role, topology_of, Role};
use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = GridNetwork::with_radius(20, 20, 18, 120, 4)?;
    let instance = generator.generate(77)?;
    let topology = topology_of(&instance)?;
    println!(
        "sensor field: {} heads, {} sensors, {} radio links (max degree {})",
        instance.num_facilities(),
        instance.num_clients(),
        topology.num_edges(),
        topology.max_degree(),
    );

    let algo = PayDual::new(PayDualParams::with_phases(12));
    let outcome = algo.run(&instance, 3)?;
    let transcript = outcome.transcript.as_ref().expect("distributed run");

    println!("\nelection finished:");
    println!("  rounds            : {}", transcript.num_rounds());
    println!("  messages          : {}", transcript.total_messages());
    println!("  total bits        : {}", transcript.total_bits());
    println!("  max message bits  : {}", transcript.max_message_bits());
    println!("  CONGEST compliant : {}", transcript.congest_compliant(72));
    println!(
        "  cluster heads     : {} of {} candidates",
        outcome.solution.num_open(),
        instance.num_facilities()
    );
    println!("  total energy cost : {:.1}", outcome.solution.cost(&instance).value());

    // Cluster sizes.
    let mut sizes: Vec<(distfl::instance::FacilityId, usize)> = outcome
        .solution
        .open_facilities()
        .map(|head| {
            let size = instance.clients().filter(|&j| outcome.solution.assigned(j) == head).count();
            (head, size)
        })
        .collect();
    sizes.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("\n  largest clusters:");
    for (head, size) in sizes.iter().take(5) {
        println!("    head {head}: {size} sensors");
    }

    // The simulator doubles as a harness for lossy-network what-ifs: the
    // protocol's *safety* (feasibility of whatever is produced) is checked
    // by the test suite under message drops; here we just show the knob.
    let role_of_first = node_role(instance.num_facilities(), NodeId::new(0));
    debug_assert!(matches!(role_of_first, Role::Facility(_)));
    println!(
        "\n(simulator supports deterministic message-drop fault plans; see\n\
         distfl-congest::FaultPlan and the integration tests)"
    );
    Ok(())
}
