//! k-median clustering via Lagrangian probing — the classic extension of
//! the facility-location primal–dual machinery.
//!
//! Scenario: cluster 60 demand points into at most `k` service centers
//! (no opening costs; pure connection-cost objective). Each distributed
//! probe is an independent O(phases)-round CONGEST run of PayDual with a
//! uniform Lagrangian facility price; binary search on the price drives
//! the open count down to `k`.
//!
//! ```sh
//! cargo run --release --example kmedian_clustering
//! ```

use distfl::core::kmedian;
use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = Clustered::with_geometry(4, 10, 60, 100.0, 3.0)?.generate(31)?;
    println!(
        "demand map: {} candidate centers, {} points, 4 natural clusters\n",
        instance.num_facilities(),
        instance.num_clients()
    );

    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>8}",
        "k", "distributed", "sequential", "exact", "probes"
    );
    for k in 1..=6usize {
        let dist = kmedian::distributed(&instance, k, 10, 7)?;
        let seq = kmedian::sequential(&instance, k)?;
        let opt = kmedian::exact(&instance, k, 12)?;
        println!(
            "{:<4} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            k, dist.connection_cost, seq.connection_cost, opt.connection_cost, dist.probes
        );
    }

    let chosen = kmedian::distributed(&instance, 4, 10, 7)?;
    println!("\ncenters chosen at k=4 (distributed probing):");
    for center in chosen.solution.open_facilities() {
        let members = instance.clients().filter(|&j| chosen.solution.assigned(j) == center).count();
        println!("  center {center}: {members} points");
    }
    println!(
        "\nnote: the cost column should drop as k grows and approach the\n\
         exact optimum; at k = #natural clusters the drop flattens."
    );
    Ok(())
}
