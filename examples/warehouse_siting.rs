//! Warehouse siting on a metric (clustered-geography) market.
//!
//! Scenario: 3 metro areas, 12 candidate warehouse sites, 80 retail
//! stores; build costs and truck-distance delivery costs. Metric inputs
//! let us compare the full algorithm zoo: the paper's distributed
//! algorithms, the constant-factor metric baselines (Jain–Vazirani,
//! Mettu–Plaxton), the sequential greedy, and the exact optimum.
//!
//! ```sh
//! cargo run --release --example warehouse_siting
//! ```

use distfl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = Clustered::new(3, 12, 80)?.generate(11)?;
    println!(
        "market: {} candidate sites, {} stores, metric geometry",
        instance.num_facilities(),
        instance.num_clients()
    );

    let paydual = PayDual::new(PayDualParams::with_phases(12));
    let bucket = GreedyBucket::new(BucketParams::new(6, 4));
    let greedy = StarGreedy::new();
    let jv = JainVazirani::new();
    let mp = MettuPlaxton::new();

    let reports = evaluate(
        &instance,
        &[&paydual, &bucket, &greedy, &jv, &mp],
        5,
        /* exact optimum for m <= */ 14,
    )?;

    println!("\n{}", RunReport::table_header());
    for report in &reports {
        println!("{}", report.table_row());
    }

    let opt = exact::solve(&instance)?;
    println!(
        "\nexact optimum: cost {:.1} opening {} sites ({} B&B nodes)",
        opt.cost.value(),
        opt.solution.num_open(),
        opt.nodes_explored
    );
    println!(
        "takeaway: on metric inputs the constant-factor baselines win on\n\
         quality but are inherently sequential / global; the distributed\n\
         algorithms trade a bounded quality factor for O(k) local rounds."
    );
    Ok(())
}
