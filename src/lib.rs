//! # distfl — Distributed Facility Location
//!
//! A production-quality Rust workspace reproducing **“Facility Location:
//! Distributed Approximation” (Moscibroda–Wattenhofer, PODC 2005)**: for
//! every round budget `k`, a CONGEST-model algorithm computing an
//! `O(√k·(m·ρ)^{1/√k}·log(m+n))`-approximation of uncapacitated facility
//! location in `O(k)` rounds.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`congest`] — the synchronous CONGEST simulator substrate,
//! * [`instance`] — problem instances, generators, and solutions,
//! * [`lp`] — LP machinery: bounds, exact optima, reference rounding,
//! * [`core`] — the distributed algorithms and baselines.
//!
//! See the repository's `README.md` for a tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the reproduced analytical claims.
//!
//! ## Quick start
//!
//! ```
//! use distfl::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A clustered metric workload: 3 clusters, 9 candidate sites.
//! let instance = Clustered::new(3, 9, 40)?.generate(7)?;
//!
//! // Run the paper's algorithm with a 10-phase round budget...
//! let algo = PayDual::new(PayDualParams::with_phases(10));
//! let outcome = algo.run(&instance, 1)?;
//! outcome.solution.check_feasible(&instance)?;
//!
//! // ...and compare against the sequential greedy baseline.
//! let reports = evaluate(&instance, &[&algo, &StarGreedy::new()], 1, 12)?;
//! for report in &reports {
//!     println!("{}", report.table_row());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use distfl_congest as congest;
pub use distfl_core as core;
pub use distfl_instance as instance;
pub use distfl_lp as lp;

/// The most common imports in one place.
pub mod prelude {
    pub use distfl_congest::{CongestConfig, Network, NodeId, NodeLogic, Topology};
    pub use distfl_core::bucket::{BucketParams, GreedyBucket};
    pub use distfl_core::greedy::StarGreedy;
    pub use distfl_core::jv::JainVazirani;
    pub use distfl_core::mp::MettuPlaxton;
    pub use distfl_core::paydual::{ConnectRule, PayDual, PayDualParams};
    pub use distfl_core::round::{distributed_round, DistRoundParams};
    pub use distfl_core::seqdist::DistSeqGreedy;
    pub use distfl_core::seqsim::SimulatedSeqGreedy;
    pub use distfl_core::{audit, capacitated, kmedian, localsearch};
    pub use distfl_core::{evaluate, FlAlgorithm, Outcome, RunReport};
    pub use distfl_instance::generators::{
        AdversarialGreedy, CdnTrace, Clustered, Euclidean, GridNetwork, InstanceGenerator,
        LineCity, PowerLaw, UniformRandom,
    };
    pub use distfl_instance::{Cost, Instance, InstanceBuilder, Solution};
    pub use distfl_lp::{bounds, exact, DualSolution, FractionalSolution};
}
