//! `distfl` — command-line front end.
//!
//! ```text
//! distfl generate <family> [-m M] [-n N] [--seed S] [--rho R] [--clusters C]
//!                 [--rows R --cols C --radius H] -o FILE
//! distfl info FILE
//! distfl solve FILE --algo ALGO [--phases P] [--outer O --inner I]
//!              [--seed S] [--polish]
//! distfl evaluate FILE [--seed S]
//! distfl kmedian FILE -k K [--distributed] [--phases P] [--seed S]
//! ```
//!
//! Families: uniform, euclidean, clustered, grid, powerlaw, adversarial,
//! cdn. Algorithms: paydual, bucket, greedy, jv, mp, seqsim, seqreal.
//! Instance files
//! use the plain-text format of `distfl::instance::textio`; OR-Library
//! benchmark files are detected and read automatically.

use std::collections::HashMap;
use std::process::ExitCode;

use distfl::core::kmedian;
use distfl::instance::{metric, orlib, spread, textio};
use distfl::prelude::*;

/// Parsed command-line options: positional arguments plus `--key value`
/// pairs (bare `--flag` stores an empty value).
struct Opts {
    positional: Vec<String>,
    named: HashMap<String, String>,
}

impl Opts {
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut named = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                named.insert(key.to_owned(), value);
            } else if let Some(key) = arg.strip_prefix('-') {
                let value = iter.next().ok_or_else(|| format!("option -{key} needs a value"))?;
                named.insert(key.to_owned(), value);
            } else {
                positional.push(arg);
            }
        }
        Ok(Opts { positional, named })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.named.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("invalid value '{raw}' for --{key}")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.named
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option: {key}"))
    }

    fn flag(&self, key: &str) -> bool {
        self.named.contains_key(key)
    }
}

fn generate(opts: &Opts) -> Result<(), String> {
    let family =
        opts.positional.get(1).ok_or("usage: distfl generate <family> [options] -o FILE")?.as_str();
    let m: usize = opts.get("m", 10)?;
    let n: usize = opts.get("n", 50)?;
    let seed: u64 = opts.get("seed", 0)?;
    let gen: Box<dyn InstanceGenerator> = match family {
        "uniform" => Box::new(UniformRandom::new(m, n).map_err(|e| e.to_string())?),
        "euclidean" => Box::new(Euclidean::new(m, n).map_err(|e| e.to_string())?),
        "clustered" => {
            let clusters: usize = opts.get("clusters", 3)?;
            Box::new(Clustered::new(clusters, m, n).map_err(|e| e.to_string())?)
        }
        "grid" => {
            let rows: usize = opts.get("rows", 12)?;
            let cols: usize = opts.get("cols", 12)?;
            let radius: usize = opts.get("radius", (rows + cols).div_ceil(4))?;
            Box::new(GridNetwork::with_radius(rows, cols, m, n, radius).map_err(|e| e.to_string())?)
        }
        "powerlaw" => {
            let rho: f64 = opts.get("rho", 1e4)?;
            Box::new(PowerLaw::new(m, n, rho).map_err(|e| e.to_string())?)
        }
        "adversarial" => Box::new(AdversarialGreedy::new(n).map_err(|e| e.to_string())?),
        "cdn" => Box::new(CdnTrace::new(m, n).map_err(|e| e.to_string())?),
        other => return Err(format!("unknown family '{other}'")),
    };
    let inst = gen.generate(seed).map_err(|e| e.to_string())?;
    let out = opts.require("o")?;
    let body = match opts.named.get("format").map(String::as_str) {
        Some("orlib") => orlib::to_string(&inst).map_err(|e| e.to_string())?,
        Some("text") | None => textio::to_string(&inst),
        Some(other) => return Err(format!("unknown format '{other}'")),
    };
    std::fs::write(out, body).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} facilities, {} clients, {} links",
        out,
        inst.num_facilities(),
        inst.num_clients(),
        inst.num_links()
    );
    Ok(())
}

fn load(opts: &Opts) -> Result<Instance, String> {
    let path = opts.positional.get(1).ok_or("missing instance file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    // Native format first; fall back to the OR-Library benchmark format.
    match textio::from_str(&text) {
        Ok(inst) => Ok(inst),
        Err(native_err) => orlib::from_str(&text).map_err(|orlib_err| {
            format!("not a distfl instance ({native_err}) nor OR-Library ({orlib_err})")
        }),
    }
}

fn info(opts: &Opts) -> Result<(), String> {
    let inst = load(opts)?;
    println!("facilities     : {}", inst.num_facilities());
    println!("clients        : {}", inst.num_clients());
    println!("links          : {} (complete: {})", inst.num_links(), inst.is_complete());
    println!("max degree     : {}", inst.max_degree());
    println!("spread rho     : {:.3e}", spread::coefficient_spread(&inst));
    println!("phase factor   : gamma(s=8) = {:.3}", spread::phase_factor(&inst, 8));
    if inst.num_facilities() * inst.num_clients() <= 40_000 {
        println!("metric defect  : {:.6}", metric::relative_defect(&inst));
    }
    println!("trivial LB     : {:.3}", bounds::trivial_lower_bound(&inst));
    if inst.num_facilities() <= 20 {
        let opt = exact::solve(&inst).map_err(|e| e.to_string())?;
        println!("exact optimum  : {:.3} ({} open)", opt.cost.value(), opt.solution.num_open());
    }
    Ok(())
}

fn solve(opts: &Opts) -> Result<(), String> {
    let inst = load(opts)?;
    let seed: u64 = opts.get("seed", 0)?;
    let algo_name = opts.require("algo")?;
    let phases: u32 = opts.get("phases", 8)?;
    let algo: Box<dyn FlAlgorithm> = match algo_name {
        "paydual" => Box::new(PayDual::new(PayDualParams::with_phases(phases))),
        "bucket" => {
            let outer: u32 = opts.get("outer", 6)?;
            let inner: u32 = opts.get("inner", 4)?;
            Box::new(GreedyBucket::new(BucketParams::new(outer, inner)))
        }
        "greedy" => Box::new(StarGreedy::new()),
        "jv" => Box::new(JainVazirani::new()),
        "mp" => Box::new(MettuPlaxton::new()),
        "seqsim" => Box::new(SimulatedSeqGreedy::new()),
        "seqreal" => Box::new(DistSeqGreedy::new()),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    let reports = evaluate(&inst, &[algo.as_ref()], seed, 20).map_err(|e| e.to_string())?;
    println!("{}", RunReport::table_header());
    for r in &reports {
        println!("{}", r.table_row());
    }
    if opts.flag("polish") {
        let outcome = algo.run(&inst, seed).map_err(|e| e.to_string())?;
        let run = distfl::core::localsearch::optimize(&inst, &outcome.solution, 500);
        println!(
            "after local search: cost {:.3} ({} moves, converged: {})",
            run.final_cost, run.moves, run.converged
        );
    }
    Ok(())
}

fn evaluate_cmd(opts: &Opts) -> Result<(), String> {
    let inst = load(opts)?;
    let seed: u64 = opts.get("seed", 0)?;
    let paydual8 = PayDual::new(PayDualParams::with_phases(8));
    let paydual24 = PayDual::new(PayDualParams::with_phases(24));
    let bucket = GreedyBucket::new(BucketParams::new(6, 4));
    let greedy = StarGreedy::new();
    let strawman = SimulatedSeqGreedy::new();
    let mut algos: Vec<&dyn FlAlgorithm> = vec![&paydual8, &paydual24, &bucket, &greedy, &strawman];
    let jv = JainVazirani::new();
    let mp = MettuPlaxton::new();
    let small_enough = inst.num_facilities() * inst.num_clients() <= 40_000;
    if small_enough && metric::is_metric(&inst, 1e-6) {
        algos.push(&jv);
        algos.push(&mp);
    }
    let reports = evaluate(&inst, &algos, seed, 20).map_err(|e| e.to_string())?;
    println!("{}", RunReport::table_header());
    for r in &reports {
        println!("{}", r.table_row());
    }
    Ok(())
}

fn kmedian_cmd(opts: &Opts) -> Result<(), String> {
    let inst = load(opts)?;
    let k: usize = opts.get("k", 0)?;
    if k == 0 {
        return Err("missing or invalid -k".to_owned());
    }
    let seed: u64 = opts.get("seed", 0)?;
    let result = if opts.flag("distributed") {
        let phases: u32 = opts.get("phases", 10)?;
        kmedian::distributed(&inst, k, phases, seed).map_err(|e| e.to_string())?
    } else {
        kmedian::sequential(&inst, k).map_err(|e| e.to_string())?
    };
    println!(
        "k-median (k={k}): connection cost {:.3}, {} centers, {} probes",
        result.connection_cost,
        result.solution.num_open(),
        result.probes
    );
    for center in result.solution.open_facilities() {
        println!("  center {center}");
    }
    Ok(())
}

fn dispatch(args: Vec<String>) -> Result<(), String> {
    let opts = Opts::parse(args)?;
    match opts.positional.first().map(String::as_str) {
        Some("generate") => generate(&opts),
        Some("info") => info(&opts),
        Some("solve") => solve(&opts),
        Some("evaluate") => evaluate_cmd(&opts),
        Some("kmedian") => kmedian_cmd(&opts),
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("usage: distfl <generate|info|solve|evaluate|kmedian> ...".to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn opts_parser_handles_mixed_forms() {
        let o = Opts::parse(args("solve file.fl --algo paydual --phases 12 -k 3 --distributed"))
            .unwrap();
        assert_eq!(o.positional, vec!["solve", "file.fl"]);
        assert_eq!(o.require("algo").unwrap(), "paydual");
        assert_eq!(o.get::<u32>("phases", 0).unwrap(), 12);
        assert_eq!(o.get::<usize>("k", 0).unwrap(), 3);
        assert!(o.flag("distributed"));
        assert!(!o.flag("bogus"));
        assert_eq!(o.get::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn opts_parser_reports_bad_values() {
        let o = Opts::parse(args("solve --phases abc")).unwrap();
        assert!(o.get::<u32>("phases", 0).is_err());
        assert!(o.require("missing").is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(dispatch(args("frobnicate")).is_err());
        assert!(dispatch(Vec::new()).is_err());
    }

    #[test]
    fn generate_info_solve_round_trip() {
        let dir = std::env::temp_dir().join("distfl-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("inst.fl");
        let file_str = file.to_str().unwrap().to_owned();
        dispatch(args(&format!("generate uniform -m 6 -n 20 --seed 3 -o {file_str}"))).unwrap();
        dispatch(args(&format!("info {file_str}"))).unwrap();
        dispatch(args(&format!("solve {file_str} --algo paydual --phases 6"))).unwrap();
        dispatch(args(&format!("solve {file_str} --algo greedy"))).unwrap();
        dispatch(args(&format!("solve {file_str} --algo paydual --phases 4 --polish"))).unwrap();
        dispatch(args(&format!("evaluate {file_str}"))).unwrap();
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn kmedian_commands_work_on_complete_instances() {
        let dir = std::env::temp_dir().join("distfl-cli-test-km");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("km.fl");
        let file_str = file.to_str().unwrap().to_owned();
        dispatch(args(&format!("generate euclidean -m 6 -n 18 --seed 2 -o {file_str}"))).unwrap();
        dispatch(args(&format!("kmedian {file_str} -k 2"))).unwrap();
        dispatch(args(&format!("kmedian {file_str} -k 2 --distributed --phases 6"))).unwrap();
        std::fs::remove_file(&file).unwrap();
    }
}
