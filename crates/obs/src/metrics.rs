//! The typed metrics registry: named cumulative [`Counter`]s and
//! last-value [`Gauge`]s.
//!
//! Handles are cheap `&'static AtomicU64` wrappers looked up (or created)
//! by name; hot paths should look a handle up once and reuse it. Updates
//! are gated on [`crate::enabled`] so a disabled build performs no atomic
//! writes, keeping the registry invisible to benchmarks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Which flavor a registered metric is; determines how its cell's bits
/// are interpreted on export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
}

/// A snapshot value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Cumulative counter value.
    Counter(u64),
    /// Last value stored in a gauge.
    Gauge(f64),
}

fn table() -> &'static Mutex<BTreeMap<&'static str, (Kind, &'static AtomicU64)>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, (Kind, &'static AtomicU64)>>> =
        OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn cell(name: &'static str, kind: Kind) -> &'static AtomicU64 {
    let mut t = crate::lock(table());
    let (registered, cell) = t
        .entry(name)
        // Leaked cells give handles a 'static address; the set of metric
        // names is a small fixed vocabulary, so this is bounded.
        .or_insert_with(|| (kind, Box::leak(Box::new(AtomicU64::new(0)))));
    assert!(
        *registered == kind,
        "metric {name:?} registered as {registered:?}, requested as {kind:?}"
    );
    cell
}

/// A named cumulative counter. Copyable handle; see [`counter`].
#[derive(Clone, Copy)]
pub struct Counter {
    cell: &'static AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter. No-op while tracing is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to the counter. No-op while tracing is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named last-value gauge storing an `f64`. Copyable handle; see
/// [`gauge`].
#[derive(Clone, Copy)]
pub struct Gauge {
    cell: &'static AtomicU64,
}

impl Gauge {
    /// Stores `v`. No-op while tracing is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Looks up (creating on first use) the counter named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a gauge.
pub fn counter(name: &'static str) -> Counter {
    Counter { cell: cell(name, Kind::Counter) }
}

/// Looks up (creating on first use) the gauge named `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a counter.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge { cell: cell(name, Kind::Gauge) }
}

/// Zeroes every registered metric (names stay registered).
pub fn metrics_reset() {
    for (_, (kind, cell)) in crate::lock(table()).iter() {
        let zero = match kind {
            Kind::Counter => 0,
            Kind::Gauge => 0f64.to_bits(),
        };
        cell.store(zero, Ordering::Relaxed);
    }
}

/// All registered metrics and their current values, name-sorted.
pub(crate) fn read_all() -> Vec<(&'static str, MetricValue)> {
    crate::lock(table())
        .iter()
        .map(|(name, (kind, cell))| {
            let raw = cell.load(Ordering::Relaxed);
            let value = match kind {
                Kind::Counter => MetricValue::Counter(raw),
                Kind::Gauge => MetricValue::Gauge(f64::from_bits(raw)),
            };
            (*name, value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_serial as serial;

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = serial();
        crate::set_enabled(true);
        let c = counter("test.metrics.hits");
        let before = c.get();
        c.add(3);
        c.incr();
        assert_eq!(c.get(), before + 4);
        crate::set_enabled(false);
        c.add(100);
        assert_eq!(c.get(), before + 4, "disabled adds must not land");
        metrics_reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauges_store_last_value() {
        let _g = serial();
        crate::set_enabled(true);
        let g = gauge("test.metrics.level");
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
        crate::set_enabled(false);
    }

    #[test]
    fn handles_with_the_same_name_share_a_cell() {
        let _g = serial();
        crate::set_enabled(true);
        let a = counter("test.metrics.shared");
        let b = counter("test.metrics.shared");
        let before = a.get();
        a.incr();
        b.incr();
        assert_eq!(a.get(), before + 2);
        crate::set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let _ = counter("test.metrics.kinded");
        let _ = gauge("test.metrics.kinded");
    }
}
