//! Trace exporters: Chrome `trace_event` JSON and flat CSV.
//!
//! Both render a [`Snapshot`] — the merged drain of every thread's ring
//! buffer plus the metric values at drain time. The JSON form is the
//! object-wrapped `trace_event` flavor (`{"traceEvents": [...]}`): spans
//! become `"ph": "X"` complete events and each counter/gauge becomes one
//! trailing `"ph": "C"` counter sample, so Perfetto and `chrome://tracing`
//! render a track per thread plus one per metric.
//!
//! **Units.** [`TraceEvent`] stores nanoseconds; Chrome's `ts`/`dur`
//! fields are microseconds. The JSON exporter performs that conversion —
//! the only unit conversion in the crate — emitting fractional
//! microseconds (`"ts":10.500`) when an event does not fall on a whole
//! microsecond, which both viewers accept. The CSV keeps raw nanoseconds.

use std::io::Write;
use std::path::Path;

use crate::json::{json_f64, push_json_string};
use crate::metrics::MetricValue;
use crate::TraceEvent;

/// Renders a nanosecond quantity as Chrome microseconds: whole µs when the
/// value is a multiple of 1000 ns, otherwise with a 3-digit fraction.
fn push_micros(out: &mut String, nanos: u64) {
    let (us, frac) = (nanos / 1_000, nanos % 1_000);
    if frac == 0 {
        out.push_str(&us.to_string());
    } else {
        out.push_str(&format!("{us}.{frac:03}"));
    }
}

/// A drained trace: events (oldest first) plus the metric values observed
/// at drain time. Produced by [`crate::snapshot`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All recorded spans, sorted by start timestamp.
    pub events: Vec<TraceEvent>,
    /// Registered metrics, name-sorted.
    pub metrics: Vec<(&'static str, MetricValue)>,
    /// Events lost to ring-buffer overwrites since the previous drain.
    pub dropped: u64,
}

impl Snapshot {
    /// Events lost to ring-buffer overwrites since the previous drain.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The value of the metric named `name`, if registered.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
    }

    /// Renders the snapshot as Chrome `trace_event` JSON.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            push_json_string(&mut out, ev.name);
            out.push_str(",\"cat\":");
            push_json_string(&mut out, ev.cat);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_micros(&mut out, ev.ts_nanos);
            out.push_str(",\"dur\":");
            push_micros(&mut out, ev.dur_nanos);
            out.push_str(&format!(",\"pid\":1,\"tid\":{}", ev.tid));
            if let Some(arg) = ev.arg {
                out.push_str(&format!(",\"args\":{{\"arg\":{arg}}}"));
            }
            out.push('}');
        }
        // One counter sample per metric at the end of the captured window
        // gives the viewers a value track without a time series.
        let last_ts =
            self.events.iter().map(|e| e.ts_nanos.saturating_add(e.dur_nanos)).max().unwrap_or(0);
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            push_json_string(&mut out, name);
            let rendered = match value {
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => json_f64(*v),
            };
            out.push_str(",\"ph\":\"C\",\"ts\":");
            push_micros(&mut out, last_ts);
            out.push_str(&format!(",\"pid\":1,\"tid\":0,\"args\":{{\"value\":{rendered}}}"));
            out.push('}');
        }
        out.push_str(&format!(
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":\"{}\"}}}}",
            self.dropped
        ));
        out
    }

    /// Renders the snapshot as a flat CSV: one row per span, then one row
    /// per metric, with blank cells where a column does not apply.
    pub fn csv(&self) -> String {
        let mut out = String::from("kind,cat,name,ts_nanos,dur_nanos,tid,value\n");
        for ev in &self.events {
            out.push_str(&format!(
                "span,{},{},{},{},{},{}\n",
                ev.cat,
                ev.name,
                ev.ts_nanos,
                ev.dur_nanos,
                ev.tid,
                ev.arg.map(|a| a.to_string()).unwrap_or_default()
            ));
        }
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("counter,,{name},,,,{v}\n")),
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("gauge,,{name},,,,{}\n", json_f64(*v)));
                }
            }
        }
        out
    }

    /// Writes [`Snapshot::chrome_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.chrome_json().as_bytes())
    }

    /// Writes [`Snapshot::csv`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.csv().as_bytes())
    }
}

/// Checks that `s` is a single well-formed JSON value.
///
/// A minimal recursive-descent validator (the workspace deliberately has
/// no JSON dependency); used by the exporter tests and the `exp_all`
/// trace smoke to ensure the written trace parses.
///
/// # Errors
///
/// Returns the byte offset and a short description of the first syntax
/// error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control char at byte {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let from = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > from
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_serial as serial;

    fn sample() -> Snapshot {
        Snapshot {
            events: vec![
                TraceEvent {
                    name: "round",
                    cat: "engine",
                    ts_nanos: 10_000,
                    dur_nanos: 5_000,
                    tid: 1,
                    arg: Some(7),
                },
                TraceEvent {
                    name: "stage.deliver",
                    cat: "engine",
                    ts_nanos: 12_000,
                    dur_nanos: 2_000,
                    tid: 2,
                    arg: None,
                },
            ],
            metrics: vec![
                ("engine.messages", MetricValue::Counter(123)),
                ("pool.utilization", MetricValue::Gauge(0.75)),
            ],
            dropped: 1,
        }
    }

    #[test]
    fn chrome_json_is_wellformed_and_complete() {
        let json = sample().chrome_json();
        validate_json(&json).expect("trace JSON parses");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"round\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"arg\":7}"));
        assert!(json.contains("\"value\":123"));
        assert!(json.contains("\"dropped_events\":\"1\""));
    }

    /// Pins the exporter's unit contract: events store nanoseconds, the
    /// Chrome JSON emits microseconds. A 5 000 ns span must render as
    /// `"dur":5` — if a call site's nanoseconds ever reach the JSON
    /// unscaled (the historical 1000× skew), this fails.
    #[test]
    fn chrome_json_converts_nanos_to_micros() {
        let json = sample().chrome_json();
        assert!(json.contains("\"ts\":10,\"dur\":5,"), "whole-µs conversion, got: {json}");
        let frac = Snapshot {
            events: vec![TraceEvent {
                name: "tick",
                cat: "sim",
                ts_nanos: 10_500,
                dur_nanos: 1_250_042,
                tid: 1,
                arg: None,
            }],
            metrics: Vec::new(),
            dropped: 0,
        };
        let json = frac.chrome_json();
        validate_json(&json).expect("fractional-µs trace parses");
        assert!(json.contains("\"ts\":10.500,\"dur\":1250.042,"), "fractional µs, got: {json}");
    }

    #[test]
    fn csv_round_trips_rows_and_blanks() {
        let csv = sample().csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,cat,name,ts_nanos,dur_nanos,tid,value");
        assert_eq!(lines[1], "span,engine,round,10000,5000,1,7");
        assert_eq!(lines[2], "span,engine,stage.deliver,12000,2000,2,");
        assert_eq!(lines[3], "counter,,engine.messages,,,,123");
        assert_eq!(lines[4], "gauge,,pool.utilization,,,,0.75");
        // Every row has the full column count (blank cells, never missing).
        for line in &lines {
            assert_eq!(line.matches(',').count(), 6, "{line}");
        }
    }

    #[test]
    fn empty_snapshot_still_exports() {
        let snap = Snapshot { events: Vec::new(), metrics: Vec::new(), dropped: 0 };
        validate_json(&snap.chrome_json()).expect("empty trace parses");
        assert_eq!(snap.csv().lines().count(), 1);
    }

    #[test]
    fn end_to_end_snapshot_exports() {
        let _g = serial();
        crate::set_enabled(true);
        {
            let _s = crate::span_arg("engine", "round", 1);
        }
        crate::counter("test.export.msgs").add(9);
        crate::set_enabled(false);
        let snap = crate::snapshot();
        let json = snap.chrome_json();
        validate_json(&json).expect("trace JSON parses");
        assert!(json.contains("\"name\":\"round\""));
        assert!(json.contains("test.export.msgs"));
    }

    #[test]
    fn json_string_escaping() {
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut wrapped = String::from("{\"k\":");
        wrapped.push_str(&s);
        wrapped.push('}');
        validate_json(&wrapped).expect("escaped string parses");
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} extra", "\"unterminated", "01x"] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
        for good in ["{}", "[]", "null", "-1.5e-3", "{\"a\":[1,2,{\"b\":null}]}"] {
            assert!(validate_json(good).is_ok(), "{good:?} rejected");
        }
    }
}
