//! A small push-based JSON writer, the complement of
//! [`crate::validate_json`].
//!
//! The workspace deliberately carries no JSON dependency; anything that
//! *emits* JSON (trace exports, serve responses, bench reports) either
//! hand-formats strings or goes through this writer. The writer manages
//! commas and nesting so call sites cannot produce structurally invalid
//! output: anything built through [`JsonWriter`] passes
//! [`crate::validate_json`] by construction (strings are escaped,
//! non-finite floats become `null`, separators are inserted
//! automatically).
//!
//! ```
//! use distfl_obs::JsonWriter;
//!
//! let mut w = JsonWriter::object();
//! w.key("id").string("req-1");
//! w.key("cost").number(12.5);
//! w.key("open").begin_array();
//! w.number_u64(0).number_u64(2);
//! w.end_array();
//! let json = w.finish();
//! assert_eq!(json, r#"{"id":"req-1","cost":12.5,"open":[0,2]}"#);
//! distfl_obs::validate_json(&json).unwrap();
//! ```

/// What container the writer is currently inside, for comma placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Frame {
    /// Inside an object, before/between keys.
    Object { first: bool },
    /// Inside an array, before/between values.
    Array { first: bool },
}

/// An append-only JSON builder with automatic separators.
///
/// Start with [`JsonWriter::object`] or [`JsonWriter::array`], push keys
/// and values, close nested containers with `end_*`, and take the final
/// text with [`JsonWriter::finish`] (which closes any still-open
/// containers).
///
/// Value methods must follow [`JsonWriter::key`] inside objects and stand
/// alone inside arrays; debug assertions catch misuse.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    /// Inside an object: a key has been written and awaits its value.
    pending_value: bool,
}

impl JsonWriter {
    /// A writer whose top-level value is an object.
    pub fn object() -> Self {
        let mut w = JsonWriter { out: String::new(), stack: Vec::new(), pending_value: false };
        w.out.push('{');
        w.stack.push(Frame::Object { first: true });
        w
    }

    /// A writer whose top-level value is an array.
    pub fn array() -> Self {
        let mut w = JsonWriter { out: String::new(), stack: Vec::new(), pending_value: false };
        w.out.push('[');
        w.stack.push(Frame::Array { first: true });
        w
    }

    /// Places the separator a new element needs in the current container.
    fn separate(&mut self) {
        if self.pending_value {
            // Key already wrote "key": — the value follows with no comma.
            self.pending_value = false;
            return;
        }
        match self.stack.last_mut() {
            Some(Frame::Object { first }) | Some(Frame::Array { first }) => {
                if *first {
                    *first = false;
                } else {
                    self.out.push(',');
                }
            }
            None => debug_assert!(false, "value written after the top-level value closed"),
        }
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        debug_assert!(
            matches!(self.stack.last(), Some(Frame::Object { .. })) && !self.pending_value,
            "key() is only valid inside an object, between values"
        );
        self.separate();
        push_json_string(&mut self.out, key);
        self.out.push(':');
        self.pending_value = true;
        self
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.separate();
        push_json_string(&mut self.out, s);
        self
    }

    /// Writes a float value; non-finite values become `null` (JSON has no
    /// NaN/infinity tokens).
    pub fn number(&mut self, v: f64) -> &mut Self {
        self.separate();
        self.out.push_str(&json_f64(v));
        self
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) -> &mut Self {
        self.separate();
        let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{v}"));
        self
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.separate();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Writes a `null` value.
    pub fn null(&mut self) -> &mut Self {
        self.separate();
        self.out.push_str("null");
        self
    }

    /// Writes pre-rendered JSON as one value. The caller vouches that
    /// `json` is itself well-formed (e.g. the output of another writer).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.separate();
        self.out.push_str(json);
        self
    }

    /// Opens a nested object value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.separate();
        self.out.push('{');
        self.stack.push(Frame::Object { first: true });
        self
    }

    /// Opens a nested array value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.separate();
        self.out.push('[');
        self.stack.push(Frame::Array { first: true });
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        debug_assert!(
            matches!(self.stack.last(), Some(Frame::Object { .. })) && !self.pending_value,
            "end_object() must close an object with no dangling key"
        );
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        debug_assert!(
            matches!(self.stack.last(), Some(Frame::Array { .. })),
            "end_array() must close an array"
        );
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Closes every still-open container and returns the JSON text.
    pub fn finish(mut self) -> String {
        debug_assert!(!self.pending_value, "finish() with a dangling key");
        while let Some(frame) = self.stack.pop() {
            self.out.push(match frame {
                Frame::Object { .. } => '}',
                Frame::Array { .. } => ']',
            });
        }
        self.out
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON number (JSON has no NaN/inf tokens).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    #[test]
    fn nested_structures_validate() {
        let mut w = JsonWriter::object();
        w.key("name").string("bench");
        w.key("runs").begin_array();
        for i in 0..3 {
            w.begin_object();
            w.key("i").number_u64(i);
            w.key("ok").boolean(i % 2 == 0);
            w.key("note").null();
            w.end_object();
        }
        w.end_array();
        w.key("meta").begin_object();
        w.key("p99").number(1.25);
        let json = w.finish();
        validate_json(&json).expect("writer output parses");
        assert!(json.ends_with("\"p99\":1.25}}"), "{json}");
    }

    #[test]
    fn escaping_and_nonfinite_floats_are_safe() {
        let mut w = JsonWriter::object();
        w.key("s").string("a\"b\\c\nd\u{1}");
        w.key("nan").number(f64::NAN);
        w.key("inf").number(f64::INFINITY);
        let json = w.finish();
        validate_json(&json).expect("escaped output parses");
        assert!(json.contains("\\u0001"), "{json}");
        assert!(json.contains("\"nan\":null"), "{json}");
        assert!(json.contains("\"inf\":null"), "{json}");
    }

    #[test]
    fn top_level_array_and_raw_values() {
        let mut inner = JsonWriter::object();
        inner.key("k").number_u64(7);
        let inner = inner.finish();
        let mut w = JsonWriter::array();
        w.number_u64(1).raw(&inner).string("end");
        let json = w.finish();
        assert_eq!(json, r#"[1,{"k":7},"end"]"#);
        validate_json(&json).unwrap();
    }

    #[test]
    fn finish_closes_open_containers() {
        let mut w = JsonWriter::object();
        w.key("a").begin_array();
        w.begin_object();
        w.key("b").number_u64(1);
        let json = w.finish();
        assert_eq!(json, r#"{"a":[{"b":1}]}"#);
        validate_json(&json).unwrap();
    }

    #[test]
    fn empty_containers_render() {
        assert_eq!(JsonWriter::object().finish(), "{}");
        assert_eq!(JsonWriter::array().finish(), "[]");
    }
}
