//! **distfl-obs** — the workspace observability substrate.
//!
//! Every layer of the pipeline (CONGEST engine rounds and stages, solver
//! phases, experiment sweeps) can record *spans* — named intervals with a
//! start timestamp and a duration — and bump *metrics* (cumulative
//! counters, last-value gauges). A run's recording can then be exported as
//! Chrome `trace_event` JSON (loadable in `chrome://tracing` or Perfetto)
//! or as a flat CSV.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Tracing is off unless the
//!    `DISTFL_TRACE` environment variable (or [`set_enabled`]) turns it
//!    on. Every recording entry point is gated on a single relaxed atomic
//!    load; disabled spans carry no timestamps and disabled counters do
//!    not touch their cells, so the instrumented hot paths stay within
//!    noise of the uninstrumented build.
//! 2. **Never perturb determinism.** Recording only *observes*: it never
//!    feeds back into algorithm state, RNG draws, or message schedules, so
//!    transcripts and experiment CSVs are byte-identical with tracing on
//!    or off (timestamps live only in the trace artifacts).
//! 3. **No cross-thread contention on the hot path.** Events land in a
//!    per-thread ring buffer registered with a global list; the owning
//!    thread takes an uncontended lock per event, and other threads touch
//!    that lock only when a [`snapshot`] drains the buffers. A full ring
//!    overwrites its oldest events and counts them in
//!    [`Snapshot::dropped_events`].
//!
//! The span hierarchy used across the workspace (outer to inner):
//! `run → experiment → trial → phase → round → stage`, with category
//! labels `exp`, `solver`, and `engine` on the events.
//!
//! ```
//! distfl_obs::set_enabled(true);
//! {
//!     let _span = distfl_obs::span_arg("exp", "trial", 3);
//!     distfl_obs::counter("engine.rounds").add(17);
//! }
//! let snap = distfl_obs::snapshot();
//! assert_eq!(snap.events[0].name, "trial");
//! assert!(snap.chrome_json().contains("\"traceEvents\""));
//! distfl_obs::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod json;
mod metrics;

pub use export::{validate_json, Snapshot};
pub use json::JsonWriter;
pub use metrics::{counter, gauge, metrics_reset, Counter, Gauge, MetricValue};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Global on/off switch. Relaxed loads are sufficient: the flag is a pure
/// sampling decision and never synchronizes data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns whether tracing is currently enabled.
///
/// Instrumentation sites that record more than one event (or do any work
/// to prepare one) should check this once and skip the whole block.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off programmatically.
///
/// Enabling pins the trace epoch (the zero point of all span timestamps)
/// if it is not pinned yet.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables tracing if the `DISTFL_TRACE` environment variable is set to
/// anything other than `""` or `"0"`. Returns the resulting state.
pub fn init_from_env() -> bool {
    if matches!(std::env::var("DISTFL_TRACE"), Ok(v) if !v.is_empty() && v != "0") {
        set_enabled(true);
    }
    enabled()
}

/// The instant all trace timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch; 0 for instants predating it.
fn nanos_at(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Buffers hold plain event data; a panic mid-push cannot leave them in
    // a state worse than a missing event, so poisoning is recoverable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One recorded interval. Timestamps and durations are **nanoseconds** —
/// every recording path (RAII spans, [`complete`], [`complete_at`]) stores
/// the same unit, and the exporters convert to Chrome's microseconds
/// exactly once at render time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (the Chrome `name` field), e.g. `"round"`.
    pub name: &'static str,
    /// Category grouping related events (the Chrome `cat` field), e.g.
    /// `"engine"`.
    pub cat: &'static str,
    /// Start timestamp in ns since the trace epoch (the first
    /// [`set_enabled`] call), or since simulation start for events recorded
    /// with [`complete_at`].
    pub ts_nanos: u64,
    /// Duration in ns.
    pub dur_nanos: u64,
    /// Logical id of the recording thread (dense, allocated in
    /// registration order — not the OS thread id).
    pub tid: u64,
    /// Optional numeric argument (round number, trial index, ...).
    pub arg: Option<u64>,
}

/// Per-thread event storage: a fixed-capacity ring that overwrites its
/// oldest events once full.
struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Next overwrite position once `events` reached capacity.
    next: usize,
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity > 0 {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
            self.overwritten += 1;
        } else {
            self.overwritten += 1;
        }
    }

    /// Removes and returns all events, oldest first.
    fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = std::mem::take(&mut self.events);
        out.rotate_left(self.next);
        let dropped = self.overwritten;
        self.next = 0;
        self.overwritten = 0;
        (out, dropped)
    }
}

struct ThreadBuf {
    tid: u64,
    ring: Mutex<Ring>,
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread ring capacity for buffers created after the call.
static CAPACITY: AtomicUsize = AtomicUsize::new(1 << 18);

/// Sets the per-thread ring-buffer capacity (events per thread) for
/// threads that start recording after this call. The default is 2^18.
pub fn set_buffer_capacity(events: usize) {
    CAPACITY.store(events, Ordering::Relaxed);
}

thread_local! {
    static LOCAL: Arc<ThreadBuf> = {
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new(Ring {
                events: Vec::new(),
                capacity: CAPACITY.load(Ordering::Relaxed),
                next: 0,
                overwritten: 0,
            }),
        });
        lock(registry()).push(Arc::clone(&buf));
        buf
    };
}

fn push_event(mut ev: TraceEvent) {
    LOCAL.with(|buf| {
        ev.tid = buf.tid;
        lock(&buf.ring).push(ev);
    });
}

/// RAII guard recording a complete span from construction to drop.
///
/// A `None` payload (tracing disabled at construction) makes the guard a
/// true no-op: no clock reads, no buffer access.
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    live: Option<(Instant, &'static str, &'static str, Option<u64>)>,
}

impl Span {
    /// A guard that records nothing; useful for conditional instrumentation.
    pub fn disabled() -> Self {
        Span { live: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((start, cat, name, arg)) = self.live.take() {
            let dur = start.elapsed().as_nanos() as u64;
            push_event(TraceEvent {
                name,
                cat,
                ts_nanos: nanos_at(start),
                dur_nanos: dur,
                tid: 0,
                arg,
            });
        }
    }
}

/// Opens a span; the interval ends when the returned guard drops.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if enabled() {
        Span { live: Some((Instant::now(), cat, name, None)) }
    } else {
        Span::disabled()
    }
}

/// Opens a span carrying a numeric argument (round, trial, phase index).
#[inline]
pub fn span_arg(cat: &'static str, name: &'static str, arg: u64) -> Span {
    if enabled() {
        Span { live: Some((Instant::now(), cat, name, Some(arg))) }
    } else {
        Span::disabled()
    }
}

/// Records an already-measured interval, for call sites that timestamp
/// their stages themselves (e.g. the engine's stage timings). `nanos` is
/// the duration in nanoseconds, stored without conversion.
#[inline]
pub fn complete(
    cat: &'static str,
    name: &'static str,
    start: Instant,
    nanos: u64,
    arg: Option<u64>,
) {
    if !enabled() {
        return;
    }
    push_event(TraceEvent { name, cat, ts_nanos: nanos_at(start), dur_nanos: nanos, tid: 0, arg });
}

/// Records an interval on a caller-supplied clock: both the start
/// timestamp and the duration are given in nanoseconds, with no wall-clock
/// `Instant` involved. This is how simulated timelines (the discrete-event
/// CONGEST simulator) land on the trace — `ts_nanos` is nanoseconds of
/// *virtual* time since simulation start, and the exporter renders it on
/// the same microsecond axis as everything else.
#[inline]
pub fn complete_at(
    cat: &'static str,
    name: &'static str,
    ts_nanos: u64,
    dur_nanos: u64,
    arg: Option<u64>,
) {
    if !enabled() {
        return;
    }
    push_event(TraceEvent { name, cat, ts_nanos, dur_nanos, tid: 0, arg });
}

/// Drains every thread's ring buffer and snapshots the metrics registry.
///
/// Events are returned oldest-first (stable across threads by timestamp).
/// Draining resets the buffers but leaves metric values in place; use
/// [`metrics_reset`] to also zero those.
pub fn snapshot() -> Snapshot {
    let bufs: Vec<Arc<ThreadBuf>> = lock(registry()).clone();
    let mut events = Vec::new();
    let mut dropped = 0;
    for buf in bufs {
        let (mut evs, d) = lock(&buf.ring).drain();
        events.append(&mut evs);
        dropped += d;
    }
    events.sort_by_key(|e| (e.ts_nanos, e.tid, std::cmp::Reverse(e.dur_nanos)));
    Snapshot { events, metrics: metrics::read_all(), dropped }
}

/// Serializes tests that touch the process-wide obs globals (the enabled
/// flag, thread buffers, metric cells). Test-only.
#[cfg(test)]
pub(crate) fn test_serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    lock(&GATE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_serial as serial;

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        set_enabled(false);
        {
            let _s = span("t", "quiet");
            counter("t.quiet").add(7);
        }
        let snap = snapshot();
        assert!(snap.events.iter().all(|e| e.name != "quiet"));
        // The handle lookup registers the name, but the disabled add must
        // not have landed.
        assert_eq!(counter("t.quiet").get(), 0);
    }

    #[test]
    fn span_guard_records_a_complete_event() {
        let _g = serial();
        set_enabled(true);
        {
            let _s = span_arg("t", "guarded", 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        set_enabled(false);
        let snap = snapshot();
        let ev = snap.events.iter().find(|e| e.name == "guarded").expect("event recorded");
        assert_eq!(ev.cat, "t");
        assert_eq!(ev.arg, Some(42));
        assert!(ev.dur_nanos >= 1_000_000, "slept 2ms, recorded {}ns", ev.dur_nanos);
        assert!(ev.tid > 0);
    }

    #[test]
    fn complete_uses_caller_measurements() {
        let _g = serial();
        set_enabled(true);
        complete("t", "measured", Instant::now(), 5_000_000, Some(3));
        set_enabled(false);
        let snap = snapshot();
        let ev = snap.events.iter().find(|e| e.name == "measured").expect("event recorded");
        // The caller handed over nanoseconds; the event stores them as-is.
        assert_eq!(ev.dur_nanos, 5_000_000);
        assert_eq!(ev.arg, Some(3));
    }

    #[test]
    fn complete_at_records_virtual_time_verbatim() {
        let _g = serial();
        set_enabled(true);
        complete_at("sim", "virtual", 42_000, 7_500, Some(9));
        set_enabled(false);
        let snap = snapshot();
        let ev = snap.events.iter().find(|e| e.name == "virtual").expect("event recorded");
        assert_eq!(ev.ts_nanos, 42_000);
        assert_eq!(ev.dur_nanos, 7_500);
        assert_eq!(ev.arg, Some(9));
        assert!(ev.tid > 0, "simulated events still carry the recording thread id");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = Ring { events: Vec::new(), capacity: 3, next: 0, overwritten: 0 };
        let ev = |i: u64| TraceEvent {
            name: "e",
            cat: "t",
            ts_nanos: i,
            dur_nanos: 0,
            tid: 1,
            arg: None,
        };
        for i in 0..5 {
            ring.push(ev(i));
        }
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 2);
        assert_eq!(events.iter().map(|e| e.ts_nanos).collect::<Vec<_>>(), vec![2, 3, 4]);
        // Drained rings restart empty.
        let (events, dropped) = ring.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn snapshot_merges_threads_in_timestamp_order() {
        let _g = serial();
        set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let _s = span_arg("t", "worker", i);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let snap = snapshot();
        let workers: Vec<_> = snap.events.iter().filter(|e| e.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(snap.events.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
    }
}
