//! # distfl-core
//!
//! Distributed approximation algorithms for uncapacitated facility location
//! in the CONGEST model — the primary contribution of the `distfl`
//! reproduction of **“Facility Location: Distributed Approximation”
//! (Moscibroda–Wattenhofer, PODC 2005)**.
//!
//! ## The reproduced result
//!
//! For every round budget `k`, a distributed algorithm computes an
//! `O(√k·(m·ρ)^{1/√k}·log(m+n))`-approximation in `O(k)` communication
//! rounds, where `ρ` is the instance's coefficient spread. This crate
//! reconstructs that technique family (the paper's exact pseudo-code is
//! unavailable; see DESIGN.md):
//!
//! * [`paydual::PayDual`] — distributed dual ascent with per-client
//!   geometric raising; `s` phases cost `3s + O(1)` rounds and lose a
//!   per-phase factor `γ = B^{1/s}`,
//! * [`bucket::GreedyBucket`] — the two-level (`s_out × s_in`) bucketed
//!   parallel greedy mirroring the paper's `√k × √k` nesting,
//! * [`round::distributed_round`] — distributed randomized rounding of fractional
//!   openings (the `log(m+n)` factor),
//!
//! plus the baselines a credible evaluation needs: sequential star greedy
//! ([`greedy`]), Jain–Vazirani ([`jv`]) and Mettu–Plaxton ([`mp`])
//! 3-approximations for metric instances, and the straw-man simulated
//! sequential greedy ([`seqsim`]) whose round count the paper's algorithm
//! beats.
//!
//! ## Quick start
//!
//! ```
//! use distfl_core::paydual::{PayDual, PayDualParams};
//! use distfl_core::FlAlgorithm;
//! use distfl_instance::generators::{InstanceGenerator, UniformRandom};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instance = UniformRandom::new(8, 30)?.generate(42)?;
//! let algo = PayDual::new(PayDualParams::with_phases(6));
//! let outcome = algo.run(&instance, 1)?;
//! outcome.solution.check_feasible(&instance)?;
//! println!(
//!     "cost {} in {} CONGEST rounds",
//!     outcome.solution.cost(&instance),
//!     outcome.transcript.unwrap().num_rounds()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod bucket;
pub mod capacitated;
mod dispatch;
mod error;
pub mod fraclp;
pub mod greedy;
pub mod jv;
pub mod kmedian;
pub mod localsearch;
pub mod metricball;
mod model;
pub mod mp;
pub mod outliers;
pub mod paydual;
mod report;
pub mod round;
mod runner;
pub mod seqdist;
pub mod seqsim;
pub mod theory;
pub mod warm;

pub use dispatch::{SolverKind, AUTO_LOCAL_SEARCH_LINK_LIMIT};
pub use error::CoreError;
pub use model::{client_node, facility_node, node_role, topology_of, Role};
pub use report::RunReport;
pub use runner::{evaluate, FlAlgorithm, Outcome};
