//! k-median via Lagrangian relaxation — the classic *extension* of
//! facility-location primal–dual machinery (Jain–Vazirani §4): to open at
//! most `k` facilities minimizing total connection cost, give every
//! facility a uniform Lagrangian price `z` and binary-search `z` until the
//! facility-location solution opens `≤ k` facilities; larger prices open
//! fewer facilities.
//!
//! Two solvers share the probing driver:
//!
//! * [`sequential`] — probes with the Jain–Vazirani 3-approximation
//!   (metric instances),
//! * [`distributed`] — probes with [`crate::paydual::PayDual`], so each
//!   probe is a full `O(k)`-round CONGEST run; the whole search costs
//!   `O(log(n·c_max/ε))` distributed executions, each independent — the
//!   natural way to lift the paper's algorithm to cardinality constraints.
//!
//! Both return the best `≤ k`-open solution seen across all probes. An
//! [`exact`] solver (small `m`) provides the test-suite ground truth.
//!
//! k-median is a complete-metric problem; both probing solvers require a
//! complete instance so that any open set can serve every client.

use distfl_instance::{Cost, FacilityId, Instance, InstanceBuilder, Solution};

use crate::error::CoreError;
use crate::jv;
use crate::paydual::{PayDual, PayDualParams};
use crate::runner::FlAlgorithm;

/// Result of a k-median computation.
#[derive(Debug, Clone)]
pub struct KMedianResult {
    /// The solution (at most `k` facilities open; opening costs of the
    /// original instance are ignored by the objective).
    pub solution: Solution,
    /// Its k-median objective: total connection cost.
    pub connection_cost: f64,
    /// How many Lagrangian probes the search used.
    pub probes: u32,
}

/// Rebuilds the instance with a uniform opening cost `z` on every facility.
fn with_uniform_opening(instance: &Instance, z: f64) -> Instance {
    let mut b = InstanceBuilder::new();
    let fids: Vec<FacilityId> = instance
        .facilities()
        .map(|_| b.add_facility(Cost::new(z).expect("finite non-negative price")))
        .collect();
    for j in instance.clients() {
        let c = b.add_client();
        for (i, cost) in instance.client_links(j).iter() {
            b.link(c, fids[i as usize], Cost::from_validated(cost)).expect("copying valid links");
        }
    }
    b.build().expect("copy of a valid instance is valid")
}

/// Validates common k-median preconditions.
fn check_inputs(instance: &Instance, k: usize) -> Result<(), CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParams { reason: "k must be at least 1".into() });
    }
    if !instance.is_complete() {
        return Err(CoreError::InvalidParams {
            reason: "k-median probing requires a complete instance".into(),
        });
    }
    Ok(())
}

/// The largest useful Lagrangian price: one client alone paying for the
/// most expensive detour.
fn price_ceiling(instance: &Instance) -> f64 {
    let max_c = instance
        .clients()
        .flat_map(|j| instance.client_links(j).costs.iter().copied())
        .fold(0.0f64, f64::max);
    (instance.num_clients() as f64) * max_c.max(1.0) * 2.0
}

/// Generic Lagrangian driver: binary-search `z`, keep the best `≤ k`-open
/// solution.
fn search<F>(instance: &Instance, k: usize, probes: u32, mut solve_at: F) -> KMedianResult
where
    F: FnMut(&Instance) -> Solution,
{
    let mut lo = 0.0f64;
    let mut hi = price_ceiling(instance);
    let mut best: Option<Solution> = None;
    let mut used = 0;
    for _ in 0..probes {
        used += 1;
        let z = f64::midpoint(lo, hi);
        let priced = with_uniform_opening(instance, z);
        let solution = solve_at(&priced);
        let over_budget = solution.num_open() > k;
        // Every probe yields a candidate: over-budget solutions are trimmed
        // to the best k of their own open set (the Lagrangian open count
        // can jump past k without ever hitting it exactly).
        let candidate = if over_budget { trim_to_k(instance, &solution, k) } else { solution };
        let better = best
            .as_ref()
            .is_none_or(|b| connection_only(instance, &candidate) < connection_only(instance, b));
        if better {
            best = Some(candidate);
        }
        if over_budget {
            lo = z;
        } else {
            hi = z;
        }
    }
    let solution = best.unwrap_or_else(|| {
        // Even the highest probed price opened too many facilities (can
        // happen with degenerate all-zero connection costs): open the
        // single facility with the cheapest total assignment.
        let i = instance
            .facilities()
            .min_by(|&a, &b| {
                total_assignment_cost(instance, a).total_cmp(&total_assignment_cost(instance, b))
            })
            .expect("instances have facilities");
        Solution::from_assignment(instance, vec![i; instance.num_clients()])
            .expect("complete instance: single facility serves everyone")
    });
    let connection_cost = connection_only(instance, &solution);
    KMedianResult { solution, connection_cost, probes: used }
}

/// Total connection cost of `solution` on the *original* instance.
fn connection_only(instance: &Instance, solution: &Solution) -> f64 {
    solution.connection_cost(instance).value()
}

/// Selects the best `k` facilities among `solution`'s open set by greedy
/// marginal cost reduction, reassigning every client (completeness
/// assumed).
fn trim_to_k(instance: &Instance, solution: &Solution, k: usize) -> Solution {
    let candidates: Vec<FacilityId> = solution.open_facilities().collect();
    debug_assert!(candidates.len() > k);
    let n = instance.num_clients();
    let mut kept: Vec<FacilityId> = Vec::with_capacity(k);
    let mut cur_best = vec![f64::INFINITY; n];
    for _ in 0..k {
        let mut best: Option<(FacilityId, f64)> = None;
        for &i in &candidates {
            if kept.contains(&i) {
                continue;
            }
            let new_cost: f64 = instance
                .clients()
                .map(|j| {
                    let c = instance.connection_cost(j, i).expect("complete instance").value();
                    c.min(cur_best[j.index()])
                })
                .sum();
            if best.is_none_or(|(_, b)| new_cost < b) {
                best = Some((i, new_cost));
            }
        }
        let (i, _) = best.expect("more candidates than k");
        kept.push(i);
        for j in instance.clients() {
            let c = instance.connection_cost(j, i).expect("complete instance").value();
            cur_best[j.index()] = cur_best[j.index()].min(c);
        }
    }
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            kept.iter()
                .copied()
                .min_by(|&a, &b| {
                    instance
                        .connection_cost(j, a)
                        .expect("complete instance")
                        .cmp(&instance.connection_cost(j, b).expect("complete instance"))
                        .then(a.cmp(&b))
                })
                .expect("k >= 1 facilities kept")
        })
        .collect();
    Solution::from_assignment(instance, assignment)
        .expect("complete instance: any open set is feasible")
}

/// Cost of assigning every client to facility `i` (completeness assumed).
fn total_assignment_cost(instance: &Instance, i: FacilityId) -> f64 {
    instance
        .clients()
        .map(|j| instance.connection_cost(j, i).expect("complete instance").value())
        .sum()
}

/// k-median via Jain–Vazirani probing (sequential; metric instances).
///
/// # Errors
///
/// Returns a [`CoreError`] for `k = 0` or an incomplete instance.
pub fn sequential(instance: &Instance, k: usize) -> Result<KMedianResult, CoreError> {
    check_inputs(instance, k)?;
    Ok(search(instance, k, 40, |priced| {
        let (solution, _) = jv::solve(priced);
        solution.reassign_greedily(priced)
    }))
}

/// k-median via distributed PayDual probing: every probe is an independent
/// `O(phases)`-round CONGEST execution.
///
/// # Errors
///
/// Returns a [`CoreError`] for invalid parameters or an incomplete
/// instance.
pub fn distributed(
    instance: &Instance,
    k: usize,
    phases: u32,
    seed: u64,
) -> Result<KMedianResult, CoreError> {
    check_inputs(instance, k)?;
    if phases == 0 {
        return Err(CoreError::InvalidParams { reason: "need at least one phase".into() });
    }
    let algo = PayDual::new(PayDualParams::with_phases(phases));
    Ok(search(instance, k, 24, |priced| {
        algo.run(priced, seed).expect("paydual succeeds on valid instances").solution
    }))
}

/// Exact k-median by branch-and-bound over facility subsets of size ≤ `k`
/// (test-suite ground truth; refuses more than `limit` facilities).
///
/// # Errors
///
/// Returns a [`CoreError`] for `k = 0` or an oversized instance.
pub fn exact(instance: &Instance, k: usize, limit: usize) -> Result<KMedianResult, CoreError> {
    if k == 0 {
        return Err(CoreError::InvalidParams { reason: "k must be at least 1".into() });
    }
    let m = instance.num_facilities();
    if m > limit {
        return Err(CoreError::InvalidParams {
            reason: format!("exact k-median refused: {m} facilities exceeds limit {limit}"),
        });
    }
    let n = instance.num_clients();
    // suffix_min[f][j]: cheapest link of j among facilities f.. .
    let mut suffix_min = vec![vec![f64::INFINITY; n]; m + 1];
    for f in (0..m).rev() {
        let (head, tail) = suffix_min.split_at_mut(f + 1);
        head[f].clone_from(&tail[0]);
        for (j, c) in instance.facility_links(FacilityId::new(f as u32)).iter() {
            let slot = &mut head[f][j as usize];
            *slot = slot.min(c);
        }
    }

    struct S<'a> {
        instance: &'a Instance,
        k: usize,
        suffix_min: &'a [Vec<f64>],
        best_cost: f64,
        best_open: Vec<FacilityId>,
        cur_open: Vec<FacilityId>,
        cur_best: Vec<f64>,
    }
    impl S<'_> {
        fn recurse(&mut self, f: usize) {
            let mut bound = 0.0;
            let can_extend = self.cur_open.len() < self.k;
            for (j, &cur) in self.cur_best.iter().enumerate() {
                let reachable = if can_extend { cur.min(self.suffix_min[f][j]) } else { cur };
                if !reachable.is_finite() {
                    return;
                }
                bound += reachable;
                if bound >= self.best_cost {
                    return;
                }
            }
            if f == self.instance.num_facilities() {
                if bound < self.best_cost {
                    self.best_cost = bound;
                    self.best_open = self.cur_open.clone();
                }
                return;
            }
            let i = FacilityId::new(f as u32);
            if can_extend {
                let saved: Vec<(usize, f64)> = self
                    .instance
                    .facility_links(i)
                    .iter()
                    .filter_map(|(j, c)| {
                        let slot = self.cur_best[j as usize];
                        (c < slot).then(|| {
                            self.cur_best[j as usize] = c;
                            (j as usize, slot)
                        })
                    })
                    .collect();
                self.cur_open.push(i);
                self.recurse(f + 1);
                self.cur_open.pop();
                for &(j, old) in saved.iter().rev() {
                    self.cur_best[j] = old;
                }
            }
            self.recurse(f + 1);
        }
    }
    let mut s = S {
        instance,
        k,
        suffix_min: &suffix_min,
        best_cost: f64::INFINITY,
        best_open: Vec::new(),
        cur_open: Vec::new(),
        cur_best: vec![f64::INFINITY; n],
    };
    s.recurse(0);
    let open = s.best_open;
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            // First-win strict `<` over the id-sorted row = the
            // `(cost, facility id)`-lexicographic minimum.
            let mut best: Option<(u32, f64)> = None;
            for (i, c) in instance.client_links(j).iter() {
                if open.contains(&FacilityId::new(i)) && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((i, c));
                }
            }
            FacilityId::new(best.expect("optimal k-median set covers every client").0)
        })
        .collect();
    let solution = Solution::from_assignment(instance, assignment).expect("assignment over links");
    let connection_cost = connection_only(instance, &solution);
    Ok(KMedianResult { solution, connection_cost, probes: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Clustered, Euclidean, InstanceGenerator, UniformRandom};

    #[test]
    fn exact_matches_brute_force_on_tiny_instances() {
        let inst = Euclidean::new(5, 10).unwrap().generate(1).unwrap();
        for k in 1..=4usize {
            let opt = exact(&inst, k, 10).unwrap();
            // Brute force over all subsets of size <= k.
            let mut best = f64::INFINITY;
            for mask in 1u32..(1 << 5) {
                if (mask.count_ones() as usize) > k {
                    continue;
                }
                let open: Vec<FacilityId> = (0..5)
                    .filter(|b| mask & (1 << b) != 0)
                    .map(|b| FacilityId::new(b as u32))
                    .collect();
                let cost: f64 = inst
                    .clients()
                    .map(|j| {
                        open.iter()
                            .map(|&i| inst.connection_cost(j, i).unwrap().value())
                            .fold(f64::INFINITY, f64::min)
                    })
                    .sum();
                best = best.min(cost);
            }
            assert!((opt.connection_cost - best).abs() < 1e-9, "k={k}");
            assert!(opt.solution.num_open() <= k);
        }
    }

    #[test]
    fn exact_cost_decreases_in_k() {
        let inst = Clustered::new(3, 8, 24).unwrap().generate(2).unwrap();
        let costs: Vec<f64> =
            (1..=6).map(|k| exact(&inst, k, 10).unwrap().connection_cost).collect();
        for w in costs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "costs not monotone: {costs:?}");
        }
    }

    #[test]
    fn sequential_respects_k_and_is_competitive() {
        let inst = Euclidean::new(8, 30).unwrap().generate(3).unwrap();
        for k in [1usize, 2, 4] {
            let got = sequential(&inst, k).unwrap();
            assert!(got.solution.num_open() <= k, "k={k}: opened {}", got.solution.num_open());
            got.solution.check_feasible(&inst).unwrap();
            let opt = exact(&inst, k, 10).unwrap().connection_cost;
            assert!(
                got.connection_cost <= 6.0 * opt + 1e-9,
                "k={k}: {} vs optimum {opt}",
                got.connection_cost
            );
        }
    }

    #[test]
    fn distributed_respects_k_and_is_competitive() {
        let inst = Clustered::new(3, 8, 24).unwrap().generate(4).unwrap();
        for k in [1usize, 3] {
            let got = distributed(&inst, k, 10, 7).unwrap();
            assert!(got.solution.num_open() <= k);
            got.solution.check_feasible(&inst).unwrap();
            let opt = exact(&inst, k, 10).unwrap().connection_cost;
            assert!(
                got.connection_cost <= 8.0 * opt + 1e-6,
                "k={k}: {} vs optimum {opt}",
                got.connection_cost
            );
        }
    }

    #[test]
    fn clustered_instance_with_matching_k_is_nearly_exact() {
        // 3 tight clusters, k=3: probing should find the cluster centers.
        let inst = Clustered::with_geometry(3, 9, 30, 100.0, 1.0).unwrap().generate(5).unwrap();
        let got = sequential(&inst, 3).unwrap();
        let opt = exact(&inst, 3, 10).unwrap().connection_cost;
        assert!(got.connection_cost <= 1.5 * opt + 1e-9, "{} vs {opt}", got.connection_cost);
    }

    #[test]
    fn rejects_bad_inputs() {
        let complete = Euclidean::new(3, 5).unwrap().generate(0).unwrap();
        assert!(sequential(&complete, 0).is_err());
        assert!(distributed(&complete, 0, 4, 0).is_err());
        assert!(distributed(&complete, 2, 0, 0).is_err());
        assert!(exact(&complete, 0, 10).is_err());
        assert!(exact(&complete, 2, 2).is_err());

        // Sparse instance rejected by the probing solvers.
        let sparse = distfl_instance::generators::GridNetwork::with_radius(6, 6, 4, 10, 2)
            .unwrap()
            .generate(1)
            .unwrap();
        if !sparse.is_complete() {
            assert!(sequential(&sparse, 2).is_err());
        }
    }

    #[test]
    fn uniform_instances_work_too() {
        // Non-metric completeness is enough for the driver itself (JV's
        // guarantee needs metric, but the machinery must stay feasible).
        let inst = UniformRandom::new(6, 18).unwrap().generate(6).unwrap();
        let got = distributed(&inst, 2, 8, 1).unwrap();
        assert!(got.solution.num_open() <= 2);
        got.solution.check_feasible(&inst).unwrap();
    }
}
