//! Mapping between facility-location instances and CONGEST networks.
//!
//! Facility `i` becomes node `i`, client `j` becomes node `m + j`, and the
//! communication edges are exactly the instance's links — the model of the
//! PODC 2005 paper, where a client can only talk to (and connect to)
//! facilities it has a link with.

use distfl_congest::{CongestError, NodeId, Topology};
use distfl_instance::{ClientId, FacilityId, Instance};

/// The role a CONGEST node plays in the bipartite facility-location
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The node simulates a facility.
    Facility(FacilityId),
    /// The node simulates a client.
    Client(ClientId),
}

/// The CONGEST node simulating facility `i`.
#[inline]
pub fn facility_node(i: FacilityId) -> NodeId {
    NodeId::new(i.raw())
}

/// The CONGEST node simulating client `j` in an instance with
/// `num_facilities` facilities.
#[inline]
pub fn client_node(num_facilities: usize, j: ClientId) -> NodeId {
    NodeId::new(num_facilities as u32 + j.raw())
}

/// The role of a CONGEST node in an instance with `num_facilities`
/// facilities.
#[inline]
pub fn node_role(num_facilities: usize, node: NodeId) -> Role {
    if node.index() < num_facilities {
        Role::Facility(FacilityId::new(node.raw()))
    } else {
        Role::Client(ClientId::new(node.raw() - num_facilities as u32))
    }
}

/// Builds the bipartite communication topology of an instance: one edge per
/// link.
///
/// # Errors
///
/// Propagates topology construction errors (cannot occur for a valid
/// instance; kept in the signature for honesty).
pub fn topology_of(instance: &Instance) -> Result<Topology, CongestError> {
    let m = instance.num_facilities();
    let pairs = instance
        .clients()
        .flat_map(|j| {
            instance
                .client_links(j)
                .ids
                .iter()
                .map(move |&i| (i as usize, j.index()))
                .collect::<Vec<_>>()
        })
        .collect::<Vec<_>>();
    Topology::bipartite(m, instance.num_clients(), pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};

    #[test]
    fn node_mapping_round_trips() {
        let m = 5;
        let f = FacilityId::new(3);
        let c = ClientId::new(7);
        assert_eq!(facility_node(f), NodeId::new(3));
        assert_eq!(client_node(m, c), NodeId::new(12));
        assert_eq!(node_role(m, NodeId::new(3)), Role::Facility(f));
        assert_eq!(node_role(m, NodeId::new(12)), Role::Client(c));
    }

    #[test]
    fn dense_instance_maps_to_complete_bipartite() {
        let inst = UniformRandom::new(4, 6).unwrap().generate(1).unwrap();
        let topo = topology_of(&inst).unwrap();
        assert_eq!(topo.num_nodes(), 10);
        assert_eq!(topo.num_edges(), 24);
        assert!(topo.are_neighbors(NodeId::new(0), NodeId::new(4)));
        assert!(!topo.are_neighbors(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn sparse_instance_maps_to_sparse_topology() {
        let inst = GridNetwork::with_radius(8, 8, 6, 20, 2).unwrap().generate(2).unwrap();
        let topo = topology_of(&inst).unwrap();
        assert_eq!(topo.num_edges(), inst.num_links());
        // Every link is an edge.
        for j in inst.clients() {
            for &i in inst.client_links(j).ids {
                assert!(topo.are_neighbors(facility_node(FacilityId::new(i)), client_node(6, j)));
            }
        }
    }
}
