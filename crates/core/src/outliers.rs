//! **Outliers** — the robust metric UFL variant: drop a budgeted fraction
//! of the most expensive clients, solve the core with
//! [`crate::metricball`], then reattach.
//!
//! In robust facility location (the Inamdar–Pai–Pemmaraju framing) a few
//! far-away clients can dominate the whole objective and drag facilities
//! toward them; the robust objective is allowed to ignore up to a
//! `drop_fraction` of clients. This reconstruction uses the simplest
//! deterministic budget rule: rank clients by their *cheapest* connection
//! cost (how expensive they are to serve at all), drop the top
//! `⌊fraction·n⌋` (never all of them), run the MetricBall protocol on the
//! surviving core, and reattach the dropped clients afterwards — each to
//! its cheapest *core-open* linked facility, or, when no linked facility
//! opened, to its cheapest link (which then opens). The returned
//! [`Solution`] therefore stays feasible for the **full** instance; use
//! [`robust_cost`] for the objective that ignores the dropped clients'
//! connection costs.
//!
//! The outlier selection and the reattachment are shared, deterministic
//! sequential code; the fast/reference split is the core solve — the
//! distributed protocol vs [`crate::metricball::solve_reference`] — so
//! [`Outliers::run`] is proptested **bitwise equal** to
//! [`solve_reference`] (the PR-2 treatment; `portfolio_equivalence.rs`).
//!
//! ```
//! use distfl_core::outliers::{Outliers, OutliersParams};
//! use distfl_core::FlAlgorithm;
//! use distfl_instance::generators::{Euclidean, InstanceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instance = Euclidean::new(6, 30)?.generate(4)?;
//! let algo = Outliers::new(OutliersParams::new(0.1, 4)?);
//! let outcome = algo.run(&instance, 7)?;
//! outcome.solution.check_feasible(&instance)?;
//! # Ok(())
//! # }
//! ```

use distfl_congest::SimConfig;
use distfl_instance::{ClientId, Cost, FacilityId, Instance, InstanceBuilder, Solution};

use crate::error::CoreError;
use crate::metricball::{self, MetricBall, MetricBallParams};
use crate::paydual::SimulatedRun;
use crate::runner::{FlAlgorithm, Outcome};

/// Tuning parameters for [`Outliers`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutliersParams {
    /// Fraction of clients the robust objective may drop, in `[0, 1)`.
    pub drop_fraction: f64,
    /// MetricBall phase count for the core solve.
    pub phases: u32,
    /// Worker threads for the engine (`None` = serial; results are
    /// identical).
    pub threads: Option<usize>,
}

impl OutliersParams {
    /// Validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] unless
    /// `0 ≤ drop_fraction < 1` and `phases ≥ 1`.
    pub fn new(drop_fraction: f64, phases: u32) -> Result<Self, CoreError> {
        if !(0.0..1.0).contains(&drop_fraction) {
            return Err(CoreError::InvalidParams {
                reason: format!("drop fraction must be in [0, 1), got {drop_fraction}"),
            });
        }
        if phases == 0 {
            return Err(CoreError::InvalidParams {
                reason: "outliers needs at least one phase".to_owned(),
            });
        }
        Ok(OutliersParams { drop_fraction, phases, threads: None })
    }
}

impl Default for OutliersParams {
    /// Drop up to 10% of clients, six core phases.
    fn default() -> Self {
        OutliersParams { drop_fraction: 0.1, phases: 6, threads: None }
    }
}

/// The robust/outliers algorithm (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Outliers {
    params: OutliersParams,
}

impl Outliers {
    /// Creates the algorithm with explicit parameters.
    pub fn new(params: OutliersParams) -> Self {
        Outliers { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> OutliersParams {
        self.params
    }

    /// Runs the core solve on the discrete-event simulator instead of the
    /// lock-step engine (same selection and reattachment around it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlAlgorithm::run`] plus the simulator's.
    pub fn run_simulated(
        &self,
        instance: &Instance,
        seed: u64,
        sim: SimConfig,
    ) -> Result<SimulatedRun, CoreError> {
        let dropped = select_outliers(instance, self.params.drop_fraction);
        let core = MetricBall::new(MetricBallParams {
            phases: self.params.phases,
            threads: self.params.threads,
        });
        if dropped.is_empty() {
            return core.run_simulated(instance, seed, sim);
        }
        let (core_instance, survivors) = build_core(instance, &dropped)?;
        let mut run = core.run_simulated(&core_instance, seed, sim)?;
        run.outcome.solution = reattach(instance, &dropped, &survivors, &run.outcome.solution)?;
        Ok(run)
    }
}

impl FlAlgorithm for Outliers {
    fn name(&self) -> String {
        format!("outliers(s={},drop={})", self.params.phases, self.params.drop_fraction)
    }

    fn run(&self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError> {
        let _span = distfl_obs::span_arg("solver", "outliers", u64::from(self.params.phases));
        OutliersParams::new(self.params.drop_fraction, self.params.phases)?;
        let dropped = select_outliers(instance, self.params.drop_fraction);
        let core = MetricBall::new(MetricBallParams {
            phases: self.params.phases,
            threads: self.params.threads,
        });
        if dropped.is_empty() {
            return core.run(instance, seed);
        }
        let (core_instance, survivors) = build_core(instance, &dropped)?;
        let mut outcome = core.run(&core_instance, seed)?;
        outcome.solution = reattach(instance, &dropped, &survivors, &outcome.solution)?;
        Ok(outcome)
    }
}

/// The retained naive reference: identical selection and reattachment, but
/// the core is solved by the sequential
/// [`crate::metricball::solve_reference`] — must agree **bitwise** with
/// [`Outliers::run`].
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] on an invalid `params`.
pub fn solve_reference(
    instance: &Instance,
    params: OutliersParams,
    seed: u64,
) -> Result<Solution, CoreError> {
    OutliersParams::new(params.drop_fraction, params.phases)?;
    let dropped = select_outliers(instance, params.drop_fraction);
    if dropped.is_empty() {
        return metricball::solve_reference(instance, params.phases, seed);
    }
    let (core_instance, survivors) = build_core(instance, &dropped)?;
    let core_solution = metricball::solve_reference(&core_instance, params.phases, seed)?;
    reattach(instance, &dropped, &survivors, &core_solution)
}

/// The deterministic drop set: the `⌊fraction·n⌋` clients (never all `n`)
/// most expensive to serve at all, ranked by cheapest-link cost with ties
/// to the higher client id — a fixed total order, so the same instance
/// always drops the same clients. Returned in ascending id order.
pub fn select_outliers(instance: &Instance, drop_fraction: f64) -> Vec<ClientId> {
    let n = instance.num_clients();
    let budget = ((drop_fraction * n as f64).floor() as usize).min(n - 1);
    if budget == 0 {
        return Vec::new();
    }
    let mut order: Vec<(f64, u32)> =
        instance.clients().map(|j| (instance.cheapest_link(j).1.value(), j.raw())).collect();
    order.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
    let mut dropped: Vec<ClientId> =
        order[..budget].iter().map(|&(_, j)| ClientId::new(j)).collect();
    dropped.sort();
    dropped
}

/// The robust objective: opening costs of the open facilities plus the
/// connection costs of every client *not* in `dropped`.
pub fn robust_cost(instance: &Instance, solution: &Solution, dropped: &[ClientId]) -> f64 {
    let mut ignored = vec![false; instance.num_clients()];
    for &j in dropped {
        ignored[j.index()] = true;
    }
    let opening: f64 = solution.open_facilities().map(|i| instance.opening_cost(i).value()).sum();
    let connection: f64 = instance
        .clients()
        .filter(|j| !ignored[j.index()])
        .map(|j| {
            instance
                .connection_cost(j, solution.assigned(j))
                .expect("assignments use existing links")
                .value()
        })
        .sum();
    opening + connection
}

/// Builds the core instance: all facilities, surviving clients in original
/// id order, links copied. Returns it with the survivor id mapping.
fn build_core(
    instance: &Instance,
    dropped: &[ClientId],
) -> Result<(Instance, Vec<ClientId>), CoreError> {
    let mut is_dropped = vec![false; instance.num_clients()];
    for &j in dropped {
        is_dropped[j.index()] = true;
    }
    let mut b = InstanceBuilder::new();
    let fids: Vec<FacilityId> =
        instance.facilities().map(|i| b.add_facility(instance.opening_cost(i))).collect();
    let mut survivors = Vec::with_capacity(instance.num_clients() - dropped.len());
    for j in instance.clients() {
        if is_dropped[j.index()] {
            continue;
        }
        let c = b.add_client();
        for (i, cost) in instance.client_links(j).iter() {
            b.link(c, fids[i as usize], Cost::from_validated(cost))?;
        }
        survivors.push(j);
    }
    Ok((b.build()?, survivors))
}

/// Maps the core solution back to the full instance and reattaches the
/// dropped clients — each to its cheapest core-open linked facility (ties
/// to the lowest id), or to its cheapest link when none opened. All
/// reattachments are simultaneous: decided against the core open set, so
/// the result is independent of processing order.
fn reattach(
    instance: &Instance,
    dropped: &[ClientId],
    survivors: &[ClientId],
    core_solution: &Solution,
) -> Result<Solution, CoreError> {
    let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
    for (k, &j) in survivors.iter().enumerate() {
        assignment[j.index()] = core_solution.assigned(ClientId::new(k as u32));
    }
    for &j in dropped {
        let links = instance.client_links(j);
        let mut open_best: Option<usize> = None;
        let mut any_best = 0;
        for (idx, (&id, &c)) in links.ids.iter().zip(links.costs.iter()).enumerate() {
            if c < links.costs[any_best] {
                any_best = idx;
            }
            if core_solution.is_open(FacilityId::new(id))
                && open_best.is_none_or(|b| c < links.costs[b])
            {
                open_best = Some(idx);
            }
        }
        assignment[j.index()] = FacilityId::new(links.ids[open_best.unwrap_or(any_best)]);
    }
    Ok(Solution::from_assignment(instance, assignment)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Clustered, Euclidean, InstanceGenerator, UniformRandom};

    fn algo(drop: f64, phases: u32) -> Outliers {
        Outliers::new(OutliersParams::new(drop, phases).unwrap())
    }

    #[test]
    fn zero_budget_delegates_to_metricball() {
        let inst = Euclidean::new(5, 9).unwrap().generate(2).unwrap();
        // 0.1 * 9 rounds down to zero dropped clients.
        let robust = algo(0.1, 4).run(&inst, 3).unwrap();
        let plain = MetricBall::new(MetricBallParams::with_phases(4)).run(&inst, 3).unwrap();
        assert_eq!(robust.solution, plain.solution);
        assert_eq!(robust.transcript, plain.transcript);
        assert!(select_outliers(&inst, 0.1).is_empty());
    }

    #[test]
    fn selection_is_the_most_expensive_clients() {
        let inst = Euclidean::new(5, 40).unwrap().generate(7).unwrap();
        let dropped = select_outliers(&inst, 0.2);
        assert_eq!(dropped.len(), 8);
        let cutoff =
            dropped.iter().map(|&j| inst.cheapest_link(j).1.value()).fold(f64::INFINITY, f64::min);
        for j in inst.clients() {
            if !dropped.contains(&j) {
                assert!(
                    inst.cheapest_link(j).1.value() <= cutoff,
                    "kept client {j} more expensive than a dropped one"
                );
            }
        }
        // Never drops everyone.
        let one = UniformRandom::new(3, 1).unwrap().generate(0).unwrap();
        assert!(select_outliers(&one, 0.99).is_empty());
    }

    #[test]
    fn full_solution_stays_feasible() {
        for seed in 0..5 {
            let inst = Clustered::new(3, 6, 25).unwrap().generate(seed).unwrap();
            let out = algo(0.2, 5).run(&inst, seed).unwrap();
            out.solution.check_feasible(&inst).unwrap();
        }
    }

    #[test]
    fn reference_matches_the_distributed_run() {
        for seed in 0..8 {
            let inst = Euclidean::new(6, 30).unwrap().generate(seed).unwrap();
            let params = OutliersParams::new(0.15, 4).unwrap();
            let fast = Outliers::new(params).run(&inst, seed).unwrap();
            let reference = solve_reference(&inst, params, seed).unwrap();
            assert_eq!(fast.solution, reference, "seed {seed}: reference diverged");
        }
    }

    #[test]
    fn robust_cost_never_exceeds_full_cost() {
        let inst = Euclidean::new(6, 30).unwrap().generate(1).unwrap();
        let out = algo(0.2, 5).run(&inst, 1).unwrap();
        let dropped = select_outliers(&inst, 0.2);
        let robust = robust_cost(&inst, &out.solution, &dropped);
        let full = out.solution.cost(&inst).value();
        assert!(robust <= full, "robust {robust} > full {full}");
        assert_eq!(robust_cost(&inst, &out.solution, &[]), full);
    }

    #[test]
    fn dropping_outliers_cannot_hurt_the_robust_objective_much() {
        // A clustered instance with the far-flung tail dropped should have
        // a robust cost no worse than serving everyone with MetricBall.
        let inst = Clustered::new(3, 6, 40).unwrap().generate(9).unwrap();
        let dropped = select_outliers(&inst, 0.15);
        let robust = algo(0.15, 6).run(&inst, 2).unwrap();
        let plain = MetricBall::new(MetricBallParams::with_phases(6)).run(&inst, 2).unwrap();
        let robust_obj = robust_cost(&inst, &robust.solution, &dropped);
        let plain_obj = robust_cost(&inst, &plain.solution, &dropped);
        assert!(
            robust_obj <= plain_obj * 1.5 + 1e-9,
            "robust {robust_obj} much worse than plain {plain_obj}"
        );
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(OutliersParams::new(1.0, 4).is_err());
        assert!(OutliersParams::new(-0.1, 4).is_err());
        assert!(OutliersParams::new(0.5, 0).is_err());
        assert!(OutliersParams::new(0.0, 1).is_ok());
    }

    #[test]
    fn name_includes_parameters() {
        assert_eq!(algo(0.25, 6).name(), "outliers(s=6,drop=0.25)");
    }

    #[test]
    fn simulated_run_matches_the_lockstep_engine() {
        let inst = Euclidean::new(7, 30).unwrap().generate(3).unwrap();
        let a = algo(0.2, 5);
        let lockstep = a.run(&inst, 11).unwrap();
        let sim = a.run_simulated(&inst, 11, SimConfig::default()).unwrap();
        assert_eq!(lockstep.solution, sim.outcome.solution);
        assert_eq!(lockstep.transcript, sim.outcome.transcript);
    }
}
