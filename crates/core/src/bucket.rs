//! **GreedyBucket** — bucketed parallel greedy with the paper's two-level
//! phase structure.
//!
//! The sequential greedy picks stars in increasing ratio order; its
//! selection *times* span the multiplicative range `[lo, hi]` of possible
//! star ratios. GreedyBucket compresses that continuum into
//! `s_out` geometric *ratio buckets* (outer phases) of width
//! `Γ = (2·hi/lo)^{1/(s_out−1)}` each, and within a bucket runs `s_in`
//! randomized *inner iterations*: every facility whose current best star
//! ratio is under the bucket threshold proposes its star with probability
//! ½ (symmetry breaking à la Luby, so simultaneously-proposing facilities
//! don't silently double-serve), clients accept the lowest-id proposal and
//! announce their departure to all other facilities. This is the
//! `√k (outer) × √k (inner)` nesting behind the paper's
//! `O(√k·(mρ)^{1/√k}·log(m+n))` bound: coarser buckets (small `s_out`)
//! cost the `Γ` factor, too few inner iterations leave stars unpicked
//! inside a bucket (experiment E7 ablates both knobs).
//!
//! A deterministic two-round fallback after the last bucket force-opens
//! the cheapest `(c_ij + f_i)` bundle of any still-unserved client, so the
//! output is always feasible. Thresholds are per-facility geometric grids
//! computed from local information only, preserving the paper's assumption
//! that nodes know nothing global.
//!
//! Rounds: `2·s_out·s_in + 5`, independent of the input size.

use distfl_congest::{CongestConfig, Network, NodeId, NodeLogic, Payload, StepCtx};
use distfl_instance::{ClientId, FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::model::{client_node, facility_node, node_role, topology_of, Role};
use crate::runner::{FlAlgorithm, Outcome};
use crate::theory::harmonic;

/// Tuning parameters for [`GreedyBucket`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketParams {
    /// Outer phases `s_out ≥ 1`: number of geometric ratio buckets.
    pub outer: u32,
    /// Inner iterations `s_in ≥ 1` per bucket.
    pub inner: u32,
    /// Worker threads for the simulator.
    pub threads: Option<usize>,
    /// Optional deterministic message-drop plan (the output stays feasible
    /// because the fallback is a local decision).
    pub fault: Option<distfl_congest::FaultPlan>,
}

impl BucketParams {
    /// Parameters with the given nesting and serial execution.
    pub fn new(outer: u32, inner: u32) -> Self {
        BucketParams { outer, inner, threads: None, fault: None }
    }
}

impl Default for BucketParams {
    /// `6 × 4` — a mid-range point of the trade-off.
    fn default() -> Self {
        BucketParams::new(6, 4)
    }
}

/// Total CONGEST rounds GreedyBucket uses for the given parameters.
pub fn bucket_rounds(params: BucketParams) -> u32 {
    2 * params.outer * params.inner + 5
}

/// Messages of the GreedyBucket protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BucketMsg {
    /// Facility → clients, round 0: opening cost (for the fallback).
    Announce(f64),
    /// Facility → star clients: proposal to serve, carrying the star
    /// ratio (the dual certificate).
    Serve(f64),
    /// Client → chosen facility: acceptance.
    Accept,
    /// Client → other facilities: "I am served elsewhere".
    Served,
    /// Client → facility, fallback: "open for me".
    Force,
}

impl Payload for BucketMsg {
    fn size_bits(&self) -> u64 {
        match self {
            BucketMsg::Announce(_) | BucketMsg::Serve(_) => 72,
            _ => 8,
        }
    }

    /// Canonical wire encoding: one tag byte, plus the big-endian scalar
    /// for the variants that carry one — exactly the
    /// [`BucketMsg::size_bits`] budget. Used by the wire-format test to
    /// keep the declared sizes honest.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(9);
        match self {
            BucketMsg::Announce(v) => {
                b.put_u8(0);
                b.put_f64(*v);
            }
            BucketMsg::Serve(v) => {
                b.put_u8(1);
                b.put_f64(*v);
            }
            BucketMsg::Accept => b.put_u8(2),
            BucketMsg::Served => b.put_u8(3),
            BucketMsg::Force => b.put_u8(4),
        }
        b.freeze()
    }
}

/// One GreedyBucket node.
#[derive(Debug, Clone)]
pub enum BucketNode {
    /// Facility role.
    Facility(FacilityState),
    /// Client role.
    Client(ClientState),
}

impl NodeLogic for BucketNode {
    type Msg = BucketMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, BucketMsg>) {
        match self {
            BucketNode::Facility(f) => f.step(ctx),
            BucketNode::Client(c) => c.step(ctx),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            BucketNode::Facility(f) => f.done,
            BucketNode::Client(c) => c.done,
        }
    }
}

/// Facility state machine.
#[derive(Debug, Clone)]
pub struct FacilityState {
    opening: f64,
    links: Vec<(NodeId, f64)>,
    outer: u32,
    inner: u32,
    /// Endpoints of the shared threshold grid (common knowledge of the
    /// instance's coefficient range, the paper's `rho` assumption).
    grid_lo: f64,
    grid_hi: f64,
    /// Whether the opening cost has been spent (an Accept or Force
    /// arrived).
    open: bool,
    served: Vec<bool>, // aligned with links
    last_round: u32,
    done: bool,
}

impl FacilityState {
    /// Best star over unserved linked clients with the current residual
    /// opening cost: `(ratio, link indexes)`.
    fn best_star(&self) -> Option<(f64, Vec<usize>)> {
        let residual = if self.open { 0.0 } else { self.opening };
        let mut costs: Vec<(f64, usize)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(idx, _)| !self.served[*idx])
            .map(|(idx, &(_, c))| (c, idx))
            .collect();
        if costs.is_empty() {
            return None;
        }
        costs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut best = f64::INFINITY;
        let mut best_k = 0;
        let mut prefix = 0.0;
        for (k, (c, _)) in costs.iter().enumerate() {
            prefix += c;
            let ratio = (residual + prefix) / (k + 1) as f64;
            if ratio < best {
                best = ratio;
                best_k = k + 1;
            }
        }
        Some((best, costs[..best_k].iter().map(|&(_, idx)| idx).collect()))
    }

    /// Threshold of outer phase `t`: a geometric grid over the *shared*
    /// ratio range, so phase `t` admits only facilities whose current best
    /// star is globally competitive — the distributed analogue of the
    /// greedy's selection order.
    fn threshold(&self, t: u32) -> f64 {
        if self.outer <= 1 || self.grid_lo <= 0.0 {
            return self.grid_hi;
        }
        let gamma = (self.grid_hi / self.grid_lo).max(1.0).powf(1.0 / f64::from(self.outer - 1));
        (self.grid_lo * gamma.powi(t as i32)).min(self.grid_hi)
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, BucketMsg>) {
        let r = ctx.round();
        if r == 0 {
            ctx.broadcast(BucketMsg::Announce(self.opening));
        } else if r >= 2 && r % 2 == 0 {
            // Process responses from the previous respond round.
            for &(src, msg) in ctx.inbox() {
                let idx = self
                    .links
                    .binary_search_by_key(&src, |(id, _)| *id)
                    .expect("responses only arrive over existing links");
                match msg {
                    BucketMsg::Accept | BucketMsg::Force => {
                        self.open = true;
                        self.served[idx] = true;
                    }
                    BucketMsg::Served => self.served[idx] = true,
                    _ => {}
                }
            }
            let q = (r - 2) / 2;
            if q < self.outer * self.inner {
                let t = q / self.inner;
                if let Some((ratio, star)) = self.best_star() {
                    if ratio <= self.threshold(t) && ctx.rng().bernoulli(0.5) {
                        for idx in star {
                            let dst = self.links[idx].0;
                            ctx.send(dst, BucketMsg::Serve(ratio))
                                .expect("star members are neighbors");
                        }
                    }
                }
            }
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

/// The best possible star ratio of facility `i` with all clients available
/// (used to anchor the shared threshold grid).
fn initial_best_ratio(instance: &Instance, i: FacilityId) -> f64 {
    let mut costs: Vec<f64> = instance.facility_links(i).costs.to_vec();
    costs.sort_by(f64::total_cmp);
    let opening = instance.opening_cost(i).value();
    let mut best = f64::INFINITY;
    let mut prefix = 0.0;
    for (k, c) in costs.iter().enumerate() {
        prefix += c;
        best = best.min((opening + prefix) / (k + 1) as f64);
    }
    best
}

/// Client state machine.
#[derive(Debug, Clone)]
pub struct ClientState {
    links: Vec<(NodeId, f64)>,
    opening: Vec<f64>, // announced opening costs, aligned with links
    iterations: u32,
    assigned: Option<usize>,
    /// The ratio of the star that served this client (the dual
    /// certificate), or the forced bundle cost.
    service_ratio: f64,
    last_round: u32,
    done: bool,
}

impl ClientState {
    fn step(&mut self, ctx: &mut StepCtx<'_, BucketMsg>) {
        let r = ctx.round();
        if r == 0 {
            return;
        }
        if r == 1 {
            // Record announcements by sender; drops (fault injection) leave
            // the slot at infinity so the fallback avoids that facility
            // unless nothing else is known.
            self.opening = vec![f64::INFINITY; self.links.len()];
            for &(src, msg) in ctx.inbox() {
                if let BucketMsg::Announce(f) = msg {
                    if let Ok(idx) = self.links.binary_search_by_key(&src, |(id, _)| *id) {
                        self.opening[idx] = f;
                    }
                }
            }
            return;
        }
        let fallback_round = 2 * self.iterations + 3;
        if r % 2 == 1 && r < fallback_round {
            // Respond round: accept the lowest-id proposal, if any.
            // Accept the best (lowest-ratio) proposal, ties to the lowest
            // facility index.
            let mut chosen: Option<(usize, f64)> = None;
            for &(src, msg) in ctx.inbox() {
                if let BucketMsg::Serve(ratio) = msg {
                    let idx = self
                        .links
                        .binary_search_by_key(&src, |(id, _)| *id)
                        .expect("proposals only arrive over existing links");
                    let better = match chosen {
                        None => true,
                        Some((bi, br)) => ratio < br || (ratio == br && idx < bi),
                    };
                    if better {
                        chosen = Some((idx, ratio));
                    }
                }
            }
            if let Some((idx, ratio)) = chosen {
                self.assigned = Some(idx);
                self.service_ratio = ratio;
                for (other, &(dst, _)) in self.links.iter().enumerate() {
                    let msg = if other == idx { BucketMsg::Accept } else { BucketMsg::Served };
                    ctx.send(dst, msg).expect("links are neighbors");
                }
                self.done = true;
            }
        } else if r == fallback_round {
            // Fallback: force open the cheapest bundle.
            let (idx, bundle) = self
                .links
                .iter()
                .enumerate()
                .map(|(idx, &(_, c))| {
                    let f = self.opening[idx];
                    (idx, if f.is_finite() { c + f } else { f64::MAX })
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("instance invariant: every client has a link");
            self.assigned = Some(idx);
            self.service_ratio = bundle;
            ctx.send(self.links[idx].0, BucketMsg::Force).expect("fallback target is a neighbor");
            self.done = true;
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

/// The bucketed parallel greedy algorithm (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GreedyBucket {
    params: BucketParams,
}

impl GreedyBucket {
    /// Creates the algorithm with explicit parameters.
    pub fn new(params: BucketParams) -> Self {
        GreedyBucket { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> BucketParams {
        self.params
    }
}

impl FlAlgorithm for GreedyBucket {
    fn name(&self) -> String {
        format!("bucket(out={},in={})", self.params.outer, self.params.inner)
    }

    fn run(&self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError> {
        if self.params.outer == 0 || self.params.inner == 0 {
            return Err(CoreError::InvalidParams {
                reason: "bucket needs at least one outer phase and one inner iteration".into(),
            });
        }
        let m = instance.num_facilities();
        let last_round = bucket_rounds(self.params) - 1;
        // Shared threshold grid over the instance's ratio range. In the
        // model this is common knowledge (the paper assumes the coefficient
        // range — equivalently rho — is known up to a polynomial bound).
        let grid_lo = instance
            .facilities()
            .map(|i| initial_best_ratio(instance, i))
            .fold(f64::INFINITY, f64::min)
            .max(f64::MIN_POSITIVE);
        let grid_hi = 2.0
            * instance
                .facilities()
                .map(|i| {
                    let max_c =
                        instance.facility_links(i).costs.iter().copied().fold(0.0f64, f64::max);
                    instance.opening_cost(i).value() + max_c
                })
                .fold(f64::MIN_POSITIVE, f64::max);
        let mut nodes = Vec::with_capacity(m + instance.num_clients());
        for i in instance.facilities() {
            let links: Vec<(NodeId, f64)> = instance
                .facility_links(i)
                .iter()
                .map(|(j, c)| (client_node(m, ClientId::new(j)), c))
                .collect();
            let degree = links.len();
            nodes.push(BucketNode::Facility(FacilityState {
                opening: instance.opening_cost(i).value(),
                links,
                outer: self.params.outer,
                inner: self.params.inner,
                grid_lo,
                grid_hi,
                open: false,
                served: vec![false; degree],
                last_round,
                done: false,
            }));
        }
        for j in instance.clients() {
            let links: Vec<(NodeId, f64)> = instance
                .client_links(j)
                .iter()
                .map(|(i, c)| (facility_node(FacilityId::new(i)), c))
                .collect();
            nodes.push(BucketNode::Client(ClientState {
                opening: Vec::with_capacity(links.len()),
                links,
                iterations: self.params.outer * self.params.inner,
                assigned: None,
                service_ratio: 0.0,
                last_round,
                done: false,
            }));
        }
        let topo = topology_of(instance)?;
        let config = CongestConfig {
            threads: self.params.threads,
            fault: self.params.fault,
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, seed, config)?;
        net.run(bucket_rounds(self.params))?;

        let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
        let mut ratios = vec![0.0f64; instance.num_clients()];
        for (index, node) in net.nodes().iter().enumerate() {
            if let (Role::Client(j), BucketNode::Client(c)) =
                (node_role(m, NodeId::new(index as u32)), node)
            {
                let idx = c.assigned.expect("fallback guarantees assignment");
                assignment[j.index()] = FacilityId::new(c.links[idx].0.raw());
                ratios[j.index()] = c.service_ratio;
            }
        }
        let solution = Solution::from_assignment(instance, assignment)?.reassign_greedily(instance);
        let h = harmonic(instance.num_clients());
        let alpha: Vec<f64> = ratios.iter().map(|r| r / h).collect();
        Ok(Outcome {
            solution,
            transcript: Some(net.into_transcript()),
            dual: Some(DualSolution::new(alpha)),
            modeled_rounds: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{
        AdversarialGreedy, Euclidean, GridNetwork, InstanceGenerator, UniformRandom,
    };
    use distfl_lp::exact;

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [
            BucketMsg::Announce(1.5),
            BucketMsg::Serve(1.5),
            BucketMsg::Accept,
            BucketMsg::Served,
            BucketMsg::Force,
        ];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        // Same payload value, different tags: encodings must differ.
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 5);
        // The scalar round-trips through the big-endian bytes.
        let enc = BucketMsg::Serve(42.25).encode();
        assert_eq!(f64::from_be_bytes(enc[1..9].try_into().unwrap()), 42.25);
    }

    fn run(instance: &Instance, outer: u32, inner: u32, seed: u64) -> Outcome {
        GreedyBucket::new(BucketParams::new(outer, inner)).run(instance, seed).unwrap()
    }

    #[test]
    fn feasible_across_families_and_parameters() {
        let instances: Vec<Instance> = vec![
            UniformRandom::new(6, 20).unwrap().generate(1).unwrap(),
            Euclidean::new(5, 15).unwrap().generate(2).unwrap(),
            GridNetwork::new(8, 8, 5, 20).unwrap().generate(3).unwrap(),
            AdversarialGreedy::new(10).unwrap().generate(0).unwrap(),
        ];
        for inst in &instances {
            for (outer, inner) in [(1, 1), (4, 2), (6, 6)] {
                let out = run(inst, outer, inner, 9);
                out.solution.check_feasible(inst).unwrap();
            }
        }
    }

    #[test]
    fn round_count_matches_formula_and_is_size_independent() {
        let small = UniformRandom::new(4, 8).unwrap().generate(0).unwrap();
        let large = UniformRandom::new(10, 120).unwrap().generate(0).unwrap();
        let params = BucketParams::new(3, 2);
        let a = run(&small, 3, 2, 0).transcript.unwrap().num_rounds();
        let b = run(&large, 3, 2, 0).transcript.unwrap().num_rounds();
        assert_eq!(a, bucket_rounds(params));
        assert_eq!(a, b);
    }

    #[test]
    fn congest_discipline_holds() {
        let inst = UniformRandom::new(8, 40).unwrap().generate(2).unwrap();
        let out = run(&inst, 5, 3, 4);
        assert!(out.transcript.unwrap().congest_compliant(72));
    }

    #[test]
    fn quality_improves_with_more_structure() {
        // With a deep grid and enough inner iterations, quality should be
        // within a small factor of OPT; the 1x1 run may be much worse.
        let inst = UniformRandom::new(8, 30).unwrap().generate(7).unwrap();
        let opt = exact::solve(&inst).unwrap().cost.value();
        let fine: f64 =
            (0..5).map(|s| run(&inst, 8, 6, s).solution.cost(&inst).value() / opt).sum::<f64>()
                / 5.0;
        assert!(fine < 5.0, "deep-grid average ratio {fine} too large");
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let inst = UniformRandom::new(6, 25).unwrap().generate(4).unwrap();
        let a = run(&inst, 4, 3, 11);
        let b = run(&inst, 4, 3, 11);
        assert_eq!(a.solution, b.solution);
        // Randomized proposals: some other seed should differ somewhere.
        let differs = (0..10).any(|s| run(&inst, 4, 3, s).solution != a.solution);
        assert!(differs, "proposal coin flips appear inert");
    }

    #[test]
    fn rejects_zero_parameters() {
        let inst = UniformRandom::new(2, 2).unwrap().generate(0).unwrap();
        assert!(GreedyBucket::new(BucketParams::new(0, 1)).run(&inst, 0).is_err());
        assert!(GreedyBucket::new(BucketParams::new(1, 0)).run(&inst, 0).is_err());
    }

    #[test]
    fn dual_certificate_stays_below_opt() {
        for seed in 0..4 {
            let inst = UniformRandom::new(6, 18).unwrap().generate(seed).unwrap();
            let out = run(&inst, 5, 4, seed);
            let lb = out.dual.unwrap().lower_bound(&inst, distfl_lp::TOLERANCE);
            let opt = exact::solve(&inst).unwrap().cost.value();
            assert!(lb <= opt + 1e-6, "seed {seed}: {lb} > {opt}");
        }
    }
}
