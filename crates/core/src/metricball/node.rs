//! Node state machines for MetricBall.

use distfl_congest::{NodeId, NodeLogic, Payload, StepCtx};
use distfl_instance::{FacilityId, Instance};

use crate::model::facility_node;
use crate::mp;

/// Upper bound on any MetricBall message, in bits: one tag byte plus one
/// 64-bit scalar. The CONGEST discipline check in the tests uses this.
pub const MAX_MESSAGE_BITS: u64 = 72;

/// Messages of the MetricBall protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricBallMsg {
    /// Facility → clients, bid rounds: "I want to open", carrying the
    /// phase's random priority.
    Bid(f64),
    /// Client → facility, deny rounds: "do not open this phase".
    Deny,
    /// Facility → clients, resolve rounds: "I am open".
    Open,
    /// Client → facility, coverage round: "open for me" (sent to the
    /// cheapest link by clients no opened ball reached).
    Demand,
}

impl Payload for MetricBallMsg {
    fn size_bits(&self) -> u64 {
        match self {
            MetricBallMsg::Bid(_) => MAX_MESSAGE_BITS,
            _ => 8,
        }
    }

    /// Canonical wire encoding: one tag byte plus the big-endian scalar —
    /// exactly the [`MetricBallMsg::size_bits`] budget.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(9);
        match self {
            MetricBallMsg::Bid(v) => {
                b.put_u8(0);
                b.put_f64(*v);
            }
            MetricBallMsg::Deny => b.put_u8(1),
            MetricBallMsg::Open => b.put_u8(2),
            MetricBallMsg::Demand => b.put_u8(3),
        }
        b.freeze()
    }
}

/// One MetricBall node: either a facility or a client state machine.
#[derive(Debug, Clone)]
pub enum MetricBallNode {
    /// Facility role.
    Facility(FacilityState),
    /// Client role.
    Client(ClientState),
}

impl NodeLogic for MetricBallNode {
    type Msg = MetricBallMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, MetricBallMsg>) {
        match self {
            MetricBallNode::Facility(f) => f.step(ctx),
            MetricBallNode::Client(c) => c.step(ctx),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            MetricBallNode::Facility(f) => f.done,
            MetricBallNode::Client(c) => c.done,
        }
    }
}

/// The globally-known radius schedule `R_0 < … < R_{s−1}`: a geometric
/// ladder from the instance's positive cost floor up to twice its largest
/// coefficient (every Mettu–Plaxton radius lies below the top rung).
/// Baked into every node at build time — like PayDual's size bound, these
/// are aggregate quantities a real deployment would learn in `O(diameter)`
/// pre-rounds via the [`distfl_congest::bfs`] convergecast.
pub(crate) fn radius_schedule(r_lo: f64, r_cap: f64, phases: u32) -> Vec<f64> {
    if phases <= 1 {
        return vec![r_cap];
    }
    let ratio = r_cap / r_lo;
    let mut rungs: Vec<f64> =
        (0..phases).map(|p| r_lo * ratio.powf(f64::from(p) / f64::from(phases - 1))).collect();
    // powf rounding can land the top rung a hair under r_cap; pin it so
    // every facility's radius is covered by the final phase.
    rungs[phases as usize - 1] = r_cap;
    rungs
}

/// The first phase whose threshold covers `radius` (`schedule.len()` when
/// none does — the facility never bids and coverage falls to the demand
/// round).
pub(crate) fn first_phase(radius: f64, schedule: &[f64]) -> u32 {
    schedule.iter().position(|&t| radius <= t).map_or(schedule.len() as u32, |p| p as u32)
}

/// Whether bid `(prio, id)` beats the current best: higher priority wins,
/// ties go to the lower node id. Shared verbatim by the client state
/// machine and the sequential reference so their elections agree bitwise.
pub(crate) fn better_bid(prio: f64, id: NodeId, best: Option<(f64, NodeId)>) -> bool {
    best.is_none_or(|(bp, bid)| prio > bp || (prio == bp && id < bid))
}

/// Builds the node vector for an instance: facilities `0..m`, then clients.
pub fn build_nodes(instance: &Instance, phases: u32) -> Vec<MetricBallNode> {
    let m = instance.num_facilities();
    let r_lo = distfl_instance::spread::positive_floor(instance).value();
    let r_cap = 2.0 * distfl_instance::spread::max_coefficient(instance).value();
    let schedule = radius_schedule(r_lo, r_cap, phases);
    let last_round = crate::theory::metricball_rounds(phases) - 1;
    let demand_round = 3 * phases;
    let mut nodes = Vec::with_capacity(m + instance.num_clients());
    for i in instance.facilities() {
        let phase = first_phase(mp::radius(instance, i), &schedule);
        nodes.push(MetricBallNode::Facility(FacilityState::new(phase, demand_round, last_round)));
    }
    for j in instance.clients() {
        let links = instance
            .client_links(j)
            .iter()
            .map(|(i, c)| (facility_node(FacilityId::new(i)), c))
            .collect();
        nodes.push(MetricBallNode::Client(ClientState::new(
            links,
            schedule.clone(),
            demand_round,
            last_round,
        )));
    }
    nodes
}

/// Facility state machine.
#[derive(Debug, Clone)]
pub struct FacilityState {
    /// First phase whose radius threshold covers this facility's
    /// Mettu–Plaxton radius.
    first_phase: u32,
    open: bool,
    /// Whether a bid is outstanding (sent last bid round, resolved next
    /// resolve round).
    bidding: bool,
    demand_round: u32,
    last_round: u32,
    done: bool,
}

impl FacilityState {
    fn new(first_phase: u32, demand_round: u32, last_round: u32) -> Self {
        FacilityState {
            first_phase,
            open: false,
            bidding: false,
            demand_round,
            last_round,
            done: false,
        }
    }

    /// Whether the facility declared itself open during the run.
    pub fn is_open(&self) -> bool {
        self.open
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, MetricBallMsg>) {
        let r = ctx.round();
        if r < self.demand_round {
            match r % 3 {
                0 if !self.open && self.first_phase <= r / 3 => {
                    // Bid round of phase p = r / 3: an unopened facility
                    // whose radius the phase covers draws its priority —
                    // the round's first (and only) RNG draw, which is what
                    // lets the sequential reference re-derive it — and
                    // bids everywhere.
                    let prio = ctx.rng().next_f64();
                    ctx.broadcast(MetricBallMsg::Bid(prio));
                    self.bidding = true;
                }
                2 if self.bidding => {
                    // Resolve round: open iff no linked client denied.
                    let denied = ctx.inbox().iter().any(|(_, m)| matches!(m, MetricBallMsg::Deny));
                    if !denied {
                        self.open = true;
                        ctx.broadcast(MetricBallMsg::Open);
                    }
                    self.bidding = false;
                }
                _ => {}
            }
        } else if r == self.demand_round + 1
            && !self.open
            && ctx.inbox().iter().any(|(_, m)| matches!(m, MetricBallMsg::Demand))
        {
            // Coverage round: a demand forces the facility open.
            self.open = true;
            ctx.broadcast(MetricBallMsg::Open);
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

/// Client state machine.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Linked facilities (node id, connection cost), sorted by node id.
    links: Vec<(NodeId, f64)>,
    /// The phase radius schedule (globally known, see [`radius_schedule`]).
    schedule: Vec<f64>,
    known_open: Vec<bool>,
    /// Cheapest connection cost among facilities known open (`+∞` until
    /// the first `Open` arrives); the near-open blocking rule reads it.
    best_open_cost: f64,
    connected: Option<usize>,
    demand_round: u32,
    last_round: u32,
    done: bool,
}

impl ClientState {
    fn new(
        links: Vec<(NodeId, f64)>,
        schedule: Vec<f64>,
        demand_round: u32,
        last_round: u32,
    ) -> Self {
        let degree = links.len();
        ClientState {
            links,
            schedule,
            known_open: vec![false; degree],
            best_open_cost: f64::INFINITY,
            connected: None,
            demand_round,
            last_round,
            done: false,
        }
    }

    /// The facility this client connected to (`None` before termination).
    pub fn connected_facility(&self) -> Option<FacilityId> {
        self.connected.map(|idx| FacilityId::new(self.links[idx].0.raw()))
    }

    /// Index of the cheapest link (ties to the lowest node id — links are
    /// id-sorted, so the first strict minimum).
    fn cheapest_link(&self) -> usize {
        let mut best = 0;
        for (idx, &(_, c)) in self.links.iter().enumerate().skip(1) {
            if c < self.links[best].1 {
                best = idx;
            }
        }
        best
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, MetricBallMsg>) {
        let r = ctx.round();
        // Open announcements land in rounds ≡ 0 (mod 3); digesting them
        // unconditionally first keeps every later rule phase-agnostic.
        let inbox = ctx.inbox();
        for &(src, msg) in inbox {
            if matches!(msg, MetricBallMsg::Open) {
                let idx = self
                    .links
                    .binary_search_by_key(&src, |(id, _)| *id)
                    .expect("announcements only arrive over existing links");
                if !self.known_open[idx] {
                    self.known_open[idx] = true;
                    self.best_open_cost = self.best_open_cost.min(self.links[idx].1);
                }
            }
        }
        if r < self.demand_round && r % 3 == 1 {
            // Deny round of phase p: block bidders already served by a
            // near-open facility, and elect one winner per ball.
            let radius = self.schedule[(r / 3) as usize];
            let block = 2.0 * radius;
            let mut best: Option<(f64, NodeId)> = None;
            for &(src, msg) in inbox {
                let MetricBallMsg::Bid(prio) = msg else { continue };
                let idx = self
                    .links
                    .binary_search_by_key(&src, |(id, _)| *id)
                    .expect("bids only arrive over existing links");
                let c = self.links[idx].1;
                if self.best_open_cost + c <= block || c > radius {
                    continue;
                }
                if better_bid(prio, src, best) {
                    best = Some((prio, src));
                }
            }
            for &(src, msg) in inbox {
                let MetricBallMsg::Bid(_) = msg else { continue };
                let idx = self
                    .links
                    .binary_search_by_key(&src, |(id, _)| *id)
                    .expect("bids only arrive over existing links");
                let c = self.links[idx].1;
                let blocked = self.best_open_cost + c <= block;
                let in_ball = c <= radius;
                let elected = best.is_some_and(|(_, id)| id == src);
                if blocked || (in_ball && !elected) {
                    ctx.send(src, MetricBallMsg::Deny).expect("bidders are neighbors");
                }
            }
        } else if r == self.demand_round && !self.best_open_cost.is_finite() {
            // No opened ball reached this client: demand its cheapest link.
            let dst = self.links[self.cheapest_link()].0;
            ctx.send(dst, MetricBallMsg::Demand).expect("links are neighbors");
        } else if r == self.last_round {
            // Connect to the cheapest known-open link (ties to the lowest
            // id — first strict minimum over the id-sorted table).
            let mut best: Option<usize> = None;
            for (idx, &(_, c)) in self.links.iter().enumerate() {
                if self.known_open[idx] && best.is_none_or(|b| c < self.links[b].1) {
                    best = Some(idx);
                }
            }
            self.connected = best;
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_respect_congest() {
        assert!(MetricBallMsg::Bid(0.5).size_bits() <= MAX_MESSAGE_BITS);
        assert_eq!(MetricBallMsg::Deny.size_bits(), 8);
        assert_eq!(MetricBallMsg::Open.size_bits(), 8);
        assert_eq!(MetricBallMsg::Demand.size_bits(), 8);
    }

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [
            MetricBallMsg::Bid(0.25),
            MetricBallMsg::Deny,
            MetricBallMsg::Open,
            MetricBallMsg::Demand,
        ];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        let enc = MetricBallMsg::Bid(0.75).encode();
        assert_eq!(f64::from_be_bytes(enc[1..9].try_into().unwrap()), 0.75);
    }

    #[test]
    fn radius_schedule_spans_floor_to_cap() {
        let s = radius_schedule(1.0, 64.0, 4);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], 1.0);
        assert_eq!(s[3], 64.0);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "schedule not increasing: {s:?}");
        assert_eq!(radius_schedule(1.0, 64.0, 1), vec![64.0]);
    }

    #[test]
    fn first_phase_covers_edge_radii() {
        let s = radius_schedule(1.0, 64.0, 4);
        assert_eq!(first_phase(0.0, &s), 0);
        assert_eq!(first_phase(1.0, &s), 0);
        assert_eq!(first_phase(1.5, &s), 1);
        assert_eq!(first_phase(64.0, &s), 3);
        assert_eq!(first_phase(65.0, &s), 4, "uncovered radius defers to the demand round");
    }

    #[test]
    fn better_bid_orders_by_priority_then_id() {
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        assert!(better_bid(0.5, a, None));
        assert!(better_bid(0.9, b, Some((0.5, a))));
        assert!(!better_bid(0.1, b, Some((0.5, a))));
        assert!(better_bid(0.5, a, Some((0.5, b))), "ties go to the lower id");
        assert!(!better_bid(0.5, b, Some((0.5, a))));
    }

    #[test]
    fn build_nodes_shapes() {
        use distfl_instance::generators::{InstanceGenerator, UniformRandom};
        let inst = UniformRandom::new(3, 5).unwrap().generate(0).unwrap();
        let nodes = build_nodes(&inst, 4);
        assert_eq!(nodes.len(), 8);
        assert!(matches!(nodes[0], MetricBallNode::Facility(_)));
        assert!(matches!(nodes[2], MetricBallNode::Facility(_)));
        assert!(matches!(nodes[3], MetricBallNode::Client(_)));
        assert!(matches!(nodes[7], MetricBallNode::Client(_)));
    }
}
