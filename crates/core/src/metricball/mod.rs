//! **MetricBall** — a distributed ball-growing metric UFL solver in the
//! style of Briest et al. (arXiv 1105.1248) and the Mettu–Plaxton radius
//! technique, built on the same [`distfl_congest::NodeLogic`] machinery as
//! [`crate::paydual`] so it runs unmodified on the lock-step engine *and*
//! the discrete-event simulator.
//!
//! # Protocol
//!
//! One CONGEST node per facility and per client. Parameterized by the
//! number of *phases* `s ≥ 1`; total rounds are `3s + 3` regardless of the
//! input. Every facility knows its Mettu–Plaxton radius `r_i` (the `r`
//! solving `Σ_j max(0, r − c_ij) = f_i`, computed locally from its links)
//! and the globally-known geometric radius schedule `R_0 < … < R_{s−1}`
//! spanning the instance's cost floor to twice its largest coefficient.
//! Phase `p` runs three rounds:
//!
//! 1. **Bid** — every unopened facility with `r_i ≤ R_p` draws a uniform
//!    priority and broadcasts it.
//! 2. **Deny** — each client denies bidders that a *near-open* facility
//!    already serves (`best_open_cost_j + c_ij ≤ 2·R_p`: opening inside an
//!    opened ball's blocking zone would double-pay), and among the
//!    remaining bidders inside its phase ball (`c_ij ≤ R_p`) elects the
//!    highest-priority one, denying the rest — the sampling step that
//!    keeps simultaneously-opened facilities well separated.
//! 3. **Resolve** — a bidder receiving zero denies opens and announces it.
//!
//! A three-round coverage tail follows the phases: clients reached by no
//! opened ball *demand* their cheapest link, demanded facilities open, and
//! every client connects to its cheapest known-open facility. Denied
//! facilities keep no state and simply retry in later (larger-radius)
//! phases.
//!
//! # Guarantees
//!
//! *Termination and rounds.* The schedule is fixed: `3s + 3` rounds,
//! independent of the input, and the coverage tail guarantees every client
//! connects — the harvest never fails on a fault-free run.
//!
//! *Cost.* On **metric** instances the ball discipline gives the
//! constant-factor regime of the cited papers: an opened facility's ball
//! is paid for by the clients inside it (its radius covers them by the
//! Mettu–Plaxton charging argument), the near-open blocking rule keeps
//! concurrently open facilities `2·R_p` apart so balls are disjoint, and
//! the per-ball random election breaks the remaining ties. More phases →
//! finer radius ladder → tighter charging. On non-metric instances the
//! output is still feasible, but the charging argument (and any factor
//! guarantee) evaporates — which is exactly what the
//! [`crate::SolverKind::Auto`] classifier routes on.
//!
//! The sequential reference [`solve_reference`] replays the protocol
//! phase-for-phase — including the per-facility priority draws, via
//! [`distfl_congest::NodeRng::derive`] with the engine's own
//! `(seed, node, round)` triple — so the distributed run is proptested
//! **bitwise equal** to it (`portfolio_equivalence.rs`).
//!
//! ```
//! use distfl_core::metricball::{MetricBall, MetricBallParams};
//! use distfl_core::FlAlgorithm;
//! use distfl_instance::generators::{Euclidean, InstanceGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instance = Euclidean::new(6, 24)?.generate(3)?;
//! let outcome = MetricBall::new(MetricBallParams::with_phases(4)).run(&instance, 7)?;
//! outcome.solution.check_feasible(&instance)?;
//! assert_eq!(outcome.transcript.unwrap().num_rounds(), 3 * 4 + 3);
//! # Ok(())
//! # }
//! ```

pub mod node;

use distfl_congest::{CongestConfig, Network, NodeRng, SimConfig, Simulator};
use distfl_instance::{FacilityId, Instance, Solution};

use crate::error::CoreError;
use crate::model::{facility_node, node_role, topology_of, Role};
use crate::mp;
use crate::paydual::SimulatedRun;
use crate::runner::{FlAlgorithm, Outcome};

pub use node::{MetricBallMsg, MetricBallNode, MAX_MESSAGE_BITS};

use node::{better_bid, build_nodes, first_phase, radius_schedule};

/// Tuning parameters for [`MetricBall`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricBallParams {
    /// Number of ball-growing phases `s ≥ 1`. More phases → a finer
    /// radius ladder → tighter charging (and `3s + 3` rounds).
    pub phases: u32,
    /// Worker threads for the engine (`None` = serial; results are
    /// identical).
    pub threads: Option<usize>,
}

impl MetricBallParams {
    /// Parameters with the given phase count and serial execution.
    pub fn with_phases(phases: u32) -> Self {
        MetricBallParams { phases, threads: None }
    }
}

impl Default for MetricBallParams {
    /// Six phases — one radius rung per factor-≈2 of spread on typical
    /// instances.
    fn default() -> Self {
        MetricBallParams::with_phases(6)
    }
}

/// The distributed ball-growing algorithm (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricBall {
    params: MetricBallParams,
}

impl MetricBall {
    /// Creates the algorithm with explicit parameters.
    pub fn new(params: MetricBallParams) -> Self {
        MetricBall { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> MetricBallParams {
        self.params
    }

    /// Runs the protocol on the discrete-event simulator: same node logic,
    /// same transcript (bit-identical in a loss-free configuration,
    /// whatever the latency model) as [`FlAlgorithm::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlAlgorithm::run`]; additionally fails with
    /// [`distfl_congest::CongestError::ProtocolIncomplete`] when a crash
    /// schedule kills a client before the coverage round.
    pub fn run_simulated(
        &self,
        instance: &Instance,
        seed: u64,
        sim: SimConfig,
    ) -> Result<SimulatedRun, CoreError> {
        let _span = distfl_obs::span_arg("solver", "metricball.sim", u64::from(self.params.phases));
        check_phases(self.params.phases)?;
        let topo = topology_of(instance)?;
        let nodes = build_nodes(instance, self.params.phases);
        let mut simulator = Simulator::new(topo, nodes, seed, sim)?;
        simulator.run(crate::theory::metricball_rounds(self.params.phases))?;
        let report = simulator.report().clone();
        let verdicts = simulator.verdicts();
        let accusations = simulator.accusations();
        let solution = harvest(instance, simulator.nodes())?;
        let (_, transcript) = simulator.into_parts();
        Ok(SimulatedRun {
            outcome: Outcome {
                solution,
                transcript: Some(transcript),
                dual: None,
                modeled_rounds: None,
            },
            report,
            verdicts,
            accusations,
        })
    }
}

fn check_phases(phases: u32) -> Result<(), CoreError> {
    if phases == 0 {
        Err(CoreError::InvalidParams { reason: "metricball needs at least one phase".to_owned() })
    } else {
        Ok(())
    }
}

/// Extracts the solution from final node states — shared by the lock-step
/// and simulated runners so both produce exactly the same output.
fn harvest(instance: &Instance, nodes: &[MetricBallNode]) -> Result<Solution, CoreError> {
    let m = instance.num_facilities();
    let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
    for (index, node) in nodes.iter().enumerate() {
        match (node_role(m, distfl_congest::NodeId::new(index as u32)), node) {
            (Role::Client(j), MetricBallNode::Client(c)) => {
                let facility = c.connected_facility().ok_or(CoreError::Congest(
                    distfl_congest::CongestError::ProtocolIncomplete {
                        what: "client holds no connection after the coverage round",
                    },
                ))?;
                assignment[j.index()] = facility;
            }
            (Role::Facility(_), MetricBallNode::Facility(_)) => {}
            _ => unreachable!("node role/state mismatch"),
        }
    }
    Ok(Solution::from_assignment(instance, assignment)?)
}

impl FlAlgorithm for MetricBall {
    fn name(&self) -> String {
        format!("metricball(s={})", self.params.phases)
    }

    fn run(&self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError> {
        let _span = distfl_obs::span_arg("solver", "metricball", u64::from(self.params.phases));
        check_phases(self.params.phases)?;
        let topo = topology_of(instance)?;
        let nodes = build_nodes(instance, self.params.phases);
        let config = CongestConfig { threads: self.params.threads, ..CongestConfig::default() };
        let mut net = Network::with_config(topo, nodes, seed, config)?;
        let total_rounds = crate::theory::metricball_rounds(self.params.phases);
        net.run(total_rounds)?;
        debug_assert_eq!(net.transcript().num_rounds(), total_rounds);
        let solution = harvest(instance, net.nodes())?;
        Ok(Outcome {
            solution,
            transcript: Some(net.into_transcript()),
            dual: None,
            modeled_rounds: None,
        })
    }
}

/// The retained naive reference: replays the protocol phase-for-phase as
/// straight sequential loops — including each bidder's priority draw, via
/// the engine's own `(seed, node, round)` RNG derivation — and must agree
/// **bitwise** with the distributed run (the PR-2 treatment; proptested in
/// `portfolio_equivalence.rs`).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] when `phases == 0`.
pub fn solve_reference(instance: &Instance, phases: u32, seed: u64) -> Result<Solution, CoreError> {
    check_phases(phases)?;
    let m = instance.num_facilities();
    let n = instance.num_clients();
    let r_lo = distfl_instance::spread::positive_floor(instance).value();
    let r_cap = 2.0 * distfl_instance::spread::max_coefficient(instance).value();
    let schedule = radius_schedule(r_lo, r_cap, phases);
    let first: Vec<u32> =
        instance.facilities().map(|i| first_phase(mp::radius(instance, i), &schedule)).collect();

    let mut open = vec![false; m];
    let mut best_open_cost = vec![f64::INFINITY; n];
    for p in 0..phases {
        let radius = schedule[p as usize];
        let block = 2.0 * radius;
        // The phase's bidders and their priorities — the first (and only)
        // draw of each bidder's bid-round RNG stream, exactly what the
        // engine hands the facility node in round `3p`.
        let prio: Vec<Option<f64>> = (0..m)
            .map(|i| {
                (!open[i] && first[i] <= p).then(|| {
                    let node = facility_node(FacilityId::new(i as u32));
                    NodeRng::derive(seed, node.raw(), 3 * p).next_f64()
                })
            })
            .collect();
        // Each client's elected ball winner (highest priority, ties to
        // the lower node id), skipping blocked and out-of-ball bidders.
        let mut elected: Vec<Option<(f64, distfl_congest::NodeId)>> = vec![None; n];
        for (i, pr) in prio.iter().enumerate() {
            let Some(pr) = *pr else { continue };
            let node = facility_node(FacilityId::new(i as u32));
            for (j, c) in instance.facility_links(FacilityId::new(i as u32)).iter() {
                let j = j as usize;
                if best_open_cost[j] + c <= block || c > radius {
                    continue;
                }
                if better_bid(pr, node, elected[j]) {
                    elected[j] = Some((pr, node));
                }
            }
        }
        // A bidder opens iff no linked client denies it.
        let mut newly = Vec::new();
        for (i, pr) in prio.iter().enumerate() {
            if pr.is_none() {
                continue;
            }
            let node = facility_node(FacilityId::new(i as u32));
            let denied = instance.facility_links(FacilityId::new(i as u32)).iter().any(|(j, c)| {
                let j = j as usize;
                let blocked = best_open_cost[j] + c <= block;
                let in_ball = c <= radius;
                let is_elected = elected[j].is_some_and(|(_, id)| id == node);
                blocked || (in_ball && !is_elected)
            });
            if !denied {
                newly.push(i);
            }
        }
        // Open announcements only land *after* every deny decision of the
        // phase (message timing), so the open set updates last.
        for i in newly {
            open[i] = true;
            for (j, c) in instance.facility_links(FacilityId::new(i as u32)).iter() {
                let j = j as usize;
                if c < best_open_cost[j] {
                    best_open_cost[j] = c;
                }
            }
        }
    }
    // Coverage tail: every unreached client demands its cheapest link (all
    // demands are simultaneous — decided against the pre-demand open set).
    let mut demanded = Vec::new();
    for j in instance.clients() {
        if best_open_cost[j.index()].is_finite() {
            continue;
        }
        let links = instance.client_links(j);
        let mut best = 0;
        for (idx, &c) in links.costs.iter().enumerate().skip(1) {
            if c < links.costs[best] {
                best = idx;
            }
        }
        demanded.push(links.ids[best] as usize);
    }
    for i in demanded {
        open[i] = true;
    }
    // Final connect: cheapest open link, ties to the lowest id.
    let mut assignment = Vec::with_capacity(n);
    for j in instance.clients() {
        let links = instance.client_links(j);
        let mut best: Option<usize> = None;
        for (idx, (&id, &c)) in links.ids.iter().zip(links.costs.iter()).enumerate() {
            if open[id as usize] && best.is_none_or(|b| c < links.costs[b]) {
                best = Some(idx);
            }
        }
        let best = best.expect("the coverage tail opens a link for every client");
        assignment.push(FacilityId::new(links.ids[best]));
    }
    Ok(Solution::from_assignment(instance, assignment)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{
        Clustered, Euclidean, GridNetwork, InstanceGenerator, Metricized, UniformRandom,
    };
    use distfl_lp::exact;

    fn run(instance: &Instance, phases: u32) -> Outcome {
        MetricBall::new(MetricBallParams::with_phases(phases)).run(instance, 7).unwrap()
    }

    #[test]
    fn terminates_and_is_feasible_across_families() {
        let instances: Vec<Instance> = vec![
            Euclidean::new(5, 15).unwrap().generate(2).unwrap(),
            Clustered::new(3, 6, 18).unwrap().generate(3).unwrap(),
            GridNetwork::new(8, 8, 5, 20).unwrap().generate(4).unwrap(),
            // Feasibility must hold on non-metric inputs too (only the
            // factor guarantee needs metricity).
            UniformRandom::new(6, 20).unwrap().generate(1).unwrap(),
        ];
        for (idx, inst) in instances.iter().enumerate() {
            for phases in [1, 4, 10] {
                let out = run(inst, phases);
                out.solution
                    .check_feasible(inst)
                    .unwrap_or_else(|e| panic!("instance {idx} phases {phases}: infeasible: {e}"));
            }
        }
    }

    #[test]
    fn round_count_is_input_independent() {
        let small = Euclidean::new(4, 10).unwrap().generate(0).unwrap();
        let large = Euclidean::new(12, 200).unwrap().generate(0).unwrap();
        let phases = 5;
        let a = run(&small, phases).transcript.unwrap().num_rounds();
        let b = run(&large, phases).transcript.unwrap().num_rounds();
        assert_eq!(a, b);
        assert_eq!(a, crate::theory::metricball_rounds(phases));
    }

    #[test]
    fn congest_discipline_holds() {
        let inst = Euclidean::new(8, 40).unwrap().generate(3).unwrap();
        let out = run(&inst, 6);
        let t = out.transcript.unwrap();
        assert!(t.congest_compliant(MAX_MESSAGE_BITS));
    }

    #[test]
    fn reference_matches_the_distributed_run() {
        for seed in 0..8 {
            let inst = Euclidean::new(6, 25).unwrap().generate(seed).unwrap();
            for phases in [1, 3, 8] {
                let distributed = MetricBall::new(MetricBallParams::with_phases(phases))
                    .run(&inst, seed)
                    .unwrap();
                let reference = solve_reference(&inst, phases, seed).unwrap();
                assert_eq!(
                    distributed.solution, reference,
                    "seed {seed} phases {phases}: reference diverged"
                );
            }
        }
    }

    #[test]
    fn ratio_is_moderate_on_metric_instances() {
        for seed in 0..5 {
            let inst = Euclidean::new(8, 30).unwrap().generate(seed).unwrap();
            let out = run(&inst, 8);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = out.solution.cost(&inst).value() / opt;
            assert!(ratio < 5.0, "seed {seed}: ratio {ratio} unexpectedly large");
        }
    }

    #[test]
    fn metric_closures_are_solved_well_too() {
        let inst = Metricized::new(UniformRandom::new(6, 24).unwrap()).generate(11).unwrap();
        let out = run(&inst, 8);
        out.solution.check_feasible(&inst).unwrap();
        let opt = exact::solve(&inst).unwrap().cost.value();
        let ratio = out.solution.cost(&inst).value() / opt;
        assert!(ratio < 6.0, "ratio {ratio} unexpectedly large");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = Clustered::new(3, 8, 30).unwrap().generate(6).unwrap();
        let algo = MetricBall::new(MetricBallParams::with_phases(6));
        let a = algo.run(&inst, 5).unwrap();
        let b = algo.run(&inst, 5).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.transcript, b.transcript);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let inst = Euclidean::new(10, 60).unwrap().generate(8).unwrap();
        let serial = MetricBall::new(MetricBallParams::with_phases(6)).run(&inst, 3).unwrap();
        let parallel = MetricBall::new(MetricBallParams {
            threads: Some(4),
            ..MetricBallParams::with_phases(6)
        })
        .run(&inst, 3)
        .unwrap();
        assert_eq!(serial.solution, parallel.solution);
        assert_eq!(serial.transcript, parallel.transcript);
    }

    #[test]
    fn simulated_run_matches_the_lockstep_engine() {
        use distfl_congest::LatencyModel;
        let inst = Euclidean::new(8, 30).unwrap().generate(5).unwrap();
        let algo = MetricBall::new(MetricBallParams::with_phases(6));
        let lockstep = algo.run(&inst, 9).unwrap();
        for latency in [
            LatencyModel::Constant(25_000),
            LatencyModel::Uniform { lo: 100, hi: 800_000 },
            LatencyModel::LogNormal { median_nanos: 40_000.0, sigma: 1.2 },
        ] {
            let config = SimConfig { latency, latency_seed: 17, ..SimConfig::default() };
            let simulated = algo.run_simulated(&inst, 9, config).unwrap();
            assert_eq!(lockstep.solution, simulated.outcome.solution, "{latency:?}");
            assert_eq!(lockstep.transcript, simulated.outcome.transcript, "{latency:?}");
            assert!(simulated.verdicts.iter().all(|v| !v.is_faulty()), "{latency:?}");
        }
    }

    #[test]
    fn zero_phases_is_rejected() {
        let inst = Euclidean::new(2, 2).unwrap().generate(0).unwrap();
        let err = MetricBall::new(MetricBallParams::with_phases(0)).run(&inst, 0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParams { .. }));
        assert!(matches!(
            solve_reference(&inst, 0, 0).unwrap_err(),
            CoreError::InvalidParams { .. }
        ));
    }

    #[test]
    fn name_includes_parameters() {
        assert_eq!(MetricBall::new(MetricBallParams::with_phases(6)).name(), "metricball(s=6)");
    }
}
