//! Soft-capacitated facility location — the standard extension of UFL
//! machinery to capacity constraints.
//!
//! In the *soft*-capacitated problem each facility has a capacity `u_i`
//! and may be opened in multiple copies: opening `x` copies costs
//! `x·f_i` and serves at most `x·u_i` clients. The classic reduction maps
//! it back to UFL: solve the uncapacitated instance with amortized
//! connection costs `c'_ij = c_ij + f_i/u_i`, then open
//! `⌈(clients served at i)/u_i⌉` copies. Any `ρ`-approximation for UFL
//! becomes an `O(ρ)`-approximation for the soft-capacitated problem (the
//! amortized term pre-pays all but the first copy), so every algorithm in
//! this crate — including the distributed ones — lifts to capacities for
//! free. That compositionality is the point of this module.

use distfl_instance::{Cost, FacilityId, Instance, InstanceBuilder, Solution};

use crate::error::CoreError;
use crate::runner::FlAlgorithm;

/// A soft-capacitated instance: a base UFL instance plus per-facility
/// capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitatedInstance {
    base: Instance,
    capacities: Vec<u32>,
}

impl CapacitatedInstance {
    /// Wraps a base instance with capacities.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if the capacity vector's
    /// length differs from the facility count or any capacity is zero.
    pub fn new(base: Instance, capacities: Vec<u32>) -> Result<Self, CoreError> {
        if capacities.len() != base.num_facilities() {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "expected {} capacities, got {}",
                    base.num_facilities(),
                    capacities.len()
                ),
            });
        }
        if capacities.contains(&0) {
            return Err(CoreError::InvalidParams {
                reason: "capacities must be at least 1".to_owned(),
            });
        }
        Ok(CapacitatedInstance { base, capacities })
    }

    /// Uniform capacity `u` on every facility.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParams`] if `u == 0`.
    pub fn uniform(base: Instance, u: u32) -> Result<Self, CoreError> {
        let m = base.num_facilities();
        Self::new(base, vec![u; m])
    }

    /// The underlying UFL instance.
    pub fn base(&self) -> &Instance {
        &self.base
    }

    /// The capacity of facility `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn capacity(&self, i: FacilityId) -> u32 {
        self.capacities[i.index()]
    }

    /// The reduced UFL instance with amortized connection costs
    /// `c'_ij = c_ij + f_i/u_i`.
    pub fn reduced(&self) -> Instance {
        let mut b = InstanceBuilder::new();
        let fids: Vec<FacilityId> =
            self.base.facilities().map(|i| b.add_facility(self.base.opening_cost(i))).collect();
        for j in self.base.clients() {
            let c = b.add_client();
            for (i, cost) in self.base.client_links(j).iter() {
                let i = FacilityId::new(i);
                let amortized =
                    self.base.opening_cost(i).value() / f64::from(self.capacities[i.index()]);
                b.link(
                    c,
                    fids[i.index()],
                    Cost::new(cost + amortized).expect("finite amortized cost"),
                )
                .expect("copying valid links");
            }
        }
        b.build().expect("reduction of a valid instance is valid")
    }
}

/// A soft-capacitated solution: per-facility copy counts plus an
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitatedSolution {
    /// Copies opened per facility.
    pub copies: Vec<u32>,
    /// The client assignment (in terms of the base instance).
    pub assignment: Solution,
}

impl CapacitatedSolution {
    /// Total cost: `Σ copies_i·f_i + Σ c` on the base instance.
    pub fn cost(&self, instance: &CapacitatedInstance) -> f64 {
        let opening: f64 = instance
            .base
            .facilities()
            .map(|i| f64::from(self.copies[i.index()]) * instance.base.opening_cost(i).value())
            .sum();
        opening + self.assignment.connection_cost(&instance.base).value()
    }

    /// Verifies feasibility: the assignment is feasible for the base
    /// instance and no facility serves more than `copies·capacity`
    /// clients.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] naming the violation.
    pub fn check_feasible(&self, instance: &CapacitatedInstance) -> Result<(), CoreError> {
        self.assignment.check_feasible(&instance.base)?;
        for i in instance.base.facilities() {
            let served =
                instance.base.clients().filter(|&j| self.assignment.assigned(j) == i).count()
                    as u64;
            let allowed =
                u64::from(self.copies[i.index()]) * u64::from(instance.capacities[i.index()]);
            if served > allowed {
                return Err(CoreError::InvalidParams {
                    reason: format!(
                        "facility {i} serves {served} clients but has capacity for {allowed}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Solves the soft-capacitated problem by the amortized-cost reduction,
/// using any UFL algorithm (sequential or distributed) as the engine.
///
/// # Errors
///
/// Propagates the engine's errors.
pub fn solve_soft(
    instance: &CapacitatedInstance,
    engine: &dyn FlAlgorithm,
    seed: u64,
) -> Result<CapacitatedSolution, CoreError> {
    let reduced = instance.reduced();
    let outcome = engine.run(&reduced, seed)?;
    // Map the reduced solution back: same assignment, copies from load.
    let assignment: Vec<FacilityId> =
        instance.base.clients().map(|j| outcome.solution.assigned(j)).collect();
    let mut served = vec![0u32; instance.base.num_facilities()];
    for &i in &assignment {
        served[i.index()] += 1;
    }
    let copies: Vec<u32> =
        served.iter().zip(&instance.capacities).map(|(&s, &u)| s.div_ceil(u)).collect();
    let assignment = Solution::from_assignment(&instance.base, assignment)?;
    let solution = CapacitatedSolution { copies, assignment };
    solution.check_feasible(instance)?;
    Ok(solution)
}

/// Optimally re-assigns clients for a *fixed* copy vector under **hard**
/// capacities (at most `copies_i · u_i` clients at facility `i`), by
/// solving the transportation min-cost flow exactly.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] if the copy vector's shape is
/// wrong or its total capacity cannot serve every client through existing
/// links.
pub fn assign_hard(
    instance: &CapacitatedInstance,
    copies: &[u32],
) -> Result<CapacitatedSolution, CoreError> {
    let m = instance.base.num_facilities();
    let n = instance.base.num_clients();
    if copies.len() != m {
        return Err(CoreError::InvalidParams {
            reason: format!("expected {m} copy counts, got {}", copies.len()),
        });
    }
    // Nodes: 0 = source, 1..=m facilities, m+1..=m+n clients, m+n+1 sink.
    let mut net = distfl_lp::flow::FlowNetwork::new(m + n + 2);
    let sink = m + n + 1;
    for i in instance.base.facilities() {
        let cap = i64::from(copies[i.index()]) * i64::from(instance.capacities[i.index()]);
        net.add_edge(0, 1 + i.index(), cap, 0.0);
    }
    let mut link_edges = Vec::new();
    for j in instance.base.clients() {
        for (i, c) in instance.base.client_links(j).iter() {
            let i = FacilityId::new(i);
            let e = net.add_edge(1 + i.index(), 1 + m + j.index(), 1, c);
            link_edges.push((j, i, e));
        }
        net.add_edge(1 + m + j.index(), sink, 1, 0.0);
    }
    let (flow, _) = net.min_cost_flow(0, sink, n as i64);
    if flow < n as i64 {
        return Err(CoreError::InvalidParams {
            reason: format!("hard capacities can serve only {flow} of {n} clients"),
        });
    }
    let mut assignment = vec![FacilityId::new(0); n];
    let mut assigned = vec![false; n];
    for (j, i, e) in link_edges {
        if net.flow_on(e) > 0 {
            assignment[j.index()] = i;
            assigned[j.index()] = true;
        }
    }
    debug_assert!(assigned.iter().all(|&a| a), "full flow assigns every client");
    let assignment = Solution::from_assignment(&instance.base, assignment)?;
    let solution = CapacitatedSolution { copies: copies.to_vec(), assignment };
    solution.check_feasible(instance)?;
    Ok(solution)
}

/// Full hard-capacity pipeline: solve the soft relaxation with `engine`,
/// keep its copy counts, then re-assign clients *optimally* under hard
/// capacities via min-cost flow. Never worse than the soft assignment.
///
/// # Errors
///
/// Propagates engine and assignment errors.
pub fn solve_hard(
    instance: &CapacitatedInstance,
    engine: &dyn FlAlgorithm,
    seed: u64,
) -> Result<CapacitatedSolution, CoreError> {
    let soft = solve_soft(instance, engine, seed)?;
    assign_hard(instance, &soft.copies)
}

/// A certified lower bound on the soft-capacitated optimum: the base UFL
/// optimum is one (capacities only add cost), and so is the reduced
/// instance's LP-style bound divided by 2 (each copy beyond the first is
/// pre-paid by the amortized terms at rate ≥ 1/2).
pub fn lower_bound(instance: &CapacitatedInstance, exact_limit: usize) -> f64 {
    let base_lb = distfl_lp::bounds::certified_lower_bound(&instance.base, &[], exact_limit).value;
    let reduced_lb =
        distfl_lp::bounds::certified_lower_bound(&instance.reduced(), &[], exact_limit).value;
    base_lb.max(reduced_lb / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::StarGreedy;
    use crate::paydual::{PayDual, PayDualParams};
    use distfl_instance::generators::{Clustered, InstanceGenerator, UniformRandom};

    fn capacitated(seed: u64, u: u32) -> CapacitatedInstance {
        let base = UniformRandom::new(6, 30).unwrap().generate(seed).unwrap();
        CapacitatedInstance::uniform(base, u).unwrap()
    }

    #[test]
    fn reduction_shifts_costs_by_amortized_opening() {
        let inst = capacitated(1, 5);
        let reduced = inst.reduced();
        let base = inst.base();
        for j in base.clients() {
            for (i, c) in base.client_links(j).iter() {
                let i = FacilityId::new(i);
                let expected = c + base.opening_cost(i).value() / 5.0;
                let got = reduced.connection_cost(j, i).unwrap().value();
                assert!((got - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn greedy_engine_produces_feasible_capacitated_solutions() {
        for u in [1u32, 3, 10] {
            let inst = capacitated(2, u);
            let sol = solve_soft(&inst, &StarGreedy::new(), 0).unwrap();
            sol.check_feasible(&inst).unwrap();
            // Copy counts are exactly the ceil of load over capacity.
            for i in inst.base().facilities() {
                let served =
                    inst.base().clients().filter(|&j| sol.assignment.assigned(j) == i).count()
                        as u32;
                assert_eq!(sol.copies[i.index()], served.div_ceil(u));
            }
        }
    }

    #[test]
    fn distributed_engine_lifts_to_capacities() {
        let inst = capacitated(3, 4);
        let engine = PayDual::new(PayDualParams::with_phases(10));
        let sol = solve_soft(&inst, &engine, 7).unwrap();
        sol.check_feasible(&inst).unwrap();
        let lb = lower_bound(&inst, 10);
        let ratio = sol.cost(&inst) / lb;
        assert!(ratio >= 1.0 - 1e-9);
        assert!(ratio < 8.0, "capacitated ratio {ratio} out of envelope");
    }

    #[test]
    fn capacity_one_forces_one_copy_per_client() {
        let inst = capacitated(4, 1);
        let sol = solve_soft(&inst, &StarGreedy::new(), 0).unwrap();
        let total_copies: u32 = sol.copies.iter().sum();
        assert_eq!(total_copies, 30, "u=1 means one copy per served client");
    }

    #[test]
    fn tighter_capacity_costs_more() {
        let base = Clustered::new(3, 6, 24).unwrap().generate(5).unwrap();
        let loose = solve_soft(
            &CapacitatedInstance::uniform(base.clone(), 24).unwrap(),
            &StarGreedy::new(),
            0,
        )
        .unwrap()
        .cost(&CapacitatedInstance::uniform(base.clone(), 24).unwrap());
        let tight = solve_soft(
            &CapacitatedInstance::uniform(base.clone(), 2).unwrap(),
            &StarGreedy::new(),
            0,
        )
        .unwrap()
        .cost(&CapacitatedInstance::uniform(base, 2).unwrap());
        assert!(tight >= loose - 1e-9, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let base = UniformRandom::new(3, 6).unwrap().generate(0).unwrap();
        assert!(CapacitatedInstance::new(base.clone(), vec![1, 1]).is_err());
        assert!(CapacitatedInstance::new(base.clone(), vec![1, 0, 2]).is_err());
        let inst = CapacitatedInstance::uniform(base, 2).unwrap();
        // Hand-build an over-capacity solution: everyone to facility 0,
        // one copy.
        let assignment =
            Solution::from_assignment(inst.base(), vec![FacilityId::new(0); 6]).unwrap();
        let bad = CapacitatedSolution { copies: vec![1, 0, 0], assignment };
        assert!(matches!(bad.check_feasible(&inst), Err(CoreError::InvalidParams { .. })));
    }

    #[test]
    fn hard_assignment_is_optimal_for_fixed_copies() {
        // 2 facilities with one copy of capacity 1 each, 2 clients:
        // the flow must pick the cheaper perfect matching.
        let base = distfl_instance::Instance::from_dense(
            vec![Cost::new(1.0).unwrap(), Cost::new(1.0).unwrap()],
            vec![
                vec![Cost::new(1.0).unwrap(), Cost::new(10.0).unwrap()],
                vec![Cost::new(2.0).unwrap(), Cost::new(3.0).unwrap()],
            ],
        )
        .unwrap();
        let inst = CapacitatedInstance::uniform(base, 1).unwrap();
        let sol = assign_hard(&inst, &[1, 1]).unwrap();
        // Matching {c0->f0 (1), c1->f1 (3)} = 4 beats {c0->f1, c1->f0} = 12.
        assert_eq!(sol.assignment.assigned(distfl_instance::ClientId::new(0)).index(), 0);
        assert_eq!(sol.assignment.assigned(distfl_instance::ClientId::new(1)).index(), 1);
    }

    #[test]
    fn hard_assignment_detects_insufficient_capacity() {
        let inst = capacitated(7, 1);
        // Only one copy anywhere: 30 clients cannot fit.
        let mut copies = vec![0u32; 6];
        copies[0] = 1;
        assert!(matches!(assign_hard(&inst, &copies), Err(CoreError::InvalidParams { .. })));
        assert!(assign_hard(&inst, &[1, 1]).is_err(), "wrong shape rejected");
    }

    #[test]
    fn hard_pipeline_never_loses_to_the_soft_assignment() {
        for seed in 0..4 {
            let inst = capacitated(seed, 3);
            let soft = solve_soft(&inst, &StarGreedy::new(), 0).unwrap();
            let hard = solve_hard(&inst, &StarGreedy::new(), 0).unwrap();
            hard.check_feasible(&inst).unwrap();
            assert_eq!(hard.copies, soft.copies);
            assert!(
                hard.cost(&inst) <= soft.cost(&inst) + 1e-9,
                "seed {seed}: hard {} vs soft {}",
                hard.cost(&inst),
                soft.cost(&inst)
            );
            // Hard capacities actually respected per copy.
            for i in inst.base().facilities() {
                let served =
                    inst.base().clients().filter(|&j| hard.assignment.assigned(j) == i).count()
                        as u64;
                assert!(served <= u64::from(hard.copies[i.index()]) * 3);
            }
        }
    }

    #[test]
    fn uncapacitated_limit_recovers_ufl_costs() {
        // With huge capacities, the reduction's amortized term vanishes
        // and the capacitated cost approaches plain UFL.
        let base = UniformRandom::new(6, 24).unwrap().generate(6).unwrap();
        let inst = CapacitatedInstance::uniform(base.clone(), 1_000_000).unwrap();
        let cap = solve_soft(&inst, &StarGreedy::new(), 0).unwrap().cost(&inst);
        let (plain, _) = crate::greedy::solve(&base);
        let plain_cost = plain.cost(&base).value();
        assert!(
            (cap - plain_cost).abs() / plain_cost < 0.05,
            "capacitated {cap} vs plain {plain_cost}"
        );
    }
}
