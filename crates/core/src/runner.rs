//! The unified algorithm interface and evaluation driver.

use distfl_congest::Transcript;
use distfl_instance::{Instance, Solution};
use distfl_lp::{bounds, DualSolution};

use crate::error::CoreError;
use crate::report::RunReport;

/// What an algorithm run produces.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The feasible integral solution.
    pub solution: Solution,
    /// CONGEST statistics (`None` for sequential baselines).
    pub transcript: Option<Transcript>,
    /// A dual point for dual-fitting lower bounds, if the algorithm
    /// produces one.
    pub dual: Option<DualSolution>,
    /// Round count for algorithms that *model* their distributed execution
    /// instead of simulating it (the straw-man sequential-greedy
    /// simulation); ignored when a transcript is present.
    pub modeled_rounds: Option<u32>,
}

impl Outcome {
    /// An outcome of a sequential algorithm: solution only.
    pub fn sequential(solution: Solution) -> Self {
        Outcome { solution, transcript: None, dual: None, modeled_rounds: None }
    }
}

/// A facility-location algorithm that can be run and measured uniformly.
///
/// Distributed algorithms execute inside the CONGEST simulator and report a
/// transcript; sequential baselines report only their solution. `seed`
/// drives all randomness — equal seeds give equal outcomes.
pub trait FlAlgorithm {
    /// Name including parameters (used as the row label in experiment
    /// tables), e.g. `paydual(s=6)`.
    fn name(&self) -> String;

    /// Runs the algorithm on `instance`.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] for invalid parameters, model violations, or
    /// (for metric-only baselines) non-metric inputs.
    fn run(&self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError>;
}

/// Runs every algorithm on `instance` and assembles comparable
/// [`RunReport`]s against the best certified lower bound.
///
/// The lower bound is the exact optimum when `instance` has at most
/// `exact_limit` facilities; otherwise the best of the trivial bound and
/// the dual-fitting bounds of every dual the algorithms produced.
///
/// # Errors
///
/// Propagates the first algorithm failure.
pub fn evaluate(
    instance: &Instance,
    algorithms: &[&dyn FlAlgorithm],
    seed: u64,
    exact_limit: usize,
) -> Result<Vec<RunReport>, CoreError> {
    let mut outcomes = Vec::with_capacity(algorithms.len());
    for algo in algorithms {
        let outcome = algo.run(instance, seed)?;
        outcome.solution.check_feasible(instance)?;
        outcomes.push((algo.name(), outcome));
    }
    let duals: Vec<&DualSolution> = outcomes.iter().filter_map(|(_, o)| o.dual.as_ref()).collect();
    let lb = bounds::certified_lower_bound(instance, &duals, exact_limit);
    let source = match lb.source {
        bounds::BoundSource::Exact => "exact",
        bounds::BoundSource::DualFitting => "dual",
        bounds::BoundSource::Trivial => "trivial",
    };
    Ok(outcomes
        .into_iter()
        .map(|(name, o)| {
            let cost = o.solution.cost(instance).value();
            RunReport {
                algorithm: name,
                cost,
                num_open: o.solution.num_open(),
                rounds: o.transcript.as_ref().map(Transcript::num_rounds).or(o.modeled_rounds),
                messages: o.transcript.as_ref().map(Transcript::total_messages),
                total_bits: o.transcript.as_ref().map(Transcript::total_bits),
                max_message_bits: o.transcript.as_ref().map(Transcript::max_message_bits),
                lower_bound: lb.value,
                bound_source: source.to_owned(),
                ratio: (lb.value > 0.0).then(|| cost / lb.value),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::StarGreedy;
    use crate::paydual::{PayDual, PayDualParams};
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};

    #[test]
    fn evaluate_produces_comparable_reports() {
        let inst = UniformRandom::new(6, 20).unwrap().generate(5).unwrap();
        let paydual = PayDual::new(PayDualParams::with_phases(8));
        let greedy = StarGreedy::new();
        let reports = evaluate(&inst, &[&paydual, &greedy], 3, 10).unwrap();
        assert_eq!(reports.len(), 2);
        // Same certified lower bound for all rows.
        assert_eq!(reports[0].lower_bound, reports[1].lower_bound);
        assert_eq!(reports[0].bound_source, "exact");
        for r in &reports {
            assert!(r.ratio.unwrap() >= 1.0 - 1e-9, "{}: ratio below 1", r.algorithm);
        }
        // The distributed run has CONGEST metrics, the sequential one not.
        assert!(reports[0].rounds.is_some());
        assert!(reports[1].rounds.is_none());
    }

    #[test]
    fn evaluate_uses_dual_fitting_when_exact_is_unavailable() {
        let inst = UniformRandom::new(6, 20).unwrap().generate(6).unwrap();
        let paydual = PayDual::new(PayDualParams::with_phases(8));
        let reports = evaluate(&inst, &[&paydual], 3, 1).unwrap();
        assert!(reports[0].bound_source == "dual" || reports[0].bound_source == "trivial");
        assert!(reports[0].lower_bound > 0.0);
    }
}
