//! Local search (add / drop / swap) — the classic UFL post-optimizer.
//!
//! Starting from any feasible solution, repeatedly apply the best
//! improving move among:
//!
//! * **add** — open one more facility (clients re-route to it if cheaper),
//! * **drop** — close an open facility (its clients re-route to the
//!   cheapest remaining open facility),
//! * **swap** — close one open facility and open a closed one.
//!
//! On metric instances a local optimum of this neighborhood is a
//! 3-approximation (Arya et al.), and in practice local search squeezes
//! the last percent out of any starting point — which is exactly how a
//! deployment would use the distributed algorithms: PayDual produces a
//! good placement in `O(k)` rounds, and an (inherently sequential /
//! centralized) local-search pass polishes it offline. The experiments
//! keep the two regimes separate for honesty; this module is the bridge
//! for users who want final quality.
//!
//! # Cached assignment costs
//!
//! [`optimize`] keeps, per client, the best and second-best service costs
//! over the *currently* open facilities, as dense `f64`/`u32` lanes. Each
//! round hoists the per-candidate work: every closed facility `b` gets a
//! dense `add_min` column (its link costs scattered over `+inf`), and the
//! assignment part of every add/drop/swap candidate is then one
//! branchless chunked pass over the caches ([`kernels::assign_sum_add`] /
//! [`kernels::assign_sum_drop`] / [`kernels::assign_sum_swap`]) — adding
//! `b` takes the per-client min with its column (`min(x, +inf) = x`
//! covers unlinked clients exactly), dropping `a` falls back to the
//! second-best where `a` holds the best. A candidate is therefore
//! O(n + m) with no per-candidate scatter, instead of the naive
//! O(Σ_j deg j) full rescan. The per-client minimum of a set of `f64`s is
//! the same value no matter how it is computed, and every candidate sums
//! those minima in the same (ascending client, then ascending facility)
//! order as the full rescan, so every candidate cost — and hence the
//! best-move selection sequence — is bit-identical to
//! [`optimize_reference`].

use distfl_instance::{kernels, FacilityId, Instance, Solution};

/// Outcome of a local-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSearchRun {
    /// The locally-optimal (or iteration-capped) solution.
    pub solution: Solution,
    /// Cost before optimization.
    pub initial_cost: f64,
    /// Cost after optimization.
    pub final_cost: f64,
    /// Improving moves applied.
    pub moves: u32,
    /// Whether a true local optimum was reached (false = iteration cap).
    pub converged: bool,
}

/// Cost of serving every client by its cheapest facility in `open`
/// (`None` if some client has no link into `open`).
fn assignment_cost(instance: &Instance, open: &[bool]) -> Option<f64> {
    let mut total = 0.0;
    for j in instance.clients() {
        let best = instance
            .client_links(j)
            .iter()
            .filter(|&(i, _)| open[i as usize])
            .map(|(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return None;
        }
        total += best;
    }
    Some(total)
}

/// Total cost of an open set (opening + optimal assignment), `None` if
/// infeasible.
fn open_set_cost(instance: &Instance, open: &[bool]) -> Option<f64> {
    let opening: f64 = instance
        .facilities()
        .filter(|i| open[i.index()])
        .map(|i| instance.opening_cost(i).value())
        .sum();
    assignment_cost(instance, open).map(|a| a + opening)
}

/// Per-client service-cost caches over the currently open set: the best
/// open facility (by cost, first link wins ties) and the best value with
/// that facility excluded. Dense SoA lanes so the candidate-pricing
/// kernels scan them directly.
struct ServiceCache {
    best_cost: Vec<f64>,
    best_fac: Vec<u32>,
    second_cost: Vec<f64>,
}

impl ServiceCache {
    fn new(n: usize) -> Self {
        ServiceCache {
            best_cost: vec![f64::INFINITY; n],
            best_fac: vec![u32::MAX; n],
            second_cost: vec![f64::INFINITY; n],
        }
    }

    fn resize(&mut self, n: usize) {
        self.best_cost.resize(n, f64::INFINITY);
        self.best_fac.resize(n, u32::MAX);
        self.second_cost.resize(n, f64::INFINITY);
    }

    fn rebuild(&mut self, instance: &Instance, open: &[bool]) {
        for j in instance.clients() {
            let (mut b1, mut bf, mut b2) = (f64::INFINITY, u32::MAX, f64::INFINITY);
            for (i, c) in instance.client_links(j).iter() {
                if !open[i as usize] {
                    continue;
                }
                if c < b1 {
                    b2 = b1;
                    b1 = c;
                    bf = i;
                } else if c < b2 {
                    b2 = c;
                }
            }
            self.best_cost[j.index()] = b1;
            self.best_fac[j.index()] = bf;
            self.second_cost[j.index()] = b2;
        }
    }
}

/// The opening-cost part of a candidate open set obtained by closing
/// `drop` and/or opening `add`: the same ascending-facility select-sum
/// the full rescan folds, so the additive order is preserved exactly.
fn opening_part(open: &[bool], f_cost: &[f64], drop: Option<usize>, add: Option<usize>) -> f64 {
    let mut opening = 0.0f64;
    for (i, &f) in f_cost.iter().enumerate() {
        let is_open = if Some(i) == drop {
            false
        } else if Some(i) == add {
            true
        } else {
            open[i]
        };
        if is_open {
            opening += f;
        }
    }
    opening
}

/// Reusable buffers for [`optimize_with`]: the cost/open lanes, the
/// per-client service caches, and the per-round candidate-pricing
/// columns. Every lane is either refilled from the instance on entry or
/// written before it is read within a round (the add column is refilled
/// per closed facility; drop/add/swap sums are only read for the
/// open/closed pattern that just wrote them), so values left over from an
/// earlier run — even of a different instance — are never observed.
#[derive(Default)]
pub(crate) struct LsScratch {
    f_cost: Vec<f64>,
    open: Vec<bool>,
    cache: Option<ServiceCache>,
    add_min: Vec<f64>,
    add_assign: Vec<f64>,
    drop_assign: Vec<f64>,
    swap_assign: Vec<f64>,
}

/// Runs best-improvement local search from `start`, with an iteration cap.
///
/// Evaluates candidates through the per-client `ServiceCache`; produces
/// the exact move sequence and costs of [`optimize_reference`].
///
/// # Panics
///
/// Panics if `start` is infeasible for `instance`.
pub fn optimize(instance: &Instance, start: &Solution, max_moves: u32) -> LocalSearchRun {
    optimize_with(instance, start, max_moves, &mut LsScratch::default())
}

/// [`optimize`] with caller-provided buffers — the warm-start path reuses
/// one [`LsScratch`] across solves so repeated polishing allocates only
/// the output record.
pub(crate) fn optimize_with(
    instance: &Instance,
    start: &Solution,
    max_moves: u32,
    scratch: &mut LsScratch,
) -> LocalSearchRun {
    let _span = distfl_obs::span("solver", "localsearch");
    start.check_feasible(instance).expect("local search needs a feasible start");
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let f_cost = &mut scratch.f_cost;
    f_cost.clear();
    f_cost.extend(instance.facilities().map(|i| instance.opening_cost(i).value()));
    let open = &mut scratch.open;
    open.clear();
    open.extend(instance.facilities().map(|i| start.is_open(i)));
    let initial_cost = start.cost(instance).value();
    let cache = scratch.cache.get_or_insert_with(|| ServiceCache::new(n));
    cache.resize(n);
    cache.rebuild(instance, open);
    // Round-scoped buffers: the dense add column for one closed facility,
    // and the precomputed assignment sums per candidate.
    let add_min = &mut scratch.add_min;
    add_min.resize(n, f64::INFINITY);
    let add_assign = &mut scratch.add_assign;
    add_assign.resize(m, f64::INFINITY);
    let drop_assign = &mut scratch.drop_assign;
    drop_assign.resize(m, f64::INFINITY);
    let swap_assign = &mut scratch.swap_assign;
    swap_assign.resize(m * m, f64::INFINITY);
    // The optimal reassignment may already beat the given assignment.
    let mut current =
        kernels::assign_sum(&cache.best_cost) + opening_part(open, f_cost, None, None);
    assert!(current.is_finite(), "feasible start");
    let mut moves = 0;
    let mut converged = false;

    while moves < max_moves {
        // Phase 1: assignment sums for every candidate, one chunked
        // branchless pass each. Each closed facility's dense `add_min`
        // column (link costs over `+inf`) is built once and shared by its
        // add and all its swap candidates — the per-candidate stamping
        // this replaces dominated the round.
        for a in 0..m {
            if open[a] {
                drop_assign[a] = kernels::assign_sum_drop(
                    &cache.best_cost,
                    &cache.best_fac,
                    &cache.second_cost,
                    a as u32,
                );
            }
        }
        for b in 0..m {
            if open[b] {
                continue;
            }
            add_min.fill(f64::INFINITY);
            for (j, c) in instance.facility_links(FacilityId::new(b as u32)).iter() {
                add_min[j as usize] = c;
            }
            add_assign[b] = kernels::assign_sum_add(&cache.best_cost, add_min);
            for a in 0..m {
                if open[a] {
                    swap_assign[a * m + b] = kernels::assign_sum_swap(
                        &cache.best_cost,
                        &cache.best_fac,
                        &cache.second_cost,
                        a as u32,
                        add_min,
                    );
                }
            }
        }

        // Phase 2: selection scan in the reference enumeration order. An
        // infeasible candidate sums to `+inf` and fails the improvement
        // test, exactly as the rescan's `None` is skipped.
        let mut best: Option<(Option<usize>, Option<usize>, f64)> = None;
        let mut consider = |drop: Option<usize>, add: Option<usize>, assign: f64| {
            let cost = assign + opening_part(open, f_cost, drop, add);
            if cost < current - 1e-9 && best.as_ref().is_none_or(|(_, _, b)| cost < *b) {
                best = Some((drop, add, cost));
            }
        };
        for a in 0..m {
            if !open[a] {
                // Add.
                consider(None, Some(a), add_assign[a]);
            } else {
                // Drop.
                consider(Some(a), None, drop_assign[a]);
                // Swap a -> b.
                for b in (0..m).filter(|&b| !open[b]) {
                    consider(Some(a), Some(b), swap_assign[a * m + b]);
                }
            }
        }
        match best {
            Some((drop, add, cost)) => {
                if let Some(a) = drop {
                    open[a] = false;
                }
                if let Some(b) = add {
                    open[b] = true;
                }
                current = cost;
                moves += 1;
                cache.rebuild(instance, open);
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    distfl_obs::counter("solver.localsearch.moves").add(u64::from(moves));
    finish(instance, open.clone(), initial_cost, moves, converged)
}

/// Builds the final run record from a locally-optimized open set.
fn finish(
    instance: &Instance,
    open: Vec<bool>,
    initial_cost: f64,
    moves: u32,
    converged: bool,
) -> LocalSearchRun {
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            // First-win strict `<` over the id-sorted row = the
            // `(cost, facility id)`-lexicographic minimum.
            let mut best: Option<(u32, f64)> = None;
            for (i, c) in instance.client_links(j).iter() {
                if open[i as usize] && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((i, c));
                }
            }
            FacilityId::new(best.expect("local-search open sets stay feasible").0)
        })
        .collect();
    let solution =
        Solution::from_assignment(instance, assignment).expect("assignment over existing links");
    let final_cost = solution.cost(instance).value();
    LocalSearchRun { solution, initial_cost, final_cost, moves, converged }
}

/// Runs best-improvement local search by fully re-pricing every candidate
/// open set. Retained as the reference implementation: `bench_solvers`
/// measures [`optimize`] against it and the solver-equivalence proptests
/// pin bit-identical output.
///
/// # Panics
///
/// Panics if `start` is infeasible for `instance`.
pub fn optimize_reference(instance: &Instance, start: &Solution, max_moves: u32) -> LocalSearchRun {
    start.check_feasible(instance).expect("local search needs a feasible start");
    let m = instance.num_facilities();
    let mut open: Vec<bool> = instance.facilities().map(|i| start.is_open(i)).collect();
    let initial_cost = start.cost(instance).value();
    let mut current = open_set_cost(instance, &open).expect("feasible start");
    // The optimal reassignment may already beat the given assignment.
    let mut moves = 0;
    let mut converged = false;

    while moves < max_moves {
        let mut best: Option<(Vec<bool>, f64)> = None;
        let consider = |candidate: Vec<bool>, best: &mut Option<(Vec<bool>, f64)>| {
            if let Some(cost) = open_set_cost(instance, &candidate) {
                if cost < current - 1e-9 && best.as_ref().is_none_or(|(_, b)| cost < *b) {
                    *best = Some((candidate, cost));
                }
            }
        };
        for a in 0..m {
            if !open[a] {
                // Add.
                let mut cand = open.clone();
                cand[a] = true;
                consider(cand, &mut best);
            } else {
                // Drop.
                let mut cand = open.clone();
                cand[a] = false;
                consider(cand, &mut best);
                // Swap a -> b.
                for b in 0..m {
                    if !open[b] {
                        let mut cand = open.clone();
                        cand[a] = false;
                        cand[b] = true;
                        consider(cand, &mut best);
                    }
                }
            }
        }
        match best {
            Some((next, cost)) => {
                open = next;
                current = cost;
                moves += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    finish(instance, open, initial_cost, moves, converged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paydual::{PayDual, PayDualParams};
    use crate::runner::FlAlgorithm;
    use distfl_instance::generators::{Euclidean, InstanceGenerator, UniformRandom};
    use distfl_lp::exact;

    #[test]
    fn never_worse_and_often_better() {
        for seed in 0..6 {
            let inst = UniformRandom::new(8, 30).unwrap().generate(seed).unwrap();
            let coarse =
                PayDual::new(PayDualParams::with_phases(2)).run(&inst, 1).unwrap().solution;
            let run = optimize(&inst, &coarse, 200);
            run.solution.check_feasible(&inst).unwrap();
            assert!(run.final_cost <= run.initial_cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn reaches_the_optimum_from_a_bad_start_on_small_instances() {
        let mut improved_to_optimal = 0;
        for seed in 0..6 {
            let inst = UniformRandom::new(6, 15).unwrap().generate(seed).unwrap();
            // Worst reasonable start: open everything.
            let assignment: Vec<FacilityId> =
                inst.clients().map(|j| inst.cheapest_link(j).0).collect();
            let all_open = Solution::new(&inst, vec![true; 6], assignment).unwrap();
            let run = optimize(&inst, &all_open, 500);
            assert!(run.converged);
            let opt = exact::solve(&inst).unwrap().cost.value();
            if (run.final_cost - opt).abs() < 1e-9 {
                improved_to_optimal += 1;
            }
            assert!(run.final_cost <= opt * 3.0 + 1e-9, "local optimum above 3x OPT");
        }
        assert!(improved_to_optimal >= 3, "local search should usually find OPT here");
    }

    #[test]
    fn local_optimum_is_stable() {
        let inst = Euclidean::new(6, 20).unwrap().generate(3).unwrap();
        let (greedy, _) = crate::greedy::solve(&inst);
        let first = optimize(&inst, &greedy, 500);
        assert!(first.converged);
        // Re-running from the local optimum makes no further moves.
        let second = optimize(&inst, &first.solution, 500);
        assert_eq!(second.moves, 0);
        assert!((second.final_cost - first.final_cost).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let inst = UniformRandom::new(8, 30).unwrap().generate(9).unwrap();
        let assignment: Vec<FacilityId> = inst.clients().map(|j| inst.cheapest_link(j).0).collect();
        let all_open = Solution::new(&inst, vec![true; 8], assignment).unwrap();
        let run = optimize(&inst, &all_open, 1);
        assert!(run.moves <= 1);
    }

    #[test]
    fn end_to_end_pipeline_distributed_then_polish() {
        let inst = Euclidean::new(10, 40).unwrap().generate(4).unwrap();
        let fast = PayDual::new(PayDualParams::with_phases(4)).run(&inst, 2).unwrap();
        let run = optimize(&inst, &fast.solution, 300);
        let opt = exact::solve(&inst).unwrap().cost.value();
        let before = fast.solution.cost(&inst).value() / opt;
        let after = run.final_cost / opt;
        assert!(after <= before + 1e-9);
        assert!(after < 1.3, "polished ratio {after} should be near-optimal");
    }
}
