//! Local search (add / drop / swap) — the classic UFL post-optimizer.
//!
//! Starting from any feasible solution, repeatedly apply the best
//! improving move among:
//!
//! * **add** — open one more facility (clients re-route to it if cheaper),
//! * **drop** — close an open facility (its clients re-route to the
//!   cheapest remaining open facility),
//! * **swap** — close one open facility and open a closed one.
//!
//! On metric instances a local optimum of this neighborhood is a
//! 3-approximation (Arya et al.), and in practice local search squeezes
//! the last percent out of any starting point — which is exactly how a
//! deployment would use the distributed algorithms: PayDual produces a
//! good placement in `O(k)` rounds, and an (inherently sequential /
//! centralized) local-search pass polishes it offline. The experiments
//! keep the two regimes separate for honesty; this module is the bridge
//! for users who want final quality.

use distfl_instance::{FacilityId, Instance, Solution};

/// Outcome of a local-search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalSearchRun {
    /// The locally-optimal (or iteration-capped) solution.
    pub solution: Solution,
    /// Cost before optimization.
    pub initial_cost: f64,
    /// Cost after optimization.
    pub final_cost: f64,
    /// Improving moves applied.
    pub moves: u32,
    /// Whether a true local optimum was reached (false = iteration cap).
    pub converged: bool,
}

/// Cost of serving every client by its cheapest facility in `open`
/// (`None` if some client has no link into `open`).
fn assignment_cost(instance: &Instance, open: &[bool]) -> Option<f64> {
    let mut total = 0.0;
    for j in instance.clients() {
        let best = instance
            .client_links(j)
            .iter()
            .filter(|(i, _)| open[i.index()])
            .map(|(_, c)| c.value())
            .fold(f64::INFINITY, f64::min);
        if !best.is_finite() {
            return None;
        }
        total += best;
    }
    Some(total)
}

/// Total cost of an open set (opening + optimal assignment), `None` if
/// infeasible.
fn open_set_cost(instance: &Instance, open: &[bool]) -> Option<f64> {
    let opening: f64 = instance
        .facilities()
        .filter(|i| open[i.index()])
        .map(|i| instance.opening_cost(i).value())
        .sum();
    assignment_cost(instance, open).map(|a| a + opening)
}

/// Runs best-improvement local search from `start`, with an iteration cap.
///
/// # Panics
///
/// Panics if `start` is infeasible for `instance`.
pub fn optimize(instance: &Instance, start: &Solution, max_moves: u32) -> LocalSearchRun {
    start.check_feasible(instance).expect("local search needs a feasible start");
    let m = instance.num_facilities();
    let mut open: Vec<bool> = instance.facilities().map(|i| start.is_open(i)).collect();
    let initial_cost = start.cost(instance).value();
    let mut current = open_set_cost(instance, &open).expect("feasible start");
    // The optimal reassignment may already beat the given assignment.
    let mut moves = 0;
    let mut converged = false;

    while moves < max_moves {
        let mut best: Option<(Vec<bool>, f64)> = None;
        let consider = |candidate: Vec<bool>, best: &mut Option<(Vec<bool>, f64)>| {
            if let Some(cost) = open_set_cost(instance, &candidate) {
                if cost < current - 1e-9 && best.as_ref().is_none_or(|(_, b)| cost < *b) {
                    *best = Some((candidate, cost));
                }
            }
        };
        for a in 0..m {
            if !open[a] {
                // Add.
                let mut cand = open.clone();
                cand[a] = true;
                consider(cand, &mut best);
            } else {
                // Drop.
                let mut cand = open.clone();
                cand[a] = false;
                consider(cand, &mut best);
                // Swap a -> b.
                for b in 0..m {
                    if !open[b] {
                        let mut cand = open.clone();
                        cand[a] = false;
                        cand[b] = true;
                        consider(cand, &mut best);
                    }
                }
            }
        }
        match best {
            Some((next, cost)) => {
                open = next;
                current = cost;
                moves += 1;
            }
            None => {
                converged = true;
                break;
            }
        }
    }

    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            instance
                .client_links(j)
                .iter()
                .filter(|(i, _)| open[i.index()])
                .min_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fa.cmp(fb)))
                .map(|(i, _)| *i)
                .expect("local-search open sets stay feasible")
        })
        .collect();
    let solution =
        Solution::from_assignment(instance, assignment).expect("assignment over existing links");
    let final_cost = solution.cost(instance).value();
    LocalSearchRun { solution, initial_cost, final_cost, moves, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paydual::{PayDual, PayDualParams};
    use crate::runner::FlAlgorithm;
    use distfl_instance::generators::{Euclidean, InstanceGenerator, UniformRandom};
    use distfl_lp::exact;

    #[test]
    fn never_worse_and_often_better() {
        for seed in 0..6 {
            let inst = UniformRandom::new(8, 30).unwrap().generate(seed).unwrap();
            let coarse =
                PayDual::new(PayDualParams::with_phases(2)).run(&inst, 1).unwrap().solution;
            let run = optimize(&inst, &coarse, 200);
            run.solution.check_feasible(&inst).unwrap();
            assert!(run.final_cost <= run.initial_cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn reaches_the_optimum_from_a_bad_start_on_small_instances() {
        let mut improved_to_optimal = 0;
        for seed in 0..6 {
            let inst = UniformRandom::new(6, 15).unwrap().generate(seed).unwrap();
            // Worst reasonable start: open everything.
            let assignment: Vec<FacilityId> =
                inst.clients().map(|j| inst.cheapest_link(j).0).collect();
            let all_open = Solution::new(&inst, vec![true; 6], assignment).unwrap();
            let run = optimize(&inst, &all_open, 500);
            assert!(run.converged);
            let opt = exact::solve(&inst).unwrap().cost.value();
            if (run.final_cost - opt).abs() < 1e-9 {
                improved_to_optimal += 1;
            }
            assert!(run.final_cost <= opt * 3.0 + 1e-9, "local optimum above 3x OPT");
        }
        assert!(improved_to_optimal >= 3, "local search should usually find OPT here");
    }

    #[test]
    fn local_optimum_is_stable() {
        let inst = Euclidean::new(6, 20).unwrap().generate(3).unwrap();
        let (greedy, _) = crate::greedy::solve(&inst);
        let first = optimize(&inst, &greedy, 500);
        assert!(first.converged);
        // Re-running from the local optimum makes no further moves.
        let second = optimize(&inst, &first.solution, 500);
        assert_eq!(second.moves, 0);
        assert!((second.final_cost - first.final_cost).abs() < 1e-9);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let inst = UniformRandom::new(8, 30).unwrap().generate(9).unwrap();
        let assignment: Vec<FacilityId> = inst.clients().map(|j| inst.cheapest_link(j).0).collect();
        let all_open = Solution::new(&inst, vec![true; 8], assignment).unwrap();
        let run = optimize(&inst, &all_open, 1);
        assert!(run.moves <= 1);
    }

    #[test]
    fn end_to_end_pipeline_distributed_then_polish() {
        let inst = Euclidean::new(10, 40).unwrap().generate(4).unwrap();
        let fast = PayDual::new(PayDualParams::with_phases(4)).run(&inst, 2).unwrap();
        let run = optimize(&inst, &fast.solution, 300);
        let opt = exact::solve(&inst).unwrap().cost.value();
        let before = fast.solution.cost(&inst).value() / opt;
        let after = run.final_cost / opt;
        assert!(after <= before + 1e-9);
        assert!(after < 1.3, "polished ratio {after} should be near-optimal");
    }
}
