//! Experiment-facing run reports.

use serde::{Deserialize, Serialize};

/// One algorithm's measured result on one instance, with everything the
/// experiment tables need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm name including parameters, e.g. `paydual(s=6)`.
    pub algorithm: String,
    /// Total solution cost.
    pub cost: f64,
    /// Number of open facilities.
    pub num_open: usize,
    /// CONGEST rounds used (`None` for sequential baselines).
    pub rounds: Option<u32>,
    /// Messages delivered (`None` for sequential baselines).
    pub messages: Option<u64>,
    /// Total bits delivered (`None` for sequential baselines).
    pub total_bits: Option<u64>,
    /// Largest single message in bits (`None` for sequential baselines).
    pub max_message_bits: Option<u64>,
    /// Certified lower bound on `OPT` used as the ratio denominator.
    pub lower_bound: f64,
    /// Provenance of the lower bound (`"exact"`, `"dual-fitting"`,
    /// `"trivial"`).
    pub bound_source: String,
    /// `cost / lower_bound` — an upper bound on the true approximation
    /// ratio (`None` when the lower bound is zero).
    pub ratio: Option<f64>,
}

impl RunReport {
    /// Formats the report as one aligned table row (matches
    /// [`RunReport::table_header`]).
    pub fn table_row(&self) -> String {
        format!(
            "{:<22} {:>12.2} {:>6} {:>8} {:>10} {:>12.2} {:>8} {:>7}",
            self.algorithm,
            self.cost,
            self.num_open,
            self.rounds.map_or_else(|| "-".into(), |r| r.to_string()),
            self.messages.map_or_else(|| "-".into(), |m| m.to_string()),
            self.lower_bound,
            self.ratio.map_or_else(|| "-".into(), |r| format!("{r:.3}")),
            self.bound_source,
        )
    }

    /// The header matching [`RunReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<22} {:>12} {:>6} {:>8} {:>10} {:>12} {:>8} {:>7}",
            "algorithm", "cost", "open", "rounds", "messages", "LB", "ratio", "src"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            algorithm: "paydual(s=6)".into(),
            cost: 123.456,
            num_open: 4,
            rounds: Some(22),
            messages: Some(1000),
            total_bits: Some(64_000),
            max_message_bits: Some(72),
            lower_bound: 100.0,
            bound_source: "exact".into(),
            ratio: Some(1.23456),
        }
    }

    #[test]
    fn table_row_contains_fields() {
        let row = sample().table_row();
        assert!(row.contains("paydual(s=6)"));
        assert!(row.contains("123.46"));
        assert!(row.contains("22"));
        assert!(row.contains("1.235"));
        assert!(row.contains("exact"));
    }

    #[test]
    fn sequential_baseline_renders_dashes() {
        let mut r = sample();
        r.rounds = None;
        r.messages = None;
        r.ratio = None;
        let row = r.table_row();
        assert!(row.contains('-'));
    }

    #[test]
    fn header_and_row_have_same_column_count() {
        let header = RunReport::table_header();
        let row = sample().table_row();
        assert_eq!(header.split_whitespace().count(), row.split_whitespace().count());
    }
}
