//! The straw-man: sequential greedy naively distributed.
//!
//! Before the PODC 2005 paper, the obvious way to solve facility location
//! distributively was to *simulate* the sequential greedy: elect a leader,
//! build a BFS tree, and then — one greedy iteration at a time — aggregate
//! every facility's best star ratio up the tree, broadcast the winner, and
//! apply it. Each iteration costs `Θ(depth)` rounds and the number of
//! iterations grows with the number of stars the greedy picks, so the
//! total round count **grows with the input** — exactly the dependence the
//! paper's `O(k)`-round algorithm eliminates (experiment E2 plots the
//! gap).
//!
//! The solution returned is identical to [`crate::greedy`]; the round
//! count is *modeled* as `iterations × (2·depth + 2) + 2·depth` (one
//! convergecast plus one broadcast per iteration, plus leader
//! election/tree construction), with `depth` the eccentricity of node 0 in
//! the bipartite communication graph. The model under-counts a real
//! implementation (no congestion on the tree is charged), which only makes
//! the comparison *harder* for the paper's algorithm — the gap in E2 is
//! therefore conservative.

use distfl_congest::{NodeId, Topology};
use distfl_instance::Instance;
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::greedy;
use crate::model::topology_of;
use crate::runner::{FlAlgorithm, Outcome};
use crate::theory::harmonic;

/// The modeled straw-man baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimulatedSeqGreedy;

impl SimulatedSeqGreedy {
    /// Creates the baseline.
    pub fn new() -> Self {
        SimulatedSeqGreedy
    }
}

/// BFS eccentricity of `root` (hops to the farthest reachable node).
pub(crate) fn eccentricity(topo: &Topology, root: NodeId) -> u32 {
    let mut dist = vec![u32::MAX; topo.num_nodes()];
    dist[root.index()] = 0;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut max = 0;
    while let Some(u) = queue.pop_front() {
        for &v in topo.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                max = max.max(dist[v.index()]);
                queue.push_back(v);
            }
        }
    }
    max
}

/// Number of stars sequential greedy picks on `instance` (its iteration
/// count).
pub fn greedy_iterations(instance: &Instance) -> u32 {
    greedy::solve_detailed(instance).iterations
}

impl FlAlgorithm for SimulatedSeqGreedy {
    fn name(&self) -> String {
        "seq-greedy-sim".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        let run = greedy::solve_detailed(instance);
        let topo = topology_of(instance)?;
        let depth = eccentricity(&topo, NodeId::new(0));
        let rounds = run.iterations * (2 * depth + 2) + 2 * depth;
        let h = harmonic(instance.num_clients());
        let alpha: Vec<f64> = run.ratios.iter().map(|r| r / h).collect();
        Ok(Outcome {
            solution: run.solution,
            transcript: None,
            dual: Some(DualSolution::new(alpha)),
            modeled_rounds: Some(rounds),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};

    #[test]
    fn eccentricity_of_known_graphs() {
        let ring = Topology::ring(8).unwrap();
        assert_eq!(eccentricity(&ring, NodeId::new(0)), 4);
        let kb = Topology::complete_bipartite(3, 4).unwrap();
        assert_eq!(eccentricity(&kb, NodeId::new(0)), 2);
    }

    #[test]
    fn iteration_count_is_positive_and_bounded_by_n() {
        for seed in 0..5 {
            let inst = UniformRandom::new(6, 20).unwrap().generate(seed).unwrap();
            let iters = greedy_iterations(&inst);
            assert!((1..=20).contains(&iters), "iterations {iters}");
        }
    }

    #[test]
    fn modeled_rounds_grow_with_instance() {
        let small = UniformRandom::new(4, 10).unwrap().generate(2).unwrap();
        let large = UniformRandom::new(16, 160).unwrap().generate(2).unwrap();
        let a = SimulatedSeqGreedy::new().run(&small, 0).unwrap().modeled_rounds.unwrap();
        let b = SimulatedSeqGreedy::new().run(&large, 0).unwrap().modeled_rounds.unwrap();
        assert!(b > a, "modeled rounds should grow: {a} vs {b}");
    }

    #[test]
    fn solution_matches_plain_greedy() {
        let inst = UniformRandom::new(6, 25).unwrap().generate(3).unwrap();
        let sim = SimulatedSeqGreedy::new().run(&inst, 0).unwrap();
        let (plain, _) = greedy::solve(&inst);
        assert_eq!(sim.solution, plain);
    }
}
