//! Warm-started delta solving: caches that survive [`Instance::apply_delta`]
//! and make the re-solve after a small mutation much cheaper than a cold
//! run — while staying **bit-identical** to one.
//!
//! # Warm data structures, not warm decisions
//!
//! The cache never reuses *solutions* across epochs. It reuses the
//! expensive instance-derived precomputations whose content is a pure
//! function of the instance, and replays each solver's decision loop in
//! full:
//!
//! * **Greedy** — the per-facility `(cost, client id)`-sorted star rows
//!   ([`crate::greedy`]'s `SortedStars`, whose construction sort dominates
//!   a cold solve) plus the exact iteration-0 heap seed ratio of every
//!   facility. The run loop consumes the rows destructively, so each warm
//!   solve memcpys the pristine structure into a working copy — a lane
//!   copy, not a re-sort. The heap's pop order depends only on its
//!   *content* (keys are totally ordered and per-facility unique), so
//!   seeding it from cached values reproduces the cold run exactly.
//! * **Jain–Vazirani** — the per-client cost-sorted adjacency the
//!   event-driven ascent reads through its tightness pointers, plus the
//!   interleaved facility rows and opening lane (pure copies). The ascent
//!   itself re-runs with reused scratch buffers.
//! * **Local search** — no instance-derived precompute to keep; the warm
//!   entry point reuses one scratch arena (service caches, candidate
//!   pricing columns) across solves, and starts from the warm greedy run
//!   exactly as the cold [`crate::SolverKind::LocalSearch`] dispatch
//!   starts from a cold greedy run.
//!
//! # Patching across a delta
//!
//! After [`Instance::apply_delta`], [`WarmCache::apply_delta`] brings the
//! caches in sync from the [`DeltaReport`] instead of rebuilding — along
//! two paths, split by [`DeltaReport::is_structural`]:
//!
//! * **Reprice-only deltas are staged, not applied.** Every row keeps its
//!   length and every id keeps its row, so `apply_delta` just records the
//!   touched `(facility, client)` pairs per structure family; the next
//!   greedy/local-search solve drains the greedy stars and seeds, the
//!   next JV solve drains the ascent lanes. A session pinned to one
//!   solver never pays the other family's upkeep, and repeated reprices
//!   of one link collapse into a single repair against the instance's
//!   current cost. The repair itself is in-place: one staged link per
//!   row rotates a `(cost, id)` subrange to its new sorted position; a
//!   batch per row does one snapshot-and-merge pass. Both produce exactly
//!   what a full re-sort would, because every row's keys are unique.
//! * **Structural deltas flush eagerly.** Surviving star-row entries keep
//!   their `(cost, client id)` order under the report's remap because the
//!   remap is **monotone**, so each facility row is one linear merge of
//!   its filtered survivors with the (small, sorted) added/repriced
//!   entries; greedy seeds recompute only for touched rows; JV client
//!   rows re-extract and re-sort only when dirty, surviving rows copy
//!   verbatim. Any still-staged reprices fold (remapped) into the
//!   repriced set first, so nothing is lost across the flush.
//!
//! When the batch touches more than [`WarmConfig::drift_threshold`] of the
//! link lanes, patching stops paying for itself and the cache falls back
//! to a rebuild — itself deferred per family (a stale family re-sorts
//! from the instance on its next drain). Results are identical either
//! way, only the work differs (the equivalence proptests pin both paths).

use distfl_instance::{ClientId, DeltaReport, FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::greedy::{self, GreedyRun};
use crate::jv::{self, DualAscent};
use crate::localsearch::{self, LocalSearchRun};

/// Tuning knobs for [`WarmCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmConfig {
    /// Maximum fraction of link lanes a delta may touch
    /// ([`DeltaReport::drift`]) before `apply_delta` rebuilds the caches
    /// from scratch instead of patching. `0.0` always rebuilds, `1.0`
    /// effectively always patches; either way the solve outputs are
    /// identical.
    pub drift_threshold: f64,
}

impl Default for WarmConfig {
    fn default() -> Self {
        // Break-even on the bench shapes sits near 10% of links touched:
        // past that, the in-place rotations move more bytes than a fresh
        // counting-sort build, and the rebuild fallback (which still skips
        // the instance rebuild the cold path pays) wins.
        WarmConfig { drift_threshold: 0.1 }
    }
}

/// Session-lifetime solver caches for one mutating instance.
///
/// The cache must be kept in lockstep with its instance: after every
/// successful [`Instance::apply_delta`], call [`WarmCache::apply_delta`]
/// with the returned report before the next solve. The solve entry points
/// assert the cheap shape invariants (client/facility/link counts) and
/// the equivalence suite pins the content invariant: every warm solve is
/// bit-identical to a cold solve of the same instance.
///
/// ```
/// use distfl_core::warm::WarmCache;
/// use distfl_instance::generators::{InstanceGenerator, UniformRandom};
/// use distfl_instance::{ClientId, Cost, DeltaBatch, FacilityId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut inst = UniformRandom::new(5, 20)?.generate(7)?;
/// let mut warm = WarmCache::new(&inst);
/// let cold = distfl_core::greedy::solve_detailed(&inst);
/// assert_eq!(warm.solve_greedy(&inst), cold);
///
/// let mut batch = DeltaBatch::new();
/// batch.reprice(ClientId::new(0), FacilityId::new(0), Cost::new(3.25)?);
/// let report = inst.apply_delta(&batch)?;
/// warm.apply_delta(&inst, &report);
/// assert_eq!(warm.solve_greedy(&inst), distfl_core::greedy::solve_detailed(&inst));
/// # Ok(())
/// # }
/// ```
pub struct WarmCache {
    config: WarmConfig,
    rebuilds: u64,
    patches: u64,
    // Greedy: pristine sorted star rows + exact iteration-0 seeds, a
    // working copy the run loop may destroy, and a spare for patching.
    stars_pristine: greedy::SortedStars,
    stars_working: greedy::SortedStars,
    stars_spare: greedy::SortedStars,
    seeds: Vec<f64>,
    seeds_spare: Vec<f64>,
    greedy_scratch: greedy::GreedyScratch,
    // Jain–Vazirani: read-only ascent lanes + reusable mutable state.
    jv_lanes: jv::JvLanes,
    jv_spare_offs: Vec<u32>,
    jv_spare_sorted: Vec<(f64, u32)>,
    jv_scratch: jv::JvScratch,
    // Local search: one scratch arena across solves.
    ls_scratch: localsearch::LsScratch,
    // Deferred reprice repairs, per structure family: `(facility, client,
    // old cost)` triples staged by `apply_delta` and drained by the next
    // solve that actually reads the family's lanes. A session that only
    // runs greedy never pays for JV lane maintenance, and vice versa. The
    // old cost is the repriced entry's current sort key inside the
    // family's lanes, so a drain can binary-search its position instead
    // of scanning for it.
    pending_greedy: Vec<(u32, u32, f64)>,
    pending_jv: Vec<(u32, u32, f64)>,
    // The drift fallback is deferred the same way: a stale family
    // re-sorts itself from the instance on its next drain instead of
    // both families rebuilding eagerly inside `apply_delta`.
    stale_greedy: bool,
    stale_jv: bool,
    // Patch-pass scratch.
    extras: Vec<(u32, f64, u32)>,
    repriced_any: Vec<bool>,
    old_of: Vec<u32>,
    union_repriced: Vec<(ClientId, FacilityId)>,
    inserts: Vec<(f64, u32)>,
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmCache")
            .field("config", &self.config)
            .field("rebuilds", &self.rebuilds)
            .field("patches", &self.patches)
            .finish_non_exhaustive()
    }
}

impl WarmCache {
    /// Builds the caches for `instance` with the default config.
    pub fn new(instance: &Instance) -> Self {
        WarmCache::with_config(instance, WarmConfig::default())
    }

    /// Builds the caches for `instance` with an explicit config.
    pub fn with_config(instance: &Instance, config: WarmConfig) -> Self {
        let stars_pristine = greedy::SortedStars::build(instance);
        let seeds = greedy::seed_ratios(instance, &stars_pristine);
        WarmCache {
            config,
            rebuilds: 0,
            patches: 0,
            stars_pristine,
            stars_working: greedy::SortedStars::empty(),
            stars_spare: greedy::SortedStars::empty(),
            seeds,
            seeds_spare: Vec::new(),
            greedy_scratch: greedy::GreedyScratch::default(),
            jv_lanes: jv::JvLanes::build(instance),
            jv_spare_offs: Vec::new(),
            jv_spare_sorted: Vec::new(),
            jv_scratch: jv::JvScratch::default(),
            ls_scratch: localsearch::LsScratch::default(),
            pending_greedy: Vec::new(),
            pending_jv: Vec::new(),
            stale_greedy: false,
            stale_jv: false,
            extras: Vec::new(),
            repriced_any: Vec::new(),
            old_of: Vec::new(),
            union_repriced: Vec::new(),
            inserts: Vec::new(),
        }
    }

    /// How many `apply_delta` calls fell back to a full rebuild.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// How many `apply_delta` calls took the incremental patch path.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Brings the caches in sync with `instance` after a successful
    /// [`Instance::apply_delta`] that returned `report`.
    ///
    /// `instance` must be the **post-mutation** instance. Patches
    /// incrementally below the drift threshold, rebuilds above it. A
    /// reprice-only delta is merely *staged* here, and the drift fallback
    /// merely marks each family stale — a family's lanes repair (or
    /// re-sort) themselves lazily on the next solve that reads them, so a
    /// session pinned to one solver never pays for the others' upkeep.
    pub fn apply_delta(&mut self, instance: &Instance, report: &DeltaReport) {
        if report.drift(instance) > self.config.drift_threshold {
            // Past the threshold, patching stops paying for itself. Like
            // the reprices, the fallback is deferred per family: a
            // greedy-pinned session never re-sorts the JV ascent lanes.
            self.rebuilds += 1;
            self.stale_greedy = true;
            self.stale_jv = true;
            self.pending_greedy.clear();
            self.pending_jv.clear();
            return;
        }
        self.patches += 1;
        if !report.is_structural() {
            for (&(j, i), &old) in report.repriced.iter().zip(&report.repriced_old) {
                if !self.stale_greedy {
                    self.pending_greedy.push((i.raw(), j.raw(), old));
                }
                if !self.stale_jv {
                    self.pending_jv.push((i.raw(), j.raw(), old));
                }
            }
            return;
        }
        // Structural: fold any deferred reprices (remapped to post-delta
        // ids; removed clients drop out) into the repriced set and flush
        // the live families eagerly; a stale family keeps deferring — its
        // drain re-sorts from the final instance anyway. A spurious union
        // entry is harmless — the merge re-reads the link's current cost
        // from the instance — so one union serves both families.
        let mut union = std::mem::take(&mut self.union_repriced);
        union.clear();
        union.extend_from_slice(&report.repriced);
        for &(ir, jr, _) in self.pending_greedy.iter().chain(self.pending_jv.iter()) {
            if let Some(nj) = report.remap[jr as usize] {
                union.push((nj, FacilityId::new(ir)));
            }
        }
        union.sort_unstable();
        union.dedup();
        self.pending_greedy.clear();
        self.pending_jv.clear();
        if !self.stale_greedy {
            self.patch_greedy(instance, report, &union);
        }
        if !self.stale_jv {
            self.patch_jv(instance, report, &union);
        }
        self.union_repriced = union;
    }

    /// Eagerly rebuilds every cache from scratch (also usable to
    /// re-anchor a cache whose instance was replaced wholesale).
    pub fn rebuild(&mut self, instance: &Instance) {
        self.rebuilds += 1;
        self.stale_greedy = false;
        self.stale_jv = false;
        self.pending_greedy.clear();
        self.pending_jv.clear();
        self.stars_pristine = greedy::SortedStars::build(instance);
        self.seeds = greedy::seed_ratios(instance, &self.stars_pristine);
        self.jv_lanes = jv::JvLanes::build(instance);
    }

    /// Warm star greedy: drains this family's staged reprices, lane-copies
    /// the pristine rows, and replays the lazy-heap loop from the cached
    /// seeds. Bit-identical to [`greedy::solve_detailed`].
    pub fn solve_greedy(&mut self, instance: &Instance) -> GreedyRun {
        let _span = distfl_obs::span("solver", "greedy.warm");
        self.drain_greedy(instance);
        assert_eq!(self.seeds.len(), instance.num_facilities(), "warm cache out of sync");
        assert_eq!(self.stars_pristine.ids.len(), instance.num_links(), "warm cache out of sync");
        self.stars_working.copy_from(&self.stars_pristine);
        greedy::run_greedy(instance, &mut self.stars_working, &self.seeds, &mut self.greedy_scratch)
    }

    /// Warm local search: polishes the warm greedy run, reusing the scratch
    /// arena. Bit-identical to `localsearch::optimize(instance,
    /// &greedy::solve(instance).0, max_moves)` — the cold
    /// [`crate::SolverKind::LocalSearch`] pipeline.
    pub fn solve_local_search(&mut self, instance: &Instance, max_moves: u32) -> LocalSearchRun {
        let start = self.solve_greedy(instance);
        localsearch::optimize_with(instance, &start.solution, max_moves, &mut self.ls_scratch)
    }

    /// Warm Jain–Vazirani phase 1. Bit-identical to [`jv::dual_ascent`].
    pub fn dual_ascent(&mut self, instance: &Instance) -> DualAscent {
        self.drain_jv(instance);
        assert_eq!(self.jv_lanes.offs.len(), instance.num_clients() + 1, "warm cache out of sync");
        assert_eq!(self.jv_lanes.sorted.len(), instance.num_links(), "warm cache out of sync");
        jv::dual_ascent_with(instance, &self.jv_lanes, &mut self.jv_scratch)
    }

    /// Warm full Jain–Vazirani. Bit-identical to [`jv::solve`].
    pub fn solve_jv(&mut self, instance: &Instance) -> (Solution, DualSolution) {
        self.drain_jv(instance);
        assert_eq!(self.jv_lanes.offs.len(), instance.num_clients() + 1, "warm cache out of sync");
        assert_eq!(self.jv_lanes.sorted.len(), instance.num_links(), "warm cache out of sync");
        jv::solve_with(instance, &self.jv_lanes, &mut self.jv_scratch)
    }

    /// Drains the greedy family's staged reprice repairs. A reprice
    /// keeps every row's length and every id's row, so the big sorted
    /// star lanes are *repaired* in place instead of rewritten. A small
    /// group of staged links per facility resolves move by move: the
    /// staged old cost pins the entry's current sorted position by
    /// binary search (the row stays fully sorted between moves, and
    /// every not-yet-moved entry still holds its staged old key), and a
    /// subrange rotation carries it to its new position — `O(Δ · deg)`
    /// contiguous moves, no scan. A large group merges the whole row in
    /// one pass instead, which is cheaper once rotations would move
    /// more bytes than a row rewrite. Seeds recompute only for drained
    /// facilities; every other cached value is untouched bytes,
    /// bit-identity for free. Repeats of a pair keep the **first**
    /// staged old cost (the one matching the lanes) and repair straight
    /// to the instance's current cost — the intermediate values were
    /// never observable.
    fn drain_greedy(&mut self, instance: &Instance) {
        if self.stale_greedy {
            // Deferred drift fallback: re-sort this family, leave the
            // other alone.
            self.stale_greedy = false;
            self.pending_greedy.clear();
            self.stars_pristine = greedy::SortedStars::build(instance);
            self.seeds = greedy::seed_ratios(instance, &self.stars_pristine);
            return;
        }
        if self.pending_greedy.is_empty() {
            return;
        }
        let mut moves = std::mem::take(&mut self.pending_greedy);
        // Stable by pair, then keep the first (earliest) staging of each
        // pair: its old cost is the entry's actual current sort key.
        moves.sort_by_key(|&(i, j, _)| (i, j));
        moves.dedup_by_key(|&mut (i, j, _)| (i, j));
        let mask = &mut self.repriced_any;
        mask.clear();
        mask.resize(instance.num_clients(), false);
        let inserts = &mut self.inserts;
        let scratch_ids = &mut self.stars_spare.ids;
        let scratch_costs = &mut self.stars_spare.costs;
        let mut s = 0usize;
        while s < moves.len() {
            let i = moves[s].0 as usize;
            let e = s + moves[s..].iter().take_while(|mv| mv.0 as usize == i).count();
            let group = &moves[s..e];
            s = e;

            let fl = instance.facility_links(FacilityId::new(i as u32));
            let lo = self.stars_pristine.offsets[i] as usize;
            let hi = self.stars_pristine.offsets[i + 1] as usize;
            let ids = &mut self.stars_pristine.ids[lo..hi];
            let costs = &mut self.stars_pristine.costs[lo..hi];

            if group.len() <= ROTATE_MAX_GROUP {
                for &(_, jr, old_c) in group {
                    let c = fl.costs[fl.ids.binary_search(&jr).expect("staged link is in its row")];
                    let p = soa_lower_bound(costs, ids, old_c, jr);
                    debug_assert!(
                        ids[p] == jr && costs[p] == old_c,
                        "staged old cost pins the entry"
                    );
                    let q = slide_to(soa_lower_bound(costs, ids, c, jr), p);
                    if q >= p {
                        ids[p..=q].rotate_left(1);
                        costs[p..=q].rotate_left(1);
                    } else {
                        ids[q..=p].rotate_right(1);
                        costs[q..=p].rotate_right(1);
                    }
                    ids[q] = jr;
                    costs[q] = c;
                }
            } else {
                // Several: a snapshot-and-merge pass re-emits the row,
                // detecting stale entries inline with an O(1) client-id
                // mask lookup. Each element moves once, and the result is
                // exactly what a full re-sort would produce because all
                // `(cost, id)` keys are unique.
                inserts.clear();
                for &(_, jr, _) in group {
                    mask[jr as usize] = true;
                    let c = fl.costs[fl.ids.binary_search(&jr).expect("staged link is in its row")];
                    inserts.push((c, jr));
                }
                inserts.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                scratch_ids.clear();
                scratch_ids.extend_from_slice(ids);
                scratch_costs.clear();
                scratch_costs.extend_from_slice(costs);

                let (mut w, mut dropped, mut u) = (0usize, 0usize, 0usize);
                for t in 0..scratch_ids.len() {
                    let sj = scratch_ids[t];
                    if mask[sj as usize] {
                        dropped += 1;
                        continue;
                    }
                    let sc = scratch_costs[t];
                    while u < inserts.len() {
                        let (ic, ij) = inserts[u];
                        if ic.total_cmp(&sc).then(ij.cmp(&sj)).is_lt() {
                            ids[w] = ij;
                            costs[w] = ic;
                            w += 1;
                            u += 1;
                        } else {
                            break;
                        }
                    }
                    ids[w] = sj;
                    costs[w] = sc;
                    w += 1;
                }
                debug_assert_eq!(dropped, group.len(), "every staged link is in its row");
                for &(ic, ij) in &inserts[u..] {
                    ids[w] = ij;
                    costs[w] = ic;
                    w += 1;
                }
                debug_assert_eq!(w, ids.len(), "reprice repair preserves row length");
                for &(_, jr, _) in group {
                    mask[jr as usize] = false;
                }
            }

            // This row's cost lane changed; recompute its heap seed.
            let costs = &self.stars_pristine.costs[lo..hi];
            self.seeds[i] = if costs.is_empty() {
                f64::NAN
            } else {
                distfl_instance::kernels::fused_ratio_accumulate(
                    costs,
                    instance.opening_cost(FacilityId::new(i as u32)).value(),
                )
                .0
            };
        }
        moves.clear();
        self.pending_greedy = moves;
    }

    /// Drains the JV family's staged reprices: updates the interleaved
    /// facility rows in place (client-id-sorted, structurally identical
    /// to the instance's facility lane, so one binary search localizes
    /// the link in both) and repairs each touched client's cost-sorted
    /// ascent row by rotation (one link) or snapshot-and-merge (several),
    /// mirroring [`WarmCache::drain_greedy`].
    fn drain_jv(&mut self, instance: &Instance) {
        if self.stale_jv {
            // Deferred drift fallback: re-sort this family, leave the
            // other alone.
            self.stale_jv = false;
            self.pending_jv.clear();
            self.jv_lanes = jv::JvLanes::build(instance);
            return;
        }
        if self.pending_jv.is_empty() {
            return;
        }
        let mut moves = std::mem::take(&mut self.pending_jv);
        // Group by client row (stable, keeping the first staging of each
        // pair — its old cost is the entry's actual current sort key);
        // facility order within a group gives the membership scan a
        // sorted needle list.
        moves.sort_by_key(|&(i, j, _)| (j, i));
        moves.dedup_by_key(|&mut (i, j, _)| (j, i));

        // Interleaved facility rows: pure value updates.
        for &(ir, jr, _) in &moves {
            let fl = instance.facility_links(FacilityId::new(ir));
            let p = fl.ids.binary_search(&jr).expect("staged link is in its row");
            let lo = self.jv_lanes.fl_offs[ir as usize] as usize;
            let entry = &mut self.jv_lanes.fl_rows[lo + p];
            debug_assert_eq!(entry.0, jr, "cached facility row mirrors the instance");
            entry.1 = fl.costs[p];
        }

        let drops = &mut self.old_of;
        let inserts = &mut self.inserts;
        let scratch = &mut self.jv_spare_sorted;
        let mut s = 0usize;
        while s < moves.len() {
            let jr = moves[s].1;
            let e = s + moves[s..].iter().take_while(|mv| mv.1 == jr).count();
            let group = &moves[s..e];
            s = e;

            let cl = instance.client_links(ClientId::new(jr));
            let lo = self.jv_lanes.offs[jr as usize] as usize;
            let hi = self.jv_lanes.offs[jr as usize + 1] as usize;
            let row = &mut self.jv_lanes.sorted[lo..hi];

            if group.len() <= ROTATE_MAX_GROUP {
                for &(ir, _, old_c) in group {
                    let c = cl.costs[cl.ids.binary_search(&ir).expect("staged link is in its row")];
                    let p = row.partition_point(|&(ec, ef)| {
                        ec.total_cmp(&old_c).then(ef.cmp(&ir)).is_lt()
                    });
                    debug_assert!(row[p] == (old_c, ir), "staged old cost pins the entry");
                    let q = slide_to(
                        row.partition_point(|&(ec, ef)| ec.total_cmp(&c).then(ef.cmp(&ir)).is_lt()),
                        p,
                    );
                    if q >= p {
                        row[p..=q].rotate_left(1);
                    } else {
                        row[q..=p].rotate_right(1);
                    }
                    row[q] = (c, ir);
                }
            } else {
                drops.clear();
                for (t, &(_, f)) in row.iter().enumerate() {
                    if group.binary_search_by(|mv| mv.0.cmp(&f)).is_ok() {
                        drops.push(t as u32);
                    }
                }
                debug_assert_eq!(drops.len(), group.len(), "every staged link is in its row");
                inserts.clear();
                for &(ir, _, _) in group {
                    let c = cl.costs[cl.ids.binary_search(&ir).expect("staged link is in its row")];
                    inserts.push((c, ir));
                }
                inserts.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                scratch.clear();
                scratch.extend_from_slice(row);

                let (mut w, mut d, mut u) = (0usize, 0usize, 0usize);
                for (t, &(sc, sf)) in scratch.iter().enumerate() {
                    if d < drops.len() && drops[d] as usize == t {
                        d += 1;
                        continue;
                    }
                    while u < inserts.len() {
                        let (ic, fi) = inserts[u];
                        if ic.total_cmp(&sc).then(fi.cmp(&sf)).is_lt() {
                            row[w] = (ic, fi);
                            w += 1;
                            u += 1;
                        } else {
                            break;
                        }
                    }
                    row[w] = (sc, sf);
                    w += 1;
                }
                for &ins in &inserts[u..] {
                    row[w] = ins;
                    w += 1;
                }
                debug_assert_eq!(w, row.len(), "reprice repair preserves row length");
            }
        }
        moves.clear();
        self.pending_jv = moves;
    }

    /// Patches the greedy star rows and heap seeds. One linear merge per
    /// facility row: filtered-and-remapped survivors (already in
    /// `(cost, id)` order because the remap is monotone) merged with the
    /// sorted added/repriced entries.
    fn patch_greedy(
        &mut self,
        instance: &Instance,
        report: &DeltaReport,
        repriced: &[(ClientId, FacilityId)],
    ) {
        let m = instance.num_facilities();
        let n = instance.num_clients();

        let repriced_any = &mut self.repriced_any;
        repriced_any.clear();
        repriced_any.resize(n, false);
        for &(j, _) in repriced {
            repriced_any[j.index()] = true;
        }
        // Entries entering the rows: every link of an added client and the
        // new value of every repriced link, keyed for a per-facility
        // `(cost, client id)`-ordered merge.
        let extras = &mut self.extras;
        extras.clear();
        for j in report.added.clone() {
            for (i, c) in instance.client_links(distfl_instance::ClientId::new(j)).iter() {
                extras.push((i, c, j));
            }
        }
        for &(j, i) in repriced {
            let c = instance
                .connection_cost(j, i)
                .expect("repriced pairs exist in the post-state")
                .value();
            extras.push((i.raw(), c, j.raw()));
        }
        extras.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));

        let spare = &mut self.stars_spare;
        spare.offsets.clear();
        spare.offsets.push(0);
        spare.ids.clear();
        spare.costs.clear();
        let seeds_spare = &mut self.seeds_spare;
        seeds_spare.clear();

        let mut ex = 0usize;
        for i in 0..m {
            let (old_ids, old_costs) = self.stars_pristine.row(i);
            let ex_end = ex + extras[ex..].iter().take_while(|&&(f, _, _)| f == i as u32).count();
            let row_extras = &extras[ex..ex_end];
            ex = ex_end;

            let row_start = spare.ids.len();
            // Next surviving (cost, new id) entry of the old row, skipping
            // removed clients and pairs superseded by a reprice.
            let mut k = 0usize;
            let next_survivor = |k: &mut usize| -> Option<(f64, u32)> {
                while *k < old_ids.len() {
                    let (oj, c) = (old_ids[*k], old_costs[*k]);
                    *k += 1;
                    if let Some(nj) = report.remap[oj as usize] {
                        let superseded = repriced_any[nj.index()]
                            && repriced
                                .binary_search(&(nj, distfl_instance::FacilityId::new(i as u32)))
                                .is_ok();
                        if !superseded {
                            return Some((c, nj.raw()));
                        }
                    }
                }
                None
            };
            let mut surv = next_survivor(&mut k);
            let mut survivors_kept = 0usize;
            let mut b = 0usize;
            loop {
                let take_survivor = match (surv, row_extras.get(b)) {
                    (Some((c, j)), Some(&(_, ec, ej))) => c.total_cmp(&ec).then(j.cmp(&ej)).is_lt(),
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_survivor {
                    let (c, j) = surv.expect("checked above");
                    spare.ids.push(j);
                    spare.costs.push(c);
                    survivors_kept += 1;
                    surv = next_survivor(&mut k);
                } else {
                    let (_, c, j) = row_extras[b];
                    spare.ids.push(j);
                    spare.costs.push(c);
                    b += 1;
                }
            }
            spare.offsets.push(spare.ids.len() as u32);

            // Seeds: untouched rows keep bit-identical cached values;
            // touched rows recompute from the new cost lane.
            let row_changed = survivors_kept != old_ids.len() || !row_extras.is_empty();
            if row_changed {
                let costs = &spare.costs[row_start..];
                seeds_spare.push(if costs.is_empty() {
                    f64::NAN
                } else {
                    distfl_instance::kernels::fused_ratio_accumulate(
                        costs,
                        instance.opening_cost(distfl_instance::FacilityId::new(i as u32)).value(),
                    )
                    .0
                });
            } else {
                seeds_spare.push(self.seeds[i]);
            }
        }
        spare.live_end.clear();
        spare.live_end.extend_from_slice(&spare.offsets[1..]);

        std::mem::swap(&mut self.stars_pristine, &mut self.stars_spare);
        std::mem::swap(&mut self.seeds, &mut self.seeds_spare);
    }

    /// Patches the JV ascent lanes: dirty (added/repriced) client rows are
    /// re-extracted and re-sorted, surviving rows copy verbatim, and the
    /// interleaved facility rows refresh as pure copies.
    fn patch_jv(
        &mut self,
        instance: &Instance,
        report: &DeltaReport,
        repriced: &[(ClientId, FacilityId)],
    ) {
        let n = instance.num_clients();
        // `repriced_any` still describes this repriced set (patch_greedy
        // runs first and fills it); recompute defensively if shapes
        // drifted.
        let repriced_any = &mut self.repriced_any;
        if repriced_any.len() != n {
            repriced_any.clear();
            repriced_any.resize(n, false);
            for &(j, _) in repriced {
                repriced_any[j.index()] = true;
            }
        }
        let old_of = &mut self.old_of;
        old_of.clear();
        old_of.resize(n, u32::MAX);
        for (old, maybe_new) in report.remap.iter().enumerate() {
            if let Some(new) = maybe_new {
                old_of[new.index()] = old as u32;
            }
        }

        let offs = &mut self.jv_spare_offs;
        offs.clear();
        offs.push(0);
        let sorted = &mut self.jv_spare_sorted;
        sorted.clear();
        for j in instance.clients() {
            let dirty = report.added.contains(&j.raw()) || repriced_any[j.index()];
            if dirty {
                let s = sorted.len();
                sorted.extend(instance.client_links(j).iter().map(|(i, c)| (c, i)));
                sorted[s..].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            } else {
                let old = old_of[j.index()] as usize;
                let lo = self.jv_lanes.offs[old] as usize;
                let hi = self.jv_lanes.offs[old + 1] as usize;
                sorted.extend_from_slice(&self.jv_lanes.sorted[lo..hi]);
            }
            offs.push(sorted.len() as u32);
        }
        std::mem::swap(&mut self.jv_lanes.offs, offs);
        std::mem::swap(&mut self.jv_lanes.sorted, sorted);
        self.jv_lanes.refresh_facility_rows(instance);
    }
}

/// Largest per-row group a drain repairs by successive rotations; bigger
/// groups fall back to a whole-row snapshot-and-merge. A rotation moves
/// on average a third of the row per staged link while a merge moves the
/// whole row once (plus a branchy per-element pass), so the crossover is
/// near a dozen links regardless of row length.
const ROTATE_MAX_GROUP: usize = 12;

/// Lower bound of `(c, j)` under the row order (`cost` by `total_cmp`,
/// then id) over SoA lanes: the index of the first entry not less than
/// the key. Keys are unique per row (ids are), so this is the exact
/// position a full re-sort would give the entry.
fn soa_lower_bound(costs: &[f64], ids: &[u32], c: f64, j: u32) -> usize {
    let (mut lo, mut hi) = (0usize, costs.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if costs[mid].total_cmp(&c).then(ids[mid].cmp(&j)).is_lt() {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Destination index for an entry moving from `p` to lower bound `q`
/// computed on the row *with* the old entry still in place: removing
/// index `p` first would shift positions above it down by one.
fn slide_to(q: usize, p: usize) -> usize {
    if q > p {
        q - 1
    } else {
        q
    }
}
