//! Uniform solver selection: one enum naming every solver the outward
//! layers (the serve protocol, load generators, CLIs) can request.
//!
//! The individual algorithms live in their own modules with their own
//! parameter types; [`SolverKind`] is the stable, string-addressable
//! subset a *request* can pick from, with fixed mid-range parameters so
//! that a `(kind, instance, seed)` triple fully determines the output —
//! the property the serve layer's byte-deterministic responses rest on.

use std::str::FromStr;

use distfl_instance::classify;
use distfl_instance::Instance;

use crate::error::CoreError;
use crate::greedy::StarGreedy;
use crate::jv::JainVazirani;
use crate::metricball::{MetricBall, MetricBallParams};
use crate::outliers::{Outliers, OutliersParams};
use crate::paydual::{PayDual, PayDualParams};
use crate::runner::{FlAlgorithm, Outcome};
use crate::warm::WarmCache;
use crate::{greedy, localsearch};

/// Move cap for [`SolverKind::LocalSearch`]. Local search on UFL
/// converges long before this on any instance the service admits; the cap
/// only bounds the worst case so a request cannot run unboundedly.
const LOCAL_SEARCH_MAX_MOVES: u32 = 10_000;

/// Link-count ceiling under which [`SolverKind::Auto`] picks local search
/// for non-metric instances (the quality option, affordable when small);
/// above it, greedy (the throughput option).
pub const AUTO_LOCAL_SEARCH_LINK_LIMIT: usize = 20_000;

/// The solvers addressable by name from outside the crate.
///
/// `solve` dispatches to the corresponding algorithm with fixed default
/// parameters, so equal `(kind, instance, seed)` inputs always produce
/// equal solutions — across processes, worker counts, and restarts.
///
/// ```
/// use distfl_core::SolverKind;
/// use distfl_instance::generators::{InstanceGenerator, UniformRandom};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let instance = UniformRandom::new(5, 20)?.generate(7)?;
/// let kind: SolverKind = "paydual".parse()?;
/// let outcome = kind.solve(&instance, 1)?;
/// outcome.solution.check_feasible(&instance)?;
/// // The distributed solver reports its CONGEST round count.
/// assert!(outcome.transcript.unwrap().num_rounds() > 0);
/// // Equal inputs give equal outputs.
/// assert_eq!(outcome.solution, kind.solve(&instance, 1)?.solution);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Sequential star greedy ([`crate::greedy`]): the classic
    /// `ln n`-approximation, fastest of the four.
    Greedy,
    /// Star greedy start followed by open/close local search
    /// ([`crate::localsearch`]); best solution quality of the four.
    LocalSearch,
    /// Jain–Vazirani primal–dual ([`crate::jv`]). Its 3-approximation
    /// guarantee assumes a metric instance; dispatch skips the quadratic
    /// metricity check and still returns a feasible solution (with a dual
    /// lower bound) on non-metric inputs.
    JainVazirani,
    /// The reproduced distributed algorithm ([`crate::paydual`]) with the
    /// default phase count, executed in the CONGEST simulator; reports a
    /// round count.
    PayDual,
    /// The distributed ball-growing metric solver
    /// ([`crate::metricball`]): constant-factor on metric instances,
    /// feasible (but unguaranteed) elsewhere; reports a round count.
    MetricBall,
    /// The robust/outliers variant ([`crate::outliers`]): drops the
    /// budgeted most-expensive clients, solves the core with MetricBall,
    /// reattaches; reports the core solve's round count.
    MetricOutliers,
    /// Classifier-driven routing: [`Self::resolve`] profiles the instance
    /// (metricity, size) and dispatches to the best concrete kind. The
    /// classifier is deterministic, so `auto` keeps the byte-deterministic
    /// response property.
    Auto,
}

impl SolverKind {
    /// Every kind, in protocol-name order — for enumerating what a
    /// service supports.
    pub const ALL: [SolverKind; 7] = [
        SolverKind::Greedy,
        SolverKind::LocalSearch,
        SolverKind::JainVazirani,
        SolverKind::PayDual,
        SolverKind::MetricBall,
        SolverKind::MetricOutliers,
        SolverKind::Auto,
    ];

    /// The canonical protocol name (`greedy`, `local-search`, `jv`,
    /// `paydual`, `metricball`, `outliers`, `auto`) — the inverse of
    /// [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Greedy => "greedy",
            SolverKind::LocalSearch => "local-search",
            SolverKind::JainVazirani => "jv",
            SolverKind::PayDual => "paydual",
            SolverKind::MetricBall => "metricball",
            SolverKind::MetricOutliers => "outliers",
            SolverKind::Auto => "auto",
        }
    }

    /// The concrete kind a request for `self` runs on `instance`: the
    /// identity for every concrete kind, and the classifier decision tree
    /// for [`SolverKind::Auto`] — never returns `Auto`.
    ///
    /// The tree (see DESIGN.md §3.7): instances the
    /// [`classify::Metricity`] verdict admits as metric route to
    /// [`SolverKind::MetricBall`] (the constant-factor specialist); the
    /// rest route by size, [`SolverKind::LocalSearch`] up to
    /// [`AUTO_LOCAL_SEARCH_LINK_LIMIT`] links and [`SolverKind::Greedy`]
    /// beyond. The classifier is a pure function of the instance, so the
    /// route — and therefore the response — is byte-deterministic.
    ///
    /// ```
    /// use distfl_core::SolverKind;
    /// use distfl_instance::generators::{Euclidean, InstanceGenerator};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let metric = Euclidean::new(5, 20)?.generate(7)?;
    /// assert_eq!(SolverKind::Auto.resolve(&metric), SolverKind::MetricBall);
    /// assert_eq!(SolverKind::Greedy.resolve(&metric), SolverKind::Greedy);
    /// # Ok(())
    /// # }
    /// ```
    pub fn resolve(self, instance: &Instance) -> SolverKind {
        match self {
            SolverKind::Auto => {
                let profile = classify::classify(instance);
                if profile.metricity.admits_metric_solver() {
                    SolverKind::MetricBall
                } else if profile.links <= AUTO_LOCAL_SEARCH_LINK_LIMIT {
                    SolverKind::LocalSearch
                } else {
                    SolverKind::Greedy
                }
            }
            concrete => concrete,
        }
    }

    /// Runs the selected solver on `instance`.
    ///
    /// `seed` drives all randomness (only [`SolverKind::PayDual`] draws
    /// any); sequential kinds accept and ignore it, so a request is one
    /// uniform triple regardless of kind.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's [`CoreError`] (e.g. invalid
    /// parameters or CONGEST model violations).
    pub fn solve(self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError> {
        match self {
            SolverKind::Greedy => StarGreedy::new().run(instance, seed),
            SolverKind::LocalSearch => {
                let (start, _alphas) = greedy::solve(instance);
                let run = localsearch::optimize(instance, &start, LOCAL_SEARCH_MAX_MOVES);
                Ok(Outcome::sequential(run.solution))
            }
            SolverKind::JainVazirani => JainVazirani::unchecked().run(instance, seed),
            SolverKind::PayDual => PayDual::new(PayDualParams::default()).run(instance, seed),
            SolverKind::MetricBall => {
                MetricBall::new(MetricBallParams::default()).run(instance, seed)
            }
            SolverKind::MetricOutliers => {
                Outliers::new(OutliersParams::default()).run(instance, seed)
            }
            SolverKind::Auto => self.resolve(instance).solve(instance, seed),
        }
    }

    /// Runs the selected solver through a [`WarmCache`] kept in sync with
    /// `instance`, producing **bit-identical** output to [`Self::solve`]
    /// on the same inputs — the property the serve layer's session cache
    /// rests on. [`SolverKind::PayDual`] has no instance-derived warm
    /// structures (its cost is the CONGEST simulation itself) and simply
    /// runs cold; it is deterministic in `(instance, seed)` either way.
    ///
    /// The portfolio kinds — [`SolverKind::MetricBall`],
    /// [`SolverKind::MetricOutliers`], and [`SolverKind::Auto`] — decline
    /// warm-start sessions with the typed
    /// [`CoreError::WarmUnsupported`] instead of silently running cold:
    /// a session exists to amortize instance-derived structures across
    /// mutations, the protocol solvers rebuild theirs per run, and `auto`
    /// could re-route mid-session (a classifier flip after a mutation),
    /// which would break the session's fixed-kind contract. Callers that
    /// want the portfolio on a mutating instance should solve cold per
    /// revision.
    ///
    /// # Errors
    ///
    /// Propagates the underlying algorithm's [`CoreError`], exactly as
    /// [`Self::solve`] does, and [`CoreError::WarmUnsupported`] for the
    /// portfolio kinds.
    pub fn solve_warm(
        self,
        instance: &Instance,
        seed: u64,
        warm: &mut WarmCache,
    ) -> Result<Outcome, CoreError> {
        match self {
            SolverKind::Greedy => {
                let run = warm.solve_greedy(instance);
                // Dual-fitting certificate, as in `StarGreedy::run`.
                let h = crate::theory::harmonic(instance.num_clients());
                let alpha: Vec<f64> = run.ratios.iter().map(|r| r / h).collect();
                Ok(Outcome {
                    solution: run.solution,
                    transcript: None,
                    dual: Some(distfl_lp::DualSolution::new(alpha)),
                    modeled_rounds: None,
                })
            }
            SolverKind::LocalSearch => {
                let run = warm.solve_local_search(instance, LOCAL_SEARCH_MAX_MOVES);
                Ok(Outcome::sequential(run.solution))
            }
            SolverKind::JainVazirani => {
                let (solution, dual) = warm.solve_jv(instance);
                Ok(Outcome { solution, transcript: None, dual: Some(dual), modeled_rounds: None })
            }
            SolverKind::PayDual => PayDual::new(PayDualParams::default()).run(instance, seed),
            SolverKind::MetricBall | SolverKind::MetricOutliers | SolverKind::Auto => {
                Err(CoreError::WarmUnsupported { kind: self.name() })
            }
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SolverKind {
    type Err = CoreError;

    /// Parses a protocol name. Accepted spellings per kind:
    /// `greedy`; `local-search` / `localsearch` / `local_search`;
    /// `jv` / `jain-vazirani`; `paydual` / `pay-dual`;
    /// `metricball` / `metric-ball` / `metric`; `outliers` / `robust`;
    /// `auto`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "greedy" => Ok(SolverKind::Greedy),
            "local-search" | "localsearch" | "local_search" => Ok(SolverKind::LocalSearch),
            "jv" | "jain-vazirani" => Ok(SolverKind::JainVazirani),
            "paydual" | "pay-dual" => Ok(SolverKind::PayDual),
            "metricball" | "metric-ball" | "metric" => Ok(SolverKind::MetricBall),
            "outliers" | "robust" => Ok(SolverKind::MetricOutliers),
            "auto" => Ok(SolverKind::Auto),
            other => Err(CoreError::InvalidParams {
                reason: format!(
                    "unknown solver '{other}' (expected greedy, local-search, jv, paydual, \
                     metricball, outliers, or auto)"
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Euclidean, InstanceGenerator, UniformRandom};

    #[test]
    fn names_round_trip_through_from_str() {
        for kind in SolverKind::ALL {
            assert_eq!(kind.name().parse::<SolverKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!("JAIN-VAZIRANI".parse::<SolverKind>().unwrap(), SolverKind::JainVazirani);
        assert_eq!(" localsearch ".parse::<SolverKind>().unwrap(), SolverKind::LocalSearch);
    }

    #[test]
    fn unknown_names_are_rejected_with_the_menu() {
        let err = "simplex".parse::<SolverKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("simplex"), "{msg}");
        assert!(msg.contains("paydual"), "{msg}");
    }

    #[test]
    fn every_kind_solves_feasibly_and_deterministically() {
        let inst = UniformRandom::new(6, 25).unwrap().generate(11).unwrap();
        for kind in SolverKind::ALL {
            let a = kind.solve(&inst, 5).unwrap();
            a.solution.check_feasible(&inst).unwrap();
            let b = kind.solve(&inst, 5).unwrap();
            assert_eq!(a.solution, b.solution, "{kind} not deterministic");
            match kind {
                SolverKind::PayDual | SolverKind::MetricBall | SolverKind::MetricOutliers => {
                    assert!(a.transcript.is_some(), "{kind} should report rounds")
                }
                // Auto routes this small non-metric instance to the
                // sequential local search, which has no transcript.
                _ => assert!(a.transcript.is_none(), "{kind} should be sequential here"),
            }
        }
    }

    #[test]
    fn auto_routes_metric_instances_to_metricball() {
        let metric = Euclidean::new(6, 24).unwrap().generate(3).unwrap();
        assert_eq!(SolverKind::Auto.resolve(&metric), SolverKind::MetricBall);
        let via_auto = SolverKind::Auto.solve(&metric, 9).unwrap();
        let direct = SolverKind::MetricBall.solve(&metric, 9).unwrap();
        assert_eq!(via_auto.solution, direct.solution, "auto must equal its route");
    }

    #[test]
    fn auto_routes_small_non_metric_instances_to_local_search() {
        let inst = UniformRandom::new(6, 25).unwrap().generate(11).unwrap();
        assert_eq!(SolverKind::Auto.resolve(&inst), SolverKind::LocalSearch);
        let via_auto = SolverKind::Auto.solve(&inst, 2).unwrap();
        let direct = SolverKind::LocalSearch.solve(&inst, 2).unwrap();
        assert_eq!(via_auto.solution, direct.solution);
    }

    #[test]
    fn resolve_never_returns_auto_and_is_identity_on_concrete_kinds() {
        let inst = UniformRandom::new(4, 12).unwrap().generate(0).unwrap();
        for kind in SolverKind::ALL {
            let resolved = kind.resolve(&inst);
            assert_ne!(resolved, SolverKind::Auto);
            if kind != SolverKind::Auto {
                assert_eq!(resolved, kind);
            }
        }
    }

    #[test]
    fn portfolio_kinds_decline_warm_sessions_with_a_typed_error() {
        let inst = UniformRandom::new(4, 12).unwrap().generate(0).unwrap();
        for kind in [SolverKind::MetricBall, SolverKind::MetricOutliers, SolverKind::Auto] {
            let mut warm = WarmCache::new(&inst);
            match kind.solve_warm(&inst, 1, &mut warm) {
                Err(CoreError::WarmUnsupported { kind: name }) => assert_eq!(name, kind.name()),
                other => panic!("{kind} should decline warm sessions, got {other:?}"),
            }
        }
    }

    #[test]
    fn local_search_never_loses_to_its_greedy_start() {
        let inst = UniformRandom::new(8, 40).unwrap().generate(3).unwrap();
        let g = SolverKind::Greedy.solve(&inst, 0).unwrap();
        let ls = SolverKind::LocalSearch.solve(&inst, 0).unwrap();
        assert!(
            ls.solution.cost(&inst).value() <= g.solution.cost(&inst).value() + 1e-9,
            "local search worse than its start"
        );
    }
}
