//! Error type for algorithm execution.

use std::fmt;

use distfl_congest::CongestError;
use distfl_instance::InstanceError;

/// Errors produced while running a facility-location algorithm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The underlying CONGEST simulation failed.
    Congest(CongestError),
    /// The produced solution was rejected by the instance (a bug guard —
    /// algorithms validate their own output).
    Instance(InstanceError),
    /// An algorithm was configured with invalid parameters.
    InvalidParams {
        /// Human-readable reason.
        reason: String,
    },
    /// An algorithm requires a metric instance but the input is not metric.
    RequiresMetric {
        /// The measured metricity defect.
        defect: f64,
    },
    /// The requested solver kind has no warm-start path: sessions must
    /// fall back to a supported kind or a cold solve. This is the typed
    /// boundary the portfolio kinds (`metricball`, `outliers`, `auto`)
    /// present to the serve layer's session verbs.
    WarmUnsupported {
        /// Protocol name of the declined solver kind.
        kind: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Congest(e) => write!(f, "congest simulation failed: {e}"),
            CoreError::Instance(e) => write!(f, "instance rejected solution: {e}"),
            CoreError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            CoreError::RequiresMetric { defect } => {
                write!(f, "algorithm requires a metric instance (defect {defect})")
            }
            CoreError::WarmUnsupported { kind } => {
                write!(f, "solver '{kind}' does not support warm-start sessions")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Congest(e) => Some(e),
            CoreError::Instance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CongestError> for CoreError {
    fn from(e: CongestError) -> Self {
        CoreError::Congest(e)
    }
}

impl From<InstanceError> for CoreError {
    fn from(e: InstanceError) -> Self {
        CoreError::Instance(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = CongestError::RoundLimit { limit: 3, pending: 1 }.into();
        assert!(e.to_string().contains("round limit"));
        let e: CoreError = InstanceError::NoClients.into();
        assert!(e.to_string().contains("no clients"));
        let e = CoreError::InvalidParams { reason: "phases = 0".into() };
        assert!(e.to_string().contains("phases"));
        let e = CoreError::RequiresMetric { defect: 3.0 };
        assert!(e.to_string().contains("metric"));
        let e = CoreError::WarmUnsupported { kind: "metricball" };
        assert!(e.to_string().contains("warm-start"));
        assert!(e.to_string().contains("metricball"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error as _;
        let e: CoreError = CongestError::RoundLimit { limit: 3, pending: 1 }.into();
        assert!(e.source().is_some());
        let e = CoreError::InvalidParams { reason: "x".into() };
        assert!(e.source().is_none());
    }
}
