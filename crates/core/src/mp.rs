//! Mettu–Plaxton radius-based 3-approximation (metric baseline).
//!
//! For each facility compute its *radius* `r_i` — the value solving
//! `Σ_j max(0, r_i − c_ij) = f_i` — then sweep facilities by increasing
//! radius, opening one unless an already-open facility lies within
//! distance `2·r_i` (facility–facility distance through a common client:
//! `d(i, i') = min_j (c_ij + c_i'j)`). Clients connect to the nearest open
//! facility. On metric instances the result costs at most `3·OPT`; this is
//! the simplest constant-factor baseline and needs only
//! near-linear sequential time.

use distfl_instance::{FacilityId, Instance, Solution};

use crate::error::CoreError;
use crate::runner::{FlAlgorithm, Outcome};

/// The Mettu–Plaxton baseline.
///
/// Requires a complete metric instance; [`FlAlgorithm::run`] rejects inputs
/// whose metricity defect exceeds `tolerance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MettuPlaxton {
    /// Additive tolerance for the metricity check (`f64::INFINITY` skips
    /// the check).
    pub tolerance: f64,
}

impl MettuPlaxton {
    /// A baseline with the default metricity tolerance (`1e-6`).
    pub fn new() -> Self {
        MettuPlaxton { tolerance: 1e-6 }
    }

    /// Skips the (quadratic) metricity validation — for callers that know
    /// their instances are metric.
    pub fn unchecked() -> Self {
        MettuPlaxton { tolerance: f64::INFINITY }
    }
}

impl Default for MettuPlaxton {
    fn default() -> Self {
        MettuPlaxton::new()
    }
}

/// The Mettu–Plaxton radius of facility `i`: the `r` solving
/// `Σ_j max(0, r − c_ij) = f_i` over `i`'s links.
pub fn radius(instance: &Instance, i: FacilityId) -> f64 {
    let f = instance.opening_cost(i).value();
    if f == 0.0 {
        return 0.0;
    }
    let mut costs: Vec<f64> = instance.facility_links(i).costs.to_vec();
    costs.sort_by(f64::total_cmp);
    let mut prefix = 0.0;
    for (k, &c) in costs.iter().enumerate() {
        // Candidate with the first k+1 clients paying: r = (f + prefix)/k+1.
        prefix += c;
        let r = (f + prefix) / (k + 1) as f64;
        let next = costs.get(k + 1).copied().unwrap_or(f64::INFINITY);
        if c <= r && r <= next {
            return r;
        }
    }
    // Unreachable for positive f with at least one link, kept as a guard.
    f
}

/// Facility–facility distance through the cheapest common client.
fn facility_distance(instance: &Instance, a: FacilityId, b: FacilityId) -> f64 {
    let links_b = instance.facility_links(b);
    let mut best = f64::INFINITY;
    let mut idx_b = 0;
    for (j, ca) in instance.facility_links(a).iter() {
        // Advance the second (also client-sorted) id lane to j.
        while idx_b < links_b.len() && links_b.ids[idx_b] < j {
            idx_b += 1;
        }
        if idx_b < links_b.len() && links_b.ids[idx_b] == j {
            best = best.min(ca + links_b.costs[idx_b]);
        }
    }
    best
}

/// Runs Mettu–Plaxton without the metricity check.
pub fn solve(instance: &Instance) -> Solution {
    let mut order: Vec<(f64, FacilityId)> =
        instance.facilities().map(|i| (radius(instance, i), i)).collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut open: Vec<FacilityId> = Vec::new();
    for &(r, i) in &order {
        let blocked = open.iter().any(|&o| facility_distance(instance, i, o) <= 2.0 * r);
        if !blocked {
            open.push(i);
        }
    }

    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            // First-win strict `<` over the id-sorted row = the
            // `(cost, facility id)`-lexicographic minimum.
            let mut best: Option<(u32, f64)> = None;
            for (i, c) in instance.client_links(j).iter() {
                if open.contains(&FacilityId::new(i)) && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((i, c));
                }
            }
            match best {
                Some((i, _)) => FacilityId::new(i),
                // Sparse instances may leave a client without an open linked
                // facility; fall back to its cheapest bundle.
                None => instance
                    .client_links(j)
                    .iter()
                    .map(|(i, c)| {
                        let i = FacilityId::new(i);
                        (i, c + instance.opening_cost(i).value())
                    })
                    .min_by(|(fa, ca), (fb, cb)| ca.total_cmp(cb).then(fa.cmp(fb)))
                    .map(|(i, _)| i)
                    .expect("instance invariant: every client has a link"),
            }
        })
        .collect();
    Solution::from_assignment(instance, assignment).expect("assignment uses existing links")
}

impl FlAlgorithm for MettuPlaxton {
    fn name(&self) -> String {
        "mettu-plaxton".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        if self.tolerance.is_finite() {
            let defect = distfl_instance::metric::metricity_defect(instance);
            if defect > self.tolerance {
                return Err(CoreError::RequiresMetric { defect });
            }
        }
        Ok(Outcome::sequential(solve(instance)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Clustered, Euclidean, InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};
    use distfl_lp::exact;

    #[test]
    fn radius_solves_the_waterfill_equation() {
        // f = 6, clients at costs 1, 3, 5: with r between 3 and 5 two
        // clients pay: 2r - 4 = 6 -> r = 5. Boundary case: third client
        // also enters exactly at 5: 3r - 9 = 6 -> r = 5 as well.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(6.0).unwrap());
        for c in [1.0, 3.0, 5.0] {
            let j = b.add_client();
            b.link(j, f, Cost::new(c).unwrap()).unwrap();
        }
        let inst = b.build().unwrap();
        let r = radius(&inst, f);
        assert!((r - 5.0).abs() < 1e-12, "radius {r}");
        // Check it satisfies the defining equation.
        let paid: f64 = [1.0f64, 3.0, 5.0].iter().map(|c| (r - c).max(0.0)).sum();
        assert!((paid - 6.0).abs() < 1e-9);
    }

    #[test]
    fn zero_opening_cost_means_zero_radius() {
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::ZERO);
        let j = b.add_client();
        b.link(j, f, Cost::new(2.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(radius(&inst, f), 0.0);
    }

    #[test]
    fn within_three_opt_on_metric_instances() {
        for seed in 0..6 {
            let inst = Euclidean::new(8, 24).unwrap().generate(seed).unwrap();
            let sol = solve(&inst);
            sol.check_feasible(&inst).unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "seed {seed}: MP ratio {ratio} above 3");
        }
        for seed in 0..4 {
            let inst = Clustered::new(3, 7, 21).unwrap().generate(seed).unwrap();
            let sol = solve(&inst);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "clustered seed {seed}: ratio {ratio}");
        }
    }

    #[test]
    fn rejects_non_metric_inputs() {
        let inst = UniformRandom::new(5, 15).unwrap().generate(0).unwrap();
        let err = MettuPlaxton::new().run(&inst, 0).unwrap_err();
        assert!(matches!(err, CoreError::RequiresMetric { .. }));
        // Unchecked mode still produces something feasible.
        let out = MettuPlaxton::unchecked().run(&inst, 0).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }

    #[test]
    fn facility_distance_uses_cheapest_common_client() {
        let mut b = InstanceBuilder::new();
        let fa = b.add_facility(Cost::new(1.0).unwrap());
        let fb = b.add_facility(Cost::new(1.0).unwrap());
        let j0 = b.add_client();
        let j1 = b.add_client();
        b.link(j0, fa, Cost::new(5.0).unwrap()).unwrap();
        b.link(j0, fb, Cost::new(1.0).unwrap()).unwrap();
        b.link(j1, fa, Cost::new(2.0).unwrap()).unwrap();
        b.link(j1, fb, Cost::new(2.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        assert_eq!(facility_distance(&inst, fa, fb), 4.0);
    }
}
