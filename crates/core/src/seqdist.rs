//! The straw-man, **actually implemented**: sequential greedy simulated
//! faithfully in the CONGEST model.
//!
//! [`crate::seqsim`] *models* the straw-man's round count; this module
//! *executes* it, so experiment E2's "rounds grow with the input" side is
//! a measurement, not a model. The protocol:
//!
//! 1. **Tree phase.** Build a BFS tree from node 0 (`Grow`/`ChildOf`
//!    adoption handshake, as in [`distfl_congest::bfs`]).
//! 2. **Greedy cycles**, each one star of the sequential greedy:
//!    * **Select** — convergecast the minimum `(star ratio, facility id)`
//!      up the tree; the root broadcasts the winner (or `stop` when every
//!      facility reports "no unserved clients").
//!    * **Serve & refresh** — a two-round, per-edge handshake: every
//!      facility messages each linked client (`serve` from the winner's
//!      star, `pass` otherwise) and every client replies with its served
//!      status. After the handshake each facility's view of its unserved
//!      neighborhood is exactly current, so the next cycle's ratios are
//!      correct — this is the synchronization the model charges as
//!      "2·depth + 2 per iteration", and it is why the straw-man cannot
//!      be local: every star costs tree waves across the whole graph.
//!
//! The output is bit-identical to [`crate::greedy`] (same ratios, same
//! tie-breaks) — asserted in the tests — while the transcript shows the
//! input-dependent round count the PODC 2005 algorithm eliminates.

use distfl_congest::{CongestConfig, Network, NodeId, NodeLogic, Payload, StepCtx, Transcript};
use distfl_instance::{ClientId, FacilityId, Instance, Solution};

use crate::error::CoreError;
use crate::model::{client_node, facility_node, node_role, topology_of, Role};
use crate::runner::{FlAlgorithm, Outcome};

/// Sentinel facility id for "no candidate".
const NONE_FID: u32 = u32::MAX;

/// Messages of the faithful straw-man protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeqMsg {
    /// Tree wave.
    Grow,
    /// Adoption confirmation.
    ChildOf,
    /// Upward select wave: best `(ratio, facility)` in the subtree.
    Up {
        /// Greedy cycle number.
        cycle: u32,
        /// Best star ratio in the subtree (`INFINITY` = none).
        ratio: f64,
        /// Facility achieving it (`NONE_FID` = none).
        fid: u32,
    },
    /// Downward winner broadcast.
    Down {
        /// Greedy cycle number.
        cycle: u32,
        /// Winning facility (`NONE_FID` with `stop`).
        fid: u32,
        /// Whether the greedy is finished.
        stop: bool,
    },
    /// Facility → client handshake: `serve` iff the client is in the
    /// winner's star this cycle.
    Offer {
        /// Greedy cycle number.
        cycle: u32,
        /// Whether this client is being served now.
        serve: bool,
    },
    /// Combined `Down` + `Offer` for a facility's tree-children clients
    /// (one message per edge per round).
    DownOffer {
        /// Greedy cycle number.
        cycle: u32,
        /// Winning facility.
        fid: u32,
        /// Whether this client is being served now.
        serve: bool,
    },
    /// Client → facility handshake reply: current served status.
    Status {
        /// Greedy cycle number.
        cycle: u32,
        /// Whether the client is (now) served.
        served: bool,
    },
}

impl Payload for SeqMsg {
    fn size_bits(&self) -> u64 {
        match self {
            SeqMsg::Grow | SeqMsg::ChildOf => 8,
            SeqMsg::Offer { .. } | SeqMsg::Status { .. } => 48,
            SeqMsg::Up { .. } | SeqMsg::Down { .. } | SeqMsg::DownOffer { .. } => 136,
        }
    }

    /// Canonical wire encoding: one tag byte, then the variant's fields in
    /// declaration order, big-endian, booleans as one byte — within the
    /// [`SeqMsg::size_bits`] budget (the 136-bit class is sized for its
    /// largest member, `Up`; `Down`/`DownOffer` encode smaller). Used by
    /// the wire-format test to keep the declared sizes honest.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(17);
        match self {
            SeqMsg::Grow => b.put_u8(0),
            SeqMsg::ChildOf => b.put_u8(1),
            SeqMsg::Up { cycle, ratio, fid } => {
                b.put_u8(2);
                b.put_u32(*cycle);
                b.put_f64(*ratio);
                b.put_u32(*fid);
            }
            SeqMsg::Down { cycle, fid, stop } => {
                b.put_u8(3);
                b.put_u32(*cycle);
                b.put_u32(*fid);
                b.put_u8(u8::from(*stop));
            }
            SeqMsg::Offer { cycle, serve } => {
                b.put_u8(4);
                b.put_u32(*cycle);
                b.put_u8(u8::from(*serve));
            }
            SeqMsg::DownOffer { cycle, fid, serve } => {
                b.put_u8(5);
                b.put_u32(*cycle);
                b.put_u32(*fid);
                b.put_u8(u8::from(*serve));
            }
            SeqMsg::Status { cycle, served } => {
                b.put_u8(6);
                b.put_u32(*cycle);
                b.put_u8(u8::from(*served));
            }
        }
        b.freeze()
    }
}

/// Shared tree/wave state of both roles.
#[derive(Debug, Clone)]
struct WaveState {
    is_root: bool,
    joined: bool,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    answered: usize,
    answered_target: usize,
    /// Current greedy cycle.
    cycle: u32,
    /// Children's reports collected for the current cycle.
    children_reported: usize,
    /// Aggregated best of the subtree (children + self).
    best: (f64, u32),
    /// Whether this node's local state is current for `cycle` (handshake
    /// of the previous cycle complete).
    state_current: bool,
    up_sent: bool,
    done: bool,
}

impl WaveState {
    fn new(is_root: bool) -> Self {
        WaveState {
            is_root,
            joined: false,
            parent: None,
            children: Vec::new(),
            answered: 0,
            answered_target: usize::MAX,
            cycle: 0,
            children_reported: 0,
            best: (f64::INFINITY, NONE_FID),
            state_current: true,
            up_sent: false,
            done: false,
        }
    }

    fn tree_ready(&self) -> bool {
        self.joined && self.answered == self.answered_target
    }

    /// Handles tree-building messages; returns true if the node joined
    /// this step (and must flood `Grow`).
    fn absorb_tree_msgs(&mut self, ctx: &StepCtx<'_, SeqMsg>) -> bool {
        if self.joined {
            for &(src, msg) in ctx.inbox() {
                match msg {
                    SeqMsg::ChildOf => {
                        self.children.push(src);
                        self.answered += 1;
                    }
                    SeqMsg::Grow => self.answered += 1,
                    _ => {}
                }
            }
            return false;
        }
        if self.is_root {
            self.joined = true;
            self.answered_target = ctx.degree();
            return true;
        }
        let grow_from: Option<NodeId> = ctx
            .inbox()
            .iter()
            .filter(|(_, m)| matches!(m, SeqMsg::Grow))
            .map(|&(src, _)| src)
            .min();
        if let Some(parent) = grow_from {
            self.joined = true;
            self.parent = Some(parent);
            self.answered_target = ctx.degree() - 1;
            self.answered += ctx
                .inbox()
                .iter()
                .filter(|(src, m)| matches!(m, SeqMsg::Grow) && *src != parent)
                .count();
            return true;
        }
        false
    }

    /// Joins `Up` reports of the current cycle into the aggregate.
    fn absorb_up(&mut self, cycle: u32, ratio: f64, fid: u32) {
        debug_assert_eq!(cycle, self.cycle, "wave discipline violated");
        self.children_reported += 1;
        if (ratio, fid) < self.best {
            self.best = (ratio, fid);
        }
    }

    /// Whether the subtree aggregate is complete and can go up.
    fn ready_to_up(&self) -> bool {
        self.tree_ready()
            && self.state_current
            && !self.up_sent
            && self.children_reported == self.children.len()
    }

    /// Resets per-cycle wave state for the next cycle.
    fn next_cycle(&mut self) {
        self.cycle += 1;
        self.children_reported = 0;
        self.best = (f64::INFINITY, NONE_FID);
        self.state_current = false;
        self.up_sent = false;
    }
}

/// Facility node.
#[derive(Debug, Clone)]
pub struct SeqFacility {
    wave: WaveState,
    my_id: u32,
    opening: f64,
    links: Vec<(NodeId, f64)>,
    unserved: Vec<bool>,
    open: bool,
    /// Clients in this cycle's winning star (only set on the winner).
    pending_star: Vec<usize>,
    /// Whether the Offer handshake for the current cycle has been sent.
    offers_sent: bool,
    replies: usize,
}

/// Client node.
#[derive(Debug, Clone)]
pub struct SeqClient {
    wave: WaveState,
    links: Vec<(NodeId, f64)>,
    assigned: Option<usize>,
    offers: usize,
    serve_from: Option<usize>,
    replied: bool,
}

/// One node of the protocol.
#[derive(Debug, Clone)]
pub enum SeqNode {
    /// Facility role.
    Facility(SeqFacility),
    /// Client role.
    Client(SeqClient),
}

impl SeqFacility {
    /// This facility's current best star: `(ratio, member link indexes)`.
    fn best_star(&self) -> Option<(f64, Vec<usize>)> {
        let residual = if self.open { 0.0 } else { self.opening };
        let mut costs: Vec<(f64, usize)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(idx, _)| self.unserved[*idx])
            .map(|(idx, &(_, c))| (c, idx))
            .collect();
        if costs.is_empty() {
            return None;
        }
        costs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut best = f64::INFINITY;
        let mut best_k = 0;
        let mut prefix = 0.0;
        for (k, (c, _)) in costs.iter().enumerate() {
            prefix += c;
            let ratio = (residual + prefix) / (k + 1) as f64;
            if ratio < best {
                best = ratio;
                best_k = k + 1;
            }
        }
        Some((best, costs[..best_k].iter().map(|&(_, idx)| idx).collect()))
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, SeqMsg>) {
        if self.wave.absorb_tree_msgs(ctx) {
            // Just joined: flood the tree wave.
            for &nb in ctx.neighbors() {
                let msg = if Some(nb) == self.wave.parent { SeqMsg::ChildOf } else { SeqMsg::Grow };
                ctx.send(nb, msg).expect("neighbors are valid");
            }
            return;
        }
        for &(src, msg) in ctx.inbox() {
            match msg {
                SeqMsg::Up { cycle, ratio, fid } => self.wave.absorb_up(cycle, ratio, fid),
                SeqMsg::Down { cycle, fid, stop } => {
                    self.handle_down(ctx, cycle, fid, stop);
                }
                SeqMsg::Status { cycle, served } => {
                    debug_assert_eq!(cycle, self.wave.cycle - 1, "stale status");
                    let idx = self
                        .links
                        .binary_search_by_key(&src, |(id, _)| *id)
                        .expect("replies arrive over links");
                    self.unserved[idx] = !served;
                    self.replies += 1;
                    if self.replies == self.links.len() {
                        self.wave.state_current = true;
                    }
                }
                _ => {}
            }
        }
        if self.wave.ready_to_up() {
            let mut best = self.wave.best;
            if let Some((ratio, _)) = self.best_star() {
                if (ratio, self.my_id) < best {
                    best = (ratio, self.my_id);
                }
            }
            self.emit_up_or_decide(ctx, best);
        }
    }

    fn handle_down(&mut self, ctx: &mut StepCtx<'_, SeqMsg>, cycle: u32, fid: u32, stop: bool) {
        debug_assert_eq!(cycle, self.wave.cycle, "down wave out of order");
        if stop {
            for &child in &self.wave.children.clone() {
                ctx.send(child, SeqMsg::Down { cycle, fid, stop }).expect("children are neighbors");
            }
            self.wave.done = true;
            return;
        }
        // Non-stop Down forwarding is folded into the handshake below
        // (every child of a facility is one of its linked clients).
        // Start the handshake: offers to every linked client, combined
        // with the Down forward for tree children (one message per edge).
        let star: Vec<usize> = if fid == self.my_id {
            let (_, star) = self.best_star().expect("winner has a star");
            self.open = true;
            star
        } else {
            Vec::new()
        };
        self.pending_star = star;
        for (idx, &(client, _)) in self.links.iter().enumerate() {
            let serve = self.pending_star.contains(&idx);
            let msg = if self.wave.children.contains(&client) {
                SeqMsg::DownOffer { cycle, fid, serve }
            } else {
                SeqMsg::Offer { cycle, serve }
            };
            ctx.send(client, msg).expect("links are neighbors");
        }
        self.offers_sent = true;
        self.replies = 0;
        self.wave.next_cycle();
        // Degenerate case: a facility with no links is immediately current
        // (cannot occur on connected topologies, kept for safety).
        if self.links.is_empty() {
            self.wave.state_current = true;
        }
    }

    fn emit_up_or_decide(&mut self, ctx: &mut StepCtx<'_, SeqMsg>, best: (f64, u32)) {
        self.wave.up_sent = true;
        let cycle = self.wave.cycle;
        if self.wave.is_root {
            let stop = best.1 == NONE_FID;
            self.handle_down(ctx, cycle, best.1, stop);
        } else {
            let parent = self.wave.parent.expect("non-root has a parent");
            ctx.send(parent, SeqMsg::Up { cycle, ratio: best.0, fid: best.1 })
                .expect("parent is a neighbor");
        }
    }
}

impl SeqClient {
    fn step(&mut self, ctx: &mut StepCtx<'_, SeqMsg>) {
        if self.wave.absorb_tree_msgs(ctx) {
            for &nb in ctx.neighbors() {
                let msg = if Some(nb) == self.wave.parent { SeqMsg::ChildOf } else { SeqMsg::Grow };
                ctx.send(nb, msg).expect("neighbors are valid");
            }
            return;
        }
        // Pass 1: waves (a Down and an Offer can share an inbox; the Down
        // must advance the cycle before its offers are counted).
        let mut forwarded_down = false;
        for &(_, msg) in ctx.inbox() {
            match msg {
                SeqMsg::Up { cycle, ratio, fid } => self.wave.absorb_up(cycle, ratio, fid),
                SeqMsg::Down { cycle, fid, stop: _ }
                | SeqMsg::DownOffer { cycle, fid, serve: _ } => {
                    let stop = matches!(msg, SeqMsg::Down { stop: true, .. });
                    debug_assert_eq!(cycle, self.wave.cycle, "down wave out of order");
                    for &child in &self.wave.children.clone() {
                        ctx.send(child, SeqMsg::Down { cycle, fid, stop })
                            .expect("children are neighbors");
                    }
                    if stop {
                        self.wave.done = true;
                    } else {
                        self.wave.next_cycle();
                        self.offers = 0;
                        self.serve_from = None;
                        self.replied = false;
                    }
                    forwarded_down = true;
                }
                _ => {}
            }
        }
        // Pass 2: handshake offers of the (now-current) cycle.
        for &(src, msg) in ctx.inbox() {
            let (cycle, serve) = match msg {
                SeqMsg::Offer { cycle, serve } => (cycle, serve),
                SeqMsg::DownOffer { cycle, serve, .. } => (cycle, serve),
                _ => continue,
            };
            debug_assert_eq!(cycle, self.wave.cycle - 1, "stale offer");
            let _ = cycle;
            let idx = self
                .links
                .binary_search_by_key(&src, |(id, _)| *id)
                .expect("offers arrive over links");
            if serve {
                debug_assert!(self.serve_from.is_none(), "two winners in one cycle");
                self.serve_from = Some(idx);
            }
            self.offers += 1;
        }
        // A step that forwarded a Down already used this node's tree edges;
        // replies and reports wait for the next step (one message per edge
        // per round).
        if forwarded_down {
            return;
        }
        // Once every linked facility has made its offer, accept and reply.
        if !self.replied && self.wave.cycle > 0 && self.offers == self.links.len() {
            if let Some(idx) = self.serve_from {
                if self.assigned.is_none() {
                    self.assigned = Some(idx);
                }
            }
            let cycle = self.wave.cycle - 1;
            let served = self.assigned.is_some();
            for &(facility, _) in &self.links {
                ctx.send(facility, SeqMsg::Status { cycle, served }).expect("links are neighbors");
            }
            self.replied = true;
            self.wave.state_current = true;
            // The Status replies used every incident edge; the Up report
            // goes out next step.
            return;
        }
        if self.wave.ready_to_up() {
            self.wave.up_sent = true;
            let (ratio, fid) = self.wave.best;
            if self.wave.is_root {
                // A client root decides exactly like a facility root.
                let stop = fid == NONE_FID;
                for &child in &self.wave.children.clone() {
                    ctx.send(child, SeqMsg::Down { cycle: self.wave.cycle, fid, stop })
                        .expect("children are neighbors");
                }
                if stop {
                    self.wave.done = true;
                } else {
                    self.wave.next_cycle();
                    self.offers = 0;
                    self.serve_from = None;
                    self.replied = false;
                }
            } else {
                let parent = self.wave.parent.expect("non-root has a parent");
                ctx.send(parent, SeqMsg::Up { cycle: self.wave.cycle, ratio, fid })
                    .expect("parent is a neighbor");
            }
        }
    }
}

impl NodeLogic for SeqNode {
    type Msg = SeqMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, SeqMsg>) {
        match self {
            SeqNode::Facility(f) => f.step(ctx),
            SeqNode::Client(c) => c.step(ctx),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            SeqNode::Facility(f) => f.wave.done,
            SeqNode::Client(c) => c.wave.done,
        }
    }
}

/// The faithful CONGEST implementation of the sequential-greedy straw-man.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistSeqGreedy;

impl DistSeqGreedy {
    /// Creates the algorithm.
    pub fn new() -> Self {
        DistSeqGreedy
    }
}

/// Runs the protocol, returning the solution and transcript.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] on disconnected communication
/// graphs (tree waves need connectivity) and propagates simulation errors.
pub fn run_protocol(instance: &Instance) -> Result<(Solution, Transcript), CoreError> {
    let topology = topology_of(instance)?;
    if !topology.is_connected() {
        return Err(CoreError::InvalidParams {
            reason: "the straw-man needs a connected communication graph".to_owned(),
        });
    }
    let m = instance.num_facilities();
    let mut nodes = Vec::with_capacity(m + instance.num_clients());
    for i in instance.facilities() {
        let links: Vec<(NodeId, f64)> = instance
            .facility_links(i)
            .iter()
            .map(|(j, c)| (client_node(m, ClientId::new(j)), c))
            .collect();
        let degree = links.len();
        nodes.push(SeqNode::Facility(SeqFacility {
            wave: WaveState::new(i.raw() == 0),
            my_id: i.raw(),
            opening: instance.opening_cost(i).value(),
            links,
            unserved: vec![true; degree],
            open: false,
            pending_star: Vec::new(),
            offers_sent: false,
            replies: 0,
        }));
    }
    for j in instance.clients() {
        let links: Vec<(NodeId, f64)> = instance
            .client_links(j)
            .iter()
            .map(|(i, c)| (facility_node(FacilityId::new(i)), c))
            .collect();
        nodes.push(SeqNode::Client(SeqClient {
            wave: WaveState::new(false),
            links,
            assigned: None,
            offers: 0,
            serve_from: None,
            replied: false,
        }));
    }
    let n_total = (m + instance.num_clients()) as u32;
    let mut net = Network::with_config(topology, nodes, 0, CongestConfig::default())?;
    // Every greedy iteration costs at most ~4 tree depths + 4 rounds, and
    // there are at most n iterations plus the tree phase.
    let limit = (instance.num_clients() as u32 + 2) * (4 * n_total + 8) + 4 * n_total + 16;
    net.run(limit)?;

    let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
    for (index, node) in net.nodes().iter().enumerate() {
        if let (Role::Client(j), SeqNode::Client(c)) =
            (node_role(m, NodeId::new(index as u32)), node)
        {
            let idx = c.assigned.expect("greedy serves every client before stopping");
            assignment[j.index()] = FacilityId::new(c.links[idx].0.raw());
        }
    }
    let solution = Solution::from_assignment(instance, assignment)?;
    Ok((solution, net.into_transcript()))
}

impl FlAlgorithm for DistSeqGreedy {
    fn name(&self) -> String {
        "seq-greedy-real".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        let (solution, transcript) = run_protocol(instance)?;
        Ok(Outcome { solution, transcript: Some(transcript), dual: None, modeled_rounds: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use distfl_instance::generators::{
        AdversarialGreedy, Euclidean, InstanceGenerator, UniformRandom,
    };

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [
            SeqMsg::Grow,
            SeqMsg::ChildOf,
            SeqMsg::Up { cycle: 3, ratio: 1.5, fid: 7 },
            SeqMsg::Down { cycle: 3, fid: 7, stop: false },
            SeqMsg::Offer { cycle: 3, serve: true },
            SeqMsg::DownOffer { cycle: 3, fid: 7, serve: true },
            SeqMsg::Status { cycle: 3, served: true },
        ];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        // Same field values, different tags: encodings must differ.
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 7);
        // The ratio round-trips through the big-endian bytes after the
        // tag byte and the 32-bit cycle.
        let enc = SeqMsg::Up { cycle: 1, ratio: 42.25, fid: 2 }.encode();
        assert_eq!(f64::from_be_bytes(enc[5..13].try_into().unwrap()), 42.25);
    }

    #[test]
    fn matches_sequential_greedy_exactly() {
        for seed in 0..5 {
            let inst = UniformRandom::new(5, 15).unwrap().generate(seed).unwrap();
            let (expected, _) = greedy::solve(&inst);
            let (got, _) = run_protocol(&inst).unwrap();
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn matches_on_the_adversarial_family() {
        let inst = AdversarialGreedy::new(8).unwrap().generate(0).unwrap();
        let (expected, _) = greedy::solve(&inst);
        let (got, _) = run_protocol(&inst).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn rounds_grow_with_the_instance() {
        let small = UniformRandom::new(4, 10).unwrap().generate(1).unwrap();
        let large = UniformRandom::new(10, 60).unwrap().generate(1).unwrap();
        let (_, t_small) = run_protocol(&small).unwrap();
        let (_, t_large) = run_protocol(&large).unwrap();
        assert!(
            t_large.num_rounds() > t_small.num_rounds(),
            "rounds: {} vs {}",
            t_small.num_rounds(),
            t_large.num_rounds()
        );
    }

    #[test]
    fn congest_discipline_holds() {
        let inst = Euclidean::new(6, 20).unwrap().generate(2).unwrap();
        let (_, t) = run_protocol(&inst).unwrap();
        assert!(t.congest_compliant(136));
        assert_eq!(t.max_messages_per_edge(), 1);
    }

    #[test]
    fn modeled_rounds_are_in_the_right_ballpark() {
        // The seqsim model should agree with the measurement within a
        // small constant factor.
        let inst = UniformRandom::new(8, 40).unwrap().generate(3).unwrap();
        let (_, t) = run_protocol(&inst).unwrap();
        let modeled =
            crate::seqsim::SimulatedSeqGreedy::new().run(&inst, 0).unwrap().modeled_rounds.unwrap();
        let measured = t.num_rounds();
        let factor = f64::from(measured) / f64::from(modeled);
        assert!(
            (0.3..6.0).contains(&factor),
            "model {modeled} vs measured {measured} (factor {factor})"
        );
    }
}
