//! Jain–Vazirani primal–dual 3-approximation (metric baseline).
//!
//! Phase 1 is a continuous dual ascent, simulated exactly with a discrete
//! event loop: all unconnected clients raise `α_j` at unit rate; a client
//! tight with a facility (`α_j ≥ c_ij`) contributes `α_j − c_ij` toward its
//! opening cost; a fully-paid facility opens *temporarily* and absorbs its
//! tight clients (and any client that becomes tight with it later). Phase 2
//! prunes: temporarily-open facilities conflict when a common client
//! contributes positively to both; a greedy (by opening time) maximal
//! independent set of the conflict graph is opened permanently, and clients
//! connect to the nearest permanently open facility — at most `3·α_j` away
//! in a metric, giving the 3-approximation.
//!
//! PayDual is the CONGEST-compressed cousin of phase 1; this sequential
//! implementation is both a quality baseline on metric inputs and a source
//! of *feasible* dual solutions (its `α/3` is always dual-feasible up to
//! the contributor sets, and the raw `α` is scaled by the measured
//! feasibility factor before being used as a bound).

use distfl_instance::{kernels, ClientId, FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::runner::{FlAlgorithm, Outcome};

/// The Jain–Vazirani baseline.
///
/// Requires a complete metric instance for its guarantee; the metricity
/// check can be skipped with [`JainVazirani::unchecked`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JainVazirani {
    /// Additive tolerance for the metricity check (`f64::INFINITY` skips
    /// it).
    pub tolerance: f64,
}

impl JainVazirani {
    /// A baseline with the default metricity tolerance (`1e-6`).
    pub fn new() -> Self {
        JainVazirani { tolerance: 1e-6 }
    }

    /// Skips the (quadratic) metricity validation.
    pub fn unchecked() -> Self {
        JainVazirani { tolerance: f64::INFINITY }
    }
}

impl Default for JainVazirani {
    fn default() -> Self {
        JainVazirani::new()
    }
}

/// Result of the exact phase-1 dual ascent.
#[derive(Debug, Clone)]
pub struct DualAscent {
    /// Final dual value per client (its connection time).
    pub alpha: Vec<f64>,
    /// Temporarily open facilities in opening order.
    pub temp_open: Vec<FacilityId>,
}

/// The exact facility event threshold, replicating the reference scan
/// bit-for-bit: the time at which `i` becomes fully paid (`t` itself if it
/// already is), or `None` if no active client is paying toward it.
fn exact_facility_event(
    links: &[(u32, f64)],
    f: f64,
    t: f64,
    paid0: f64,
    connected: &[bool],
) -> Option<f64> {
    let mut paid = paid0;
    let mut rate = 0u32;
    // The sum is a serial dependency chain, so the scan stays branchy: a
    // mostly-untight row costs one predictable compare per link instead
    // of a latency-bound `+0.0` per link. The row comes from the ascent's
    // interleaved scratch copy of the facility adjacency (see
    // `interleave_facility_links`): this gather-free single-stream scan is
    // the one place the split instance lanes lose to `(id, cost)` pairs.
    for &(j, c) in links {
        if !connected[j as usize] && c <= t {
            paid += t - c;
            rate += 1;
        }
    }
    if paid >= f {
        Some(t)
    } else if rate > 0 {
        Some(t + (f - paid) / f64::from(rate))
    } else {
        None
    }
}

/// The exact payment toward `i` at time `t`, replicating the reference
/// open-pass scan bit-for-bit.
fn exact_paid(links: &[(u32, f64)], t: f64, paid0: f64, connected: &[bool]) -> f64 {
    let mut paid = paid0;
    for &(j, c) in links {
        if !connected[j as usize] && c <= t {
            paid += t - c;
        }
    }
    paid
}

/// Flattens the facility adjacency back into interleaved `(client, cost)`
/// rows, offset-indexed by facility. Both ascent variants scan these rows
/// in [`exact_facility_event`] / [`exact_paid`], so the fast path and the
/// reference perform identical operations in identical order.
fn interleave_facility_links(instance: &Instance) -> (Vec<u32>, Vec<(u32, f64)>) {
    let mut offs = Vec::with_capacity(instance.num_facilities() + 1);
    let mut rows: Vec<(u32, f64)> = Vec::with_capacity(instance.num_links());
    offs.push(0u32);
    for i in instance.facilities() {
        rows.extend(instance.facility_links(i).iter());
        offs.push(rows.len() as u32);
    }
    (offs, rows)
}

/// Instance-derived read-only lanes for the event-driven ascent: the
/// per-client cost-sorted adjacency, the interleaved facility rows the
/// exact scans walk, and the opening-cost lane. Building these is most of
/// the ascent's setup cost; the warm-start cache keeps them across deltas
/// and patches only dirty client rows (facility ids inside a client's row
/// never change under a delta, so surviving rows copy verbatim).
pub(crate) struct JvLanes {
    /// Per-client row offsets into `sorted` (`n + 1` entries).
    pub(crate) offs: Vec<u32>,
    /// Per-client links as `(cost, facility)` sorted by `(cost, id)`.
    pub(crate) sorted: Vec<(f64, u32)>,
    /// Facility row offsets into `fl_rows` (`m + 1` entries).
    pub(crate) fl_offs: Vec<u32>,
    /// Interleaved `(client, cost)` facility rows.
    pub(crate) fl_rows: Vec<(u32, f64)>,
    /// Opening costs as a dense lane.
    pub(crate) f_cost: Vec<f64>,
}

impl JvLanes {
    pub(crate) fn build(instance: &Instance) -> Self {
        let n = instance.num_clients();
        let mut offs = Vec::with_capacity(n + 1);
        let mut sorted: Vec<(f64, u32)> = Vec::with_capacity(instance.num_links());
        offs.push(0u32);
        for j in instance.clients() {
            let s = sorted.len();
            sorted.extend(instance.client_links(j).iter().map(|(i, c)| (c, i)));
            sorted[s..].sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            offs.push(sorted.len() as u32);
        }
        let (fl_offs, fl_rows) = interleave_facility_links(instance);
        let f_cost = instance.facilities().map(|i| instance.opening_cost(i).value()).collect();
        JvLanes { offs, sorted, fl_offs, fl_rows, f_cost }
    }

    /// Re-derives the interleaved facility rows and opening lane from the
    /// instance, reusing allocations. Pure copies (no sorting), so the
    /// warm path calls this after every structural delta.
    pub(crate) fn refresh_facility_rows(&mut self, instance: &Instance) {
        self.fl_offs.clear();
        self.fl_offs.push(0u32);
        self.fl_rows.clear();
        for i in instance.facilities() {
            self.fl_rows.extend(instance.facility_links(i).iter());
            self.fl_offs.push(self.fl_rows.len() as u32);
        }
        self.f_cost.clear();
        self.f_cost.extend(instance.facilities().map(|i| instance.opening_cost(i).value()));
    }
}

/// Reusable mutable state for [`dual_ascent_with`]; reset on entry, so a
/// warm solve allocates only the returned `alpha`/`temp_open`.
#[derive(Default)]
pub(crate) struct JvScratch {
    connected: Vec<bool>,
    open: Vec<bool>,
    frozen: Vec<f64>,
    ptr: Vec<u32>,
    rate: Vec<i64>,
    sum_c: Vec<f64>,
    thr: Vec<f64>,
    candidates: Vec<usize>,
    newly_open: Vec<usize>,
}

/// Runs the exact continuous dual ascent (phase 1), event-driven.
///
/// Produces bit-identical duals and opening order to
/// [`dual_ascent_reference`] while avoiding its per-round scan over every
/// link. Each client keeps its links sorted by cost behind a pointer, so
/// the next tightness event is an O(1) lookup of an exact input constant.
/// Each facility keeps an incrementally-maintained *linear form* of its
/// payment (`frozen + rate·t − Σc` over active tight links) whose O(1)
/// threshold estimate agrees with the exact scan up to floating-point
/// noise; the handful of facilities within a generous margin of the
/// minimum estimate are re-evaluated with the reference's exact
/// summation (same link order, same operations), so the event time that
/// wins — and every `α_j`, `frozen` update, and opening decision — is the
/// exact value the reference computes.
pub fn dual_ascent(instance: &Instance) -> DualAscent {
    let lanes = JvLanes::build(instance);
    dual_ascent_with(instance, &lanes, &mut JvScratch::default())
}

/// [`dual_ascent`] over prebuilt lanes and caller-owned scratch — the
/// warm-start entry point. `lanes` must describe `instance` exactly.
pub(crate) fn dual_ascent_with(
    instance: &Instance,
    lanes: &JvLanes,
    scratch: &mut JvScratch,
) -> DualAscent {
    let _span = distfl_obs::span("solver", "jv.dual_ascent");
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let mut alpha = vec![0.0f64; n];
    let connected = &mut scratch.connected;
    connected.clear();
    connected.resize(n, false);
    let open = &mut scratch.open;
    open.clear();
    open.resize(m, false);
    let frozen = &mut scratch.frozen; // payment frozen from connected clients
    frozen.clear();
    frozen.resize(m, 0.0);
    let mut temp_open = Vec::new();
    let mut active = n;
    let mut t = 0.0f64;

    // Per-client links sorted by cost, behind a tightness pointer: links
    // before `ptr` have become tight (cost <= t) and are registered in the
    // facility linear forms below. Kept interleaved: the consumers are
    // random-offset per-client gathers that want cost and id on the same
    // cache line, not contiguous lane scans.
    let offs = &lanes.offs;
    let sorted = &lanes.sorted;
    let ptr = &mut scratch.ptr;
    ptr.clear();
    ptr.extend_from_slice(&offs[..n]);

    // Facility linear forms: payment ≈ frozen + rate·t − sum_c over active
    // tight links. `rate` is an exact count; `sum_c` is approximate and
    // only ever used for shortlisting.
    let rate = &mut scratch.rate;
    rate.clear();
    rate.resize(m, 0i64);
    let sum_c = &mut scratch.sum_c;
    sum_c.clear();
    sum_c.resize(m, 0.0);
    let f_cost = &lanes.f_cost;
    let frow = |i: usize| &lanes.fl_rows[lanes.fl_offs[i] as usize..lanes.fl_offs[i + 1] as usize];

    let candidates = &mut scratch.candidates;
    candidates.clear();
    let newly_open = &mut scratch.newly_open;
    let thr = &mut scratch.thr;
    thr.clear();
    thr.resize(m, f64::INFINITY);

    // Advance one client's pointer past links that became tight at time t,
    // registering them with their facility's linear form; links tight with
    // an already-open facility make the client a connect candidate.
    let advance = |j: usize,
                   t: f64,
                   ptr: &mut [u32],
                   rate: &mut [i64],
                   sum_c: &mut [f64],
                   open: &[bool],
                   candidates: &mut Vec<usize>| {
        let end = offs[j + 1];
        while ptr[j] < end {
            let (c, i) = sorted[ptr[j] as usize];
            if c > t {
                break;
            }
            if open[i as usize] {
                candidates.push(j);
            } else {
                rate[i as usize] += 1;
                sum_c[i as usize] += c;
            }
            ptr[j] += 1;
        }
    };

    // Register links that are tight at t = 0 (zero-cost links).
    for j in 0..n {
        advance(j, t, ptr, rate, sum_c, open, candidates);
    }

    while active > 0 {
        // Next event: either a client becomes tight with a facility, or a
        // facility becomes fully paid. Client events are exact constants;
        // facility events are shortlisted by linear form, then computed
        // with the reference's exact scan.
        let mut next = f64::INFINITY;
        for j in 0..n {
            if !connected[j] && ptr[j] < offs[j + 1] {
                next = next.min(sorted[ptr[j] as usize].0);
            }
        }
        // Linear-form event estimates, gathered into a dense lane so the
        // minimum is one chunked [`kernels::min_argmin`] pass (retired or
        // contributor-free facilities sit at `+inf` and never win).
        for i in 0..m {
            thr[i] = if open[i] {
                f64::INFINITY
            } else {
                let paid_lin = frozen[i] + rate[i] as f64 * t - sum_c[i];
                if paid_lin >= f_cost[i] {
                    t
                } else if rate[i] > 0 {
                    t + (f_cost[i] - paid_lin) / rate[i] as f64
                } else {
                    f64::INFINITY
                }
            };
        }
        let min_lin = kernels::min_argmin(thr).map_or(f64::INFINITY, |(_, v)| v);
        if min_lin.is_finite() {
            // The linear forms track the exact scans up to ~1e-12 relative
            // error; a 1e-6-relative margin is orders of magnitude wider,
            // so the facility holding the exact minimum is shortlisted.
            let margin = 1e-6 * (1.0 + min_lin.abs() + t.abs());
            for i in 0..m {
                if open[i] {
                    continue;
                }
                let paid_lin = frozen[i] + rate[i] as f64 * t - sum_c[i];
                let thr_lin = if paid_lin >= f_cost[i] - margin {
                    t
                } else if rate[i] > 0 {
                    t + (f_cost[i] - paid_lin) / rate[i] as f64
                } else {
                    continue;
                };
                if thr_lin <= min_lin + margin {
                    if let Some(ev) =
                        exact_facility_event(frow(i), f_cost[i], t, frozen[i], connected)
                    {
                        next = next.min(ev);
                    }
                }
            }
        }
        debug_assert!(next.is_finite(), "ascent must always have a next event");
        t = next.max(t);

        // Register links that became tight at the new t. Previously untight
        // links have cost >= t, so they contribute exactly 0 payment right
        // now — the linear forms stay in sync whether registered before or
        // after the open pass.
        for (j, &done) in connected.iter().enumerate() {
            if !done {
                advance(j, t, ptr, rate, sum_c, open, candidates);
            }
        }

        // Open every facility that is fully paid at time t: shortlist by
        // linear form, confirm with the reference's exact scan (ascending
        // id, preserving the reference's opening order).
        newly_open.clear();
        for i in 0..m {
            if open[i] {
                continue;
            }
            let paid_lin = frozen[i] + rate[i] as f64 * t - sum_c[i];
            let margin = 1e-6 * (1.0 + f_cost[i].abs() + paid_lin.abs() + rate[i] as f64 * t.abs());
            // Deliberately nested rather than `&&`-collapsed: the
            // collapsed form measures ~13% slower on the whole ascent
            // (bench_kernels capb row, 44.5ms vs 39.3ms) — the nested
            // shape keeps the rarely-taken exact scan out of the hot
            // shortlist branch's layout.
            #[allow(clippy::collapsible_if)]
            if paid_lin >= f_cost[i] - margin {
                if exact_paid(frow(i), t, frozen[i], connected) >= f_cost[i] - 1e-12 {
                    open[i] = true;
                    temp_open.push(FacilityId::new(i as u32));
                    newly_open.push(i);
                }
            }
        }
        // A newly-opened facility's tight active clients connect now; its
        // linear form is retired.
        for &i in newly_open.iter() {
            for (j, c) in instance.facility_links(FacilityId::new(i as u32)).iter() {
                if !connected[j as usize] && c <= t {
                    candidates.push(j as usize);
                }
            }
        }

        // Connect candidate clients tight with an open facility, in
        // ascending order, with exactly the reference's per-client checks
        // and freeze updates. Candidates are complete: a link tight with an
        // open facility was flagged either when the pointer passed it
        // (facility already open) or when its facility opened (link already
        // tight) — there is no third way.
        candidates.sort_unstable();
        candidates.dedup();
        for jx in std::mem::take(candidates) {
            if connected[jx] {
                continue;
            }
            let j = ClientId::new(jx as u32);
            let tight_open =
                instance.client_links(j).iter().any(|(i, c)| open[i as usize] && c <= t);
            if tight_open {
                connected[jx] = true;
                alpha[jx] = t;
                active -= 1;
                // Freeze this client's contributions into *all* facilities
                // it is paying (they stop growing).
                for (i, c) in instance.client_links(j).iter() {
                    if !open[i as usize] && c < t {
                        frozen[i as usize] += t - c;
                    }
                }
                // Retire the client's tight links from the linear forms.
                for p in offs[jx]..ptr[jx] {
                    let (c, i) = sorted[p as usize];
                    if !open[i as usize] {
                        rate[i as usize] -= 1;
                        sum_c[i as usize] -= c;
                        debug_assert!(rate[i as usize] >= 0, "rate bookkeeping went negative");
                    }
                }
            }
        }
    }

    DualAscent { alpha, temp_open }
}

/// Runs the exact continuous dual ascent (phase 1) by rescanning every
/// link each round. Retained as the reference implementation:
/// `bench_solvers` measures [`dual_ascent`] against it and the
/// equivalence tests pin bit-identical duals.
pub fn dual_ascent_reference(instance: &Instance) -> DualAscent {
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let mut alpha = vec![0.0f64; n];
    let mut connected = vec![false; n];
    let mut open = vec![false; m];
    let mut frozen = vec![0.0f64; m]; // payment frozen from connected clients
    let mut temp_open = Vec::new();
    let mut active = n;
    let mut t = 0.0f64;
    let (fl_offs, fl_rows) = interleave_facility_links(instance);
    let frow = |i: usize| &fl_rows[fl_offs[i] as usize..fl_offs[i + 1] as usize];

    while active > 0 {
        // Next event: either a client becomes tight with a facility, or a
        // facility becomes fully paid.
        let mut next = f64::INFINITY;
        for j in instance.clients() {
            if connected[j.index()] {
                continue;
            }
            for (i, c) in instance.client_links(j).iter() {
                if c > t {
                    next = next.min(c);
                } else if open[i as usize] {
                    // Already tight with an open facility: immediate event.
                    next = t;
                }
            }
        }
        for i in instance.facilities() {
            if open[i.index()] {
                continue;
            }
            let f = instance.opening_cost(i).value();
            if let Some(ev) =
                exact_facility_event(frow(i.index()), f, t, frozen[i.index()], &connected)
            {
                next = next.min(ev);
            }
        }
        debug_assert!(next.is_finite(), "ascent must always have a next event");
        t = next.max(t);

        // Open every facility that is fully paid at time t.
        for i in instance.facilities() {
            if open[i.index()] {
                continue;
            }
            let f = instance.opening_cost(i).value();
            if exact_paid(frow(i.index()), t, frozen[i.index()], &connected) >= f - 1e-12 {
                open[i.index()] = true;
                temp_open.push(i);
            }
        }
        // Connect every active client tight with an open facility.
        for j in instance.clients() {
            if connected[j.index()] {
                continue;
            }
            let tight_open =
                instance.client_links(j).iter().any(|(i, c)| open[i as usize] && c <= t);
            if tight_open {
                connected[j.index()] = true;
                alpha[j.index()] = t;
                active -= 1;
                // Freeze this client's contributions into *all* facilities
                // it is paying (they stop growing).
                for (i, c) in instance.client_links(j).iter() {
                    if !open[i as usize] && c < t {
                        frozen[i as usize] += t - c;
                    }
                }
            }
        }
    }

    DualAscent { alpha, temp_open }
}

/// Runs the full Jain–Vazirani algorithm.
pub fn solve(instance: &Instance) -> (Solution, DualSolution) {
    let ascent = dual_ascent(instance);
    prune_and_connect(instance, ascent)
}

/// [`solve`] over a prebuilt warm cache: phase 1 through
/// [`dual_ascent_with`], then the shared phase-2 pruning.
pub(crate) fn solve_with(
    instance: &Instance,
    lanes: &JvLanes,
    scratch: &mut JvScratch,
) -> (Solution, DualSolution) {
    let ascent = dual_ascent_with(instance, lanes, scratch);
    prune_and_connect(instance, ascent)
}

/// Phase 2: greedy maximal-independent-set pruning of the temporarily
/// open facilities and nearest-open connection. Pure in `(instance,
/// ascent)`, so cold and warm solves share it verbatim.
fn prune_and_connect(instance: &Instance, ascent: DualAscent) -> (Solution, DualSolution) {
    let alpha = &ascent.alpha;

    // Contributor sets: beta_ij > 0 iff alpha_j > c_ij (standard
    // simplification).
    let contributes = |j: ClientId, i: FacilityId| -> bool {
        instance.connection_cost(j, i).is_some_and(|c| alpha[j.index()] > c.value() + 1e-12)
    };

    // Greedy maximal independent set in opening order.
    let mut chosen: Vec<FacilityId> = Vec::new();
    for &i in &ascent.temp_open {
        let conflicts = chosen.iter().any(|&i2| {
            instance.facility_links(i).iter().any(|(j, _)| {
                let j = ClientId::new(j);
                contributes(j, i) && contributes(j, i2)
            })
        });
        if !conflicts {
            chosen.push(i);
        }
    }
    debug_assert!(!chosen.is_empty(), "at least one facility opens");

    // Connect each client to the nearest chosen facility it is linked to;
    // sparse instances fall back to the cheapest bundle.
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            // First-win strict `<` over the id-sorted row = the
            // `(cost, facility id)`-lexicographic minimum.
            let mut best: Option<(u32, f64)> = None;
            for (i, c) in instance.client_links(j).iter() {
                if chosen.contains(&FacilityId::new(i)) && best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((i, c));
                }
            }
            best.map(|(i, _)| FacilityId::new(i)).unwrap_or_else(|| {
                instance
                    .client_links(j)
                    .iter()
                    .map(|(i, c)| {
                        let i = FacilityId::new(i);
                        (i, c + instance.opening_cost(i).value())
                    })
                    .min_by(|(fa, ca), (fb, cb)| ca.total_cmp(cb).then(fa.cmp(fb)))
                    .map(|(i, _)| i)
                    .expect("instance invariant: every client has a link")
            })
        })
        .collect();
    let solution =
        Solution::from_assignment(instance, assignment).expect("assignment uses existing links");
    (solution, DualSolution::new(ascent.alpha))
}

impl FlAlgorithm for JainVazirani {
    fn name(&self) -> String {
        "jain-vazirani".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        if self.tolerance.is_finite() {
            let defect = distfl_instance::metric::metricity_defect(instance);
            if defect > self.tolerance {
                return Err(CoreError::RequiresMetric { defect });
            }
        }
        let (solution, dual) = solve(instance);
        Ok(Outcome { solution, transcript: None, dual: Some(dual), modeled_rounds: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Clustered, Euclidean, InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};
    use distfl_lp::exact;

    #[test]
    fn single_facility_duals_split_the_opening_cost() {
        // Two clients at cost 1 of a facility with f = 4: both reach
        // tightness at t=1, pay jointly, facility opens at t = 3.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(4.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(1.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 3.0).abs() < 1e-9, "alpha {:?}", ascent.alpha);
        assert!((ascent.alpha[1] - 3.0).abs() < 1e-9);
        assert_eq!(ascent.temp_open, vec![f]);
    }

    #[test]
    fn asymmetric_tightness_times() {
        // f = 3; clients at costs 1 and 2. Client 0 tight at 1, client 1 at
        // 2. Payment: (t-1) for t in [1,2], then (t-1)+(t-2); full at
        // 2t - 3 = 3 -> t = 3.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(3.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(2.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 3.0).abs() < 1e-9);
        assert!((ascent.alpha[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn late_client_connects_at_tightness() {
        // Facility opens early from a cheap client; an expensive client
        // connects exactly when it becomes tight.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(1.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(10.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 2.0).abs() < 1e-9, "alpha {:?}", ascent.alpha);
        assert!((ascent.alpha[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn within_three_opt_on_metric_instances() {
        for seed in 0..6 {
            let inst = Euclidean::new(7, 20).unwrap().generate(seed).unwrap();
            let (sol, _) = solve(&inst);
            sol.check_feasible(&inst).unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "seed {seed}: JV ratio {ratio}");
        }
        for seed in 0..4 {
            let inst = Clustered::new(3, 6, 18).unwrap().generate(seed).unwrap();
            let (sol, _) = solve(&inst);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "clustered seed {seed}: JV ratio {ratio}");
        }
    }

    #[test]
    fn dual_is_a_valid_lower_bound_source() {
        for seed in 0..5 {
            let inst = Euclidean::new(6, 15).unwrap().generate(seed).unwrap();
            let (_, dual) = solve(&inst);
            let lb = dual.lower_bound(&inst, distfl_lp::TOLERANCE);
            let opt = exact::solve(&inst).unwrap().cost.value();
            assert!(lb <= opt + 1e-6, "seed {seed}: {lb} > OPT {opt}");
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn event_driven_ascent_matches_reference_bitwise() {
        for seed in 0..8 {
            let inst = UniformRandom::new(10, 40).unwrap().generate(seed).unwrap();
            let fast = dual_ascent(&inst);
            let slow = dual_ascent_reference(&inst);
            assert_eq!(fast.alpha, slow.alpha, "uniform seed {seed}");
            assert_eq!(fast.temp_open, slow.temp_open, "uniform seed {seed}");
        }
        for seed in 0..6 {
            let inst = Clustered::new(4, 8, 30).unwrap().generate(seed).unwrap();
            let fast = dual_ascent(&inst);
            let slow = dual_ascent_reference(&inst);
            assert_eq!(fast.alpha, slow.alpha, "clustered seed {seed}");
            assert_eq!(fast.temp_open, slow.temp_open, "clustered seed {seed}");
        }
        for seed in 0..6 {
            let inst = Euclidean::new(9, 25).unwrap().generate(seed).unwrap();
            let fast = dual_ascent(&inst);
            let slow = dual_ascent_reference(&inst);
            assert_eq!(fast.alpha, slow.alpha, "euclidean seed {seed}");
            assert_eq!(fast.temp_open, slow.temp_open, "euclidean seed {seed}");
        }
    }

    #[test]
    fn rejects_non_metric_inputs() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(0).unwrap();
        let err = JainVazirani::new().run(&inst, 0).unwrap_err();
        assert!(matches!(err, CoreError::RequiresMetric { .. }));
        let out = JainVazirani::unchecked().run(&inst, 0).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }
}
