//! Jain–Vazirani primal–dual 3-approximation (metric baseline).
//!
//! Phase 1 is a continuous dual ascent, simulated exactly with a discrete
//! event loop: all unconnected clients raise `α_j` at unit rate; a client
//! tight with a facility (`α_j ≥ c_ij`) contributes `α_j − c_ij` toward its
//! opening cost; a fully-paid facility opens *temporarily* and absorbs its
//! tight clients (and any client that becomes tight with it later). Phase 2
//! prunes: temporarily-open facilities conflict when a common client
//! contributes positively to both; a greedy (by opening time) maximal
//! independent set of the conflict graph is opened permanently, and clients
//! connect to the nearest permanently open facility — at most `3·α_j` away
//! in a metric, giving the 3-approximation.
//!
//! PayDual is the CONGEST-compressed cousin of phase 1; this sequential
//! implementation is both a quality baseline on metric inputs and a source
//! of *feasible* dual solutions (its `α/3` is always dual-feasible up to
//! the contributor sets, and the raw `α` is scaled by the measured
//! feasibility factor before being used as a bound).

use distfl_instance::{ClientId, FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::runner::{FlAlgorithm, Outcome};

/// The Jain–Vazirani baseline.
///
/// Requires a complete metric instance for its guarantee; the metricity
/// check can be skipped with [`JainVazirani::unchecked`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JainVazirani {
    /// Additive tolerance for the metricity check (`f64::INFINITY` skips
    /// it).
    pub tolerance: f64,
}

impl JainVazirani {
    /// A baseline with the default metricity tolerance (`1e-6`).
    pub fn new() -> Self {
        JainVazirani { tolerance: 1e-6 }
    }

    /// Skips the (quadratic) metricity validation.
    pub fn unchecked() -> Self {
        JainVazirani { tolerance: f64::INFINITY }
    }
}

impl Default for JainVazirani {
    fn default() -> Self {
        JainVazirani::new()
    }
}

/// Result of the exact phase-1 dual ascent.
#[derive(Debug, Clone)]
pub struct DualAscent {
    /// Final dual value per client (its connection time).
    pub alpha: Vec<f64>,
    /// Temporarily open facilities in opening order.
    pub temp_open: Vec<FacilityId>,
}

/// Runs the exact continuous dual ascent (phase 1).
pub fn dual_ascent(instance: &Instance) -> DualAscent {
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let mut alpha = vec![0.0f64; n];
    let mut connected = vec![false; n];
    let mut open = vec![false; m];
    let mut frozen = vec![0.0f64; m]; // payment frozen from connected clients
    let mut temp_open = Vec::new();
    let mut active = n;
    let mut t = 0.0f64;

    while active > 0 {
        // Next event: either a client becomes tight with a facility, or a
        // facility becomes fully paid.
        let mut next = f64::INFINITY;
        for j in instance.clients() {
            if connected[j.index()] {
                continue;
            }
            for &(i, c) in instance.client_links(j) {
                let c = c.value();
                if c > t {
                    next = next.min(c);
                } else if open[i.index()] {
                    // Already tight with an open facility: immediate event.
                    next = t;
                }
            }
        }
        for i in instance.facilities() {
            if open[i.index()] {
                continue;
            }
            let f = instance.opening_cost(i).value();
            let mut paid = frozen[i.index()];
            let mut rate = 0u32;
            for &(j, c) in instance.facility_links(i) {
                if !connected[j.index()] && c.value() <= t {
                    paid += t - c.value();
                    rate += 1;
                }
            }
            if paid >= f {
                next = t; // fully paid right now
            } else if rate > 0 {
                next = next.min(t + (f - paid) / f64::from(rate));
            }
        }
        debug_assert!(next.is_finite(), "ascent must always have a next event");
        t = next.max(t);

        // Open every facility that is fully paid at time t.
        for i in instance.facilities() {
            if open[i.index()] {
                continue;
            }
            let f = instance.opening_cost(i).value();
            let mut paid = frozen[i.index()];
            for &(j, c) in instance.facility_links(i) {
                if !connected[j.index()] && c.value() <= t {
                    paid += t - c.value();
                }
            }
            if paid >= f - 1e-12 {
                open[i.index()] = true;
                temp_open.push(i);
            }
        }
        // Connect every active client tight with an open facility.
        for j in instance.clients() {
            if connected[j.index()] {
                continue;
            }
            let tight_open =
                instance.client_links(j).iter().any(|&(i, c)| open[i.index()] && c.value() <= t);
            if tight_open {
                connected[j.index()] = true;
                alpha[j.index()] = t;
                active -= 1;
                // Freeze this client's contributions into *all* facilities
                // it is paying (they stop growing).
                for &(i, c) in instance.client_links(j) {
                    if !open[i.index()] && c.value() < t {
                        frozen[i.index()] += t - c.value();
                    }
                }
            }
        }
    }

    DualAscent { alpha, temp_open }
}

/// Runs the full Jain–Vazirani algorithm.
pub fn solve(instance: &Instance) -> (Solution, DualSolution) {
    let ascent = dual_ascent(instance);
    let alpha = &ascent.alpha;

    // Contributor sets: beta_ij > 0 iff alpha_j > c_ij (standard
    // simplification).
    let contributes = |j: ClientId, i: FacilityId| -> bool {
        instance.connection_cost(j, i).is_some_and(|c| alpha[j.index()] > c.value() + 1e-12)
    };

    // Greedy maximal independent set in opening order.
    let mut chosen: Vec<FacilityId> = Vec::new();
    for &i in &ascent.temp_open {
        let conflicts = chosen.iter().any(|&i2| {
            instance.facility_links(i).iter().any(|&(j, _)| contributes(j, i) && contributes(j, i2))
        });
        if !conflicts {
            chosen.push(i);
        }
    }
    debug_assert!(!chosen.is_empty(), "at least one facility opens");

    // Connect each client to the nearest chosen facility it is linked to;
    // sparse instances fall back to the cheapest bundle.
    let assignment: Vec<FacilityId> = instance
        .clients()
        .map(|j| {
            instance
                .client_links(j)
                .iter()
                .filter(|(i, _)| chosen.contains(i))
                .min_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fa.cmp(fb)))
                .map(|(i, _)| *i)
                .unwrap_or_else(|| {
                    instance
                        .client_links(j)
                        .iter()
                        .map(|&(i, c)| (i, c + instance.opening_cost(i)))
                        .min_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fa.cmp(fb)))
                        .map(|(i, _)| i)
                        .expect("instance invariant: every client has a link")
                })
        })
        .collect();
    let solution =
        Solution::from_assignment(instance, assignment).expect("assignment uses existing links");
    (solution, DualSolution::new(ascent.alpha))
}

impl FlAlgorithm for JainVazirani {
    fn name(&self) -> String {
        "jain-vazirani".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        if self.tolerance.is_finite() {
            let defect = distfl_instance::metric::metricity_defect(instance);
            if defect > self.tolerance {
                return Err(CoreError::RequiresMetric { defect });
            }
        }
        let (solution, dual) = solve(instance);
        Ok(Outcome { solution, transcript: None, dual: Some(dual), modeled_rounds: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{Clustered, Euclidean, InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};
    use distfl_lp::exact;

    #[test]
    fn single_facility_duals_split_the_opening_cost() {
        // Two clients at cost 1 of a facility with f = 4: both reach
        // tightness at t=1, pay jointly, facility opens at t = 3.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(4.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(1.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 3.0).abs() < 1e-9, "alpha {:?}", ascent.alpha);
        assert!((ascent.alpha[1] - 3.0).abs() < 1e-9);
        assert_eq!(ascent.temp_open, vec![f]);
    }

    #[test]
    fn asymmetric_tightness_times() {
        // f = 3; clients at costs 1 and 2. Client 0 tight at 1, client 1 at
        // 2. Payment: (t-1) for t in [1,2], then (t-1)+(t-2); full at
        // 2t - 3 = 3 -> t = 3.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(3.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(2.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 3.0).abs() < 1e-9);
        assert!((ascent.alpha[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn late_client_connects_at_tightness() {
        // Facility opens early from a cheap client; an expensive client
        // connects exactly when it becomes tight.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(1.0).unwrap());
        let c0 = b.add_client();
        let c1 = b.add_client();
        b.link(c0, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c1, f, Cost::new(10.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let ascent = dual_ascent(&inst);
        assert!((ascent.alpha[0] - 2.0).abs() < 1e-9, "alpha {:?}", ascent.alpha);
        assert!((ascent.alpha[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn within_three_opt_on_metric_instances() {
        for seed in 0..6 {
            let inst = Euclidean::new(7, 20).unwrap().generate(seed).unwrap();
            let (sol, _) = solve(&inst);
            sol.check_feasible(&inst).unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "seed {seed}: JV ratio {ratio}");
        }
        for seed in 0..4 {
            let inst = Clustered::new(3, 6, 18).unwrap().generate(seed).unwrap();
            let (sol, _) = solve(&inst);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = sol.cost(&inst).value() / opt;
            assert!(ratio <= 3.0 + 1e-9, "clustered seed {seed}: JV ratio {ratio}");
        }
    }

    #[test]
    fn dual_is_a_valid_lower_bound_source() {
        for seed in 0..5 {
            let inst = Euclidean::new(6, 15).unwrap().generate(seed).unwrap();
            let (_, dual) = solve(&inst);
            let lb = dual.lower_bound(&inst, distfl_lp::TOLERANCE);
            let opt = exact::solve(&inst).unwrap().cost.value();
            assert!(lb <= opt + 1e-6, "seed {seed}: {lb} > OPT {opt}");
            assert!(lb > 0.0);
        }
    }

    #[test]
    fn rejects_non_metric_inputs() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(0).unwrap();
        let err = JainVazirani::new().run(&inst, 0).unwrap_err();
        assert!(matches!(err, CoreError::RequiresMetric { .. }));
        let out = JainVazirani::unchecked().run(&inst, 0).unwrap();
        out.solution.check_feasible(&inst).unwrap();
    }
}
