//! **PayDual** — the reconstructed Moscibroda–Wattenhofer distributed
//! dual-ascent algorithm.
//!
//! # Protocol
//!
//! One CONGEST node per facility and per client, communicating over the
//! instance's links. Parameterized by the number of *phases* `s` (the
//! paper's round knob `k`); total rounds are `3(s+1) + 2` regardless of the
//! input, so the algorithm is *local* in the paper's sense.
//!
//! * **Bootstrap (round 0).** Every facility announces its opening cost to
//!   its neighbors.
//! * **Client initialization (round 1).** Client `j` computes its
//!   *self-pay target* `t_j = min_i (c_ij + f_i)` — the dual value at which
//!   it can open a facility single-handedly — its starting dual
//!   `α_j = min_i c_ij` (floored at `t_j / N` when zero-cost links exist,
//!   `N` the known network-size bound), and its per-phase raise factor
//!   `γ_j = (2·t_j / α_j)^{1/s}`. Then each phase runs three rounds:
//!   1. **Offer** — active clients send `α_j` to all linked facilities.
//!   2. **Open** — facility `i` computes
//!      `pay_i = frozen_i + Σ_offers max(0, α_j − c_ij)`; once
//!      `pay_i ≥ f_i` it (permanently) opens and announces `OPEN`.
//!   3. **Connect** — an active client hearing an open facility with
//!      `α_j ≥ c_ij` connects to the one with maximum slack `α_j − c_ij`
//!      (ties to the lowest id), freezing its contribution there; otherwise
//!      it raises `α_j ← γ_j·α_j` (capped at `2·t_j`).
//! * **Harvest.** Facilities that attracted no connections close; every
//!   client keeps the facility it connected to.
//!
//! # Guarantees (see also [`crate::theory`])
//!
//! *Termination.* After `s` raises `α_j = 2t_j ≥ t_j`, so the offer pays
//! the argmin facility of `t_j` fully; it opens and `j` connects. Hence
//! every client is connected within `s+1` offer phases — `O(s)` rounds
//! total, **independent of the input size**.
//!
//! *Cost (dual fitting).* Every client's connection cost is at most its
//! final `α_j` (it connects only with non-negative slack), and every kept
//! facility is fully paid by frozen contributions of distinct clients, so
//! `cost ≤ Σ_j α_j · (1 + overpay)` where the overpay factor collects (a)
//! the geometric overshoot — at most `γ = B^{1/s}` past the exact event
//! point, the paper's `(mρ)^{1/√k}` knob — and (b) simultaneous parallel
//! openings, the greedy-style `O(log(m+n))` term. Scaling the final duals
//! by the measured [`distfl_lp::DualSolution::feasibility_factor`] yields
//! the certified lower bound the experiments divide by, so all reported
//! ratios are sound regardless of the reconstruction's constants.

pub mod node;

use distfl_congest::{CongestConfig, FaultVerdict, Network, SimConfig, SimReport, Simulator};
use distfl_instance::{FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::model::{node_role, topology_of, Role};
use crate::runner::{FlAlgorithm, Outcome};

pub use node::{PayDualMsg, PayDualNode};

use node::build_nodes;

/// How a client chooses among eligible open facilities in a connect round
/// (an ablated design choice; see experiment E8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConnectRule {
    /// Connect to the facility with maximum slack `α_j − c_ij` — the
    /// facility this client is paying the most (the default; keeps the
    /// dual-fitting accounting tight).
    #[default]
    MaxSlack,
    /// Connect to the cheapest eligible facility — myopic cost-greedy.
    CheapestEligible,
}

/// Tuning parameters for [`PayDual`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayDualParams {
    /// Number of dual-raising phases `s ≥ 1`. More phases → more rounds →
    /// smaller per-phase factor `γ = B^{1/s}` → better approximation.
    pub phases: u32,
    /// Worker threads for the simulator (`None` = serial; results are
    /// identical).
    pub threads: Option<usize>,
    /// Optional deterministic message-drop plan. The algorithm's
    /// guarantees assume a fault-free network; with faults the output is
    /// still feasible (clients recover locally) but quality degrades.
    pub fault: Option<distfl_congest::FaultPlan>,
    /// Connect-round tie-breaking rule (ablation knob).
    pub connect_rule: ConnectRule,
    /// Whether to apply the final local polish (each client re-connects to
    /// its cheapest kept-open facility; never increases cost). Ablation
    /// knob; on by default.
    pub polish: bool,
}

impl PayDualParams {
    /// Parameters with the given phase count and serial execution.
    pub fn with_phases(phases: u32) -> Self {
        PayDualParams {
            phases,
            threads: None,
            fault: None,
            connect_rule: ConnectRule::default(),
            polish: true,
        }
    }
}

impl Default for PayDualParams {
    /// Eight phases — a mid-range point of the trade-off.
    fn default() -> Self {
        PayDualParams::with_phases(8)
    }
}

/// The distributed dual-ascent algorithm (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PayDual {
    params: PayDualParams,
}

/// Result of [`PayDual::run_simulated`]: the usual [`Outcome`] plus the
/// discrete-event simulator's virtual-clock report and the
/// fault-attribution data the audit layer consumes.
#[derive(Debug, Clone)]
pub struct SimulatedRun {
    /// The algorithm outcome (solution, transcript, dual certificate).
    pub outcome: Outcome,
    /// Virtual-time measurements of the simulated execution.
    pub report: SimReport,
    /// Per-node fault verdicts from the run's global observations
    /// (send-side counters plus the crash schedule).
    pub verdicts: Vec<FaultVerdict>,
    /// Per-node *locally observed* accusations, encoded for the `Max`
    /// convergecast of [`crate::audit::distributed_fault_audit`].
    pub accusations: Vec<f64>,
}

impl PayDual {
    /// Creates the algorithm with explicit parameters.
    pub fn new(params: PayDualParams) -> Self {
        PayDual { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> PayDualParams {
        self.params
    }

    /// Runs the algorithm on the discrete-event simulator instead of the
    /// lock-step engine: same protocol, same transcript (bit-identical in
    /// a loss-free configuration, whatever the latency model), but over
    /// asynchronous links with per-edge latency, bandwidth, partitions,
    /// lossy nodes, and crash schedules from `sim`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FlAlgorithm::run`]; additionally fails with
    /// [`distfl_congest::CongestError::ProtocolIncomplete`] when a crash
    /// schedule kills a client before it learns any facility to fall back
    /// to.
    pub fn run_simulated(
        &self,
        instance: &Instance,
        seed: u64,
        sim: SimConfig,
    ) -> Result<SimulatedRun, CoreError> {
        let _span = distfl_obs::span_arg("solver", "paydual.sim", u64::from(self.params.phases));
        if self.params.phases == 0 {
            return Err(CoreError::InvalidParams {
                reason: "paydual needs at least one phase".to_owned(),
            });
        }
        let topo = topology_of(instance)?;
        let nodes = build_nodes(instance, self.params.phases, self.params.connect_rule);
        let mut simulator = Simulator::new(topo, nodes, seed, sim)?;
        simulator.run(crate::theory::paydual_rounds(self.params.phases))?;
        let report = simulator.report().clone();
        let verdicts = simulator.verdicts();
        let accusations = simulator.accusations();
        let (solution, dual) = harvest(instance, simulator.nodes(), self.params.polish)?;
        let (_, transcript) = simulator.into_parts();
        Ok(SimulatedRun {
            outcome: Outcome {
                solution,
                transcript: Some(transcript),
                dual: Some(dual),
                modeled_rounds: None,
            },
            report,
            verdicts,
            accusations,
        })
    }
}

/// Extracts the distributed solution and dual certificate from final node
/// states — shared by the lock-step and simulated runners so both produce
/// exactly the same output from the same states.
fn harvest(
    instance: &Instance,
    nodes: &[PayDualNode],
    polish: bool,
) -> Result<(Solution, DualSolution), CoreError> {
    let m = instance.num_facilities();
    let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
    let mut alpha = vec![0.0f64; instance.num_clients()];
    for (index, node) in nodes.iter().enumerate() {
        match (node_role(m, distfl_congest::NodeId::new(index as u32)), node) {
            (Role::Client(j), PayDualNode::Client(c)) => {
                // In the fault-free model every client is connected; under
                // fault injection recover via the local fallback. Only a
                // client crashed before bootstrap has neither.
                let facility = c.connected_facility().or_else(|| c.fallback_facility()).ok_or(
                    CoreError::Congest(distfl_congest::CongestError::ProtocolIncomplete {
                        what: "client holds neither a connection nor a fallback facility",
                    }),
                )?;
                assignment[j.index()] = facility;
                alpha[j.index()] = c.alpha();
            }
            (Role::Facility(_), PayDualNode::Facility(_)) => {}
            _ => unreachable!("node role/state mismatch"),
        }
    }
    let solution = Solution::from_assignment(instance, assignment)?;
    // Final local polish (free in the model: one more exchange of the
    // already-broadcast OPEN sets): connect each client to its cheapest
    // kept-open facility.
    let solution = if polish { solution.reassign_greedily(instance) } else { solution };
    Ok((solution, DualSolution::new(alpha)))
}

impl FlAlgorithm for PayDual {
    fn name(&self) -> String {
        format!("paydual(s={})", self.params.phases)
    }

    fn run(&self, instance: &Instance, seed: u64) -> Result<Outcome, CoreError> {
        let _span = distfl_obs::span_arg("solver", "paydual", u64::from(self.params.phases));
        if self.params.phases == 0 {
            return Err(CoreError::InvalidParams {
                reason: "paydual needs at least one phase".to_owned(),
            });
        }
        let topo = topology_of(instance)?;
        let nodes = build_nodes(instance, self.params.phases, self.params.connect_rule);
        let config = CongestConfig {
            threads: self.params.threads,
            fault: self.params.fault,
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, seed, config)?;
        let total_rounds = crate::theory::paydual_rounds(self.params.phases);
        if distfl_obs::enabled() {
            run_traced(&mut net, total_rounds)?;
        } else {
            net.run(total_rounds)?;
        }
        debug_assert_eq!(net.transcript().num_rounds(), total_rounds);

        let (solution, dual) = harvest(instance, net.nodes(), self.params.polish)?;
        Ok(Outcome {
            solution,
            transcript: Some(net.into_transcript()),
            dual: Some(dual),
            modeled_rounds: None,
        })
    }
}

/// [`Network::run`] with a trace span around each PayDual phase: rounds
/// 0–1 are bootstrap/init, then three rounds (offer, open, connect) per
/// phase. Step-for-step identical to `net.run(max_rounds)` — the spans
/// only observe, they never change when or whether a round executes.
fn run_traced(
    net: &mut Network<PayDualNode>,
    max_rounds: u32,
) -> Result<(), distfl_congest::CongestError> {
    use distfl_congest::NodeLogic;
    let mut phase_span = distfl_obs::Span::disabled();
    let mut current_phase = u32::MAX;
    while !net.all_done() {
        if net.round() >= max_rounds {
            let pending = net.nodes().iter().filter(|l| !l.is_done()).count();
            return Err(distfl_congest::CongestError::RoundLimit { limit: max_rounds, pending });
        }
        let round = net.round();
        let phase = if round < 2 { 0 } else { (round - 2) / 3 + 1 };
        if phase != current_phase {
            current_phase = phase;
            // Close the previous phase's span before opening the next so
            // the intervals do not overlap in the trace.
            drop(std::mem::replace(&mut phase_span, distfl_obs::Span::disabled()));
            phase_span = if phase == 0 {
                distfl_obs::span("solver", "paydual.bootstrap")
            } else {
                distfl_obs::span_arg("solver", "paydual.phase", u64::from(phase))
            };
        }
        net.step()?;
    }
    drop(phase_span);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{
        AdversarialGreedy, Clustered, Euclidean, GridNetwork, InstanceGenerator, PowerLaw,
        UniformRandom,
    };
    use distfl_instance::{Cost, InstanceBuilder};
    use distfl_lp::{bounds, exact};

    fn run(instance: &Instance, phases: u32) -> Outcome {
        PayDual::new(PayDualParams::with_phases(phases)).run(instance, 7).unwrap()
    }

    #[test]
    fn terminates_and_is_feasible_across_families() {
        let instances: Vec<Instance> = vec![
            UniformRandom::new(6, 20).unwrap().generate(1).unwrap(),
            Euclidean::new(5, 15).unwrap().generate(2).unwrap(),
            Clustered::new(3, 6, 18).unwrap().generate(3).unwrap(),
            GridNetwork::new(8, 8, 5, 20).unwrap().generate(4).unwrap(),
            PowerLaw::new(5, 15, 1e4).unwrap().generate(5).unwrap(),
            AdversarialGreedy::new(12).unwrap().generate(0).unwrap(),
        ];
        for (idx, inst) in instances.iter().enumerate() {
            for phases in [1, 4, 10] {
                let out = run(inst, phases);
                out.solution
                    .check_feasible(inst)
                    .unwrap_or_else(|e| panic!("instance {idx} phases {phases}: infeasible: {e}"));
            }
        }
    }

    #[test]
    fn round_count_is_input_independent() {
        let small = UniformRandom::new(4, 10).unwrap().generate(0).unwrap();
        let large = UniformRandom::new(12, 200).unwrap().generate(0).unwrap();
        let phases = 5;
        let a = run(&small, phases).transcript.unwrap().num_rounds();
        let b = run(&large, phases).transcript.unwrap().num_rounds();
        assert_eq!(a, b);
        assert_eq!(a, crate::theory::paydual_rounds(phases));
    }

    #[test]
    fn congest_discipline_holds() {
        let inst = UniformRandom::new(8, 40).unwrap().generate(3).unwrap();
        let out = run(&inst, 6);
        let t = out.transcript.unwrap();
        assert!(t.congest_compliant(node::MAX_MESSAGE_BITS));
    }

    #[test]
    fn single_client_opens_cheapest_bundle() {
        // One client, two facilities: (f=10, c=1) vs (f=2, c=5).
        // Self-pay targets: 11 vs 7 -> the dual sweep should open the
        // second (cheaper bundle) facility.
        let mut b = InstanceBuilder::new();
        let f0 = b.add_facility(Cost::new(10.0).unwrap());
        let f1 = b.add_facility(Cost::new(2.0).unwrap());
        let c = b.add_client();
        b.link(c, f0, Cost::new(1.0).unwrap()).unwrap();
        b.link(c, f1, Cost::new(5.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let out = run(&inst, 12);
        assert!(out.solution.is_open(f1), "expected cheaper bundle facility");
        assert!(!out.solution.is_open(f0));
    }

    #[test]
    fn free_facility_is_used_immediately() {
        let mut b = InstanceBuilder::new();
        let free = b.add_facility(Cost::ZERO);
        let paid = b.add_facility(Cost::new(100.0).unwrap());
        for _ in 0..5 {
            let j = b.add_client();
            b.link(j, free, Cost::new(1.0).unwrap()).unwrap();
            b.link(j, paid, Cost::new(1.0).unwrap()).unwrap();
        }
        let inst = b.build().unwrap();
        let out = run(&inst, 3);
        assert!(out.solution.is_open(free));
        assert!(!out.solution.is_open(paid));
        assert_eq!(out.solution.cost(&inst).value(), 5.0);
    }

    #[test]
    fn zero_cost_links_are_handled() {
        // Clients at cost 0 of a facility with positive opening cost.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(6.0).unwrap());
        for _ in 0..3 {
            let j = b.add_client();
            b.link(j, f, Cost::ZERO).unwrap();
        }
        let inst = b.build().unwrap();
        let out = run(&inst, 8);
        out.solution.check_feasible(&inst).unwrap();
        assert_eq!(out.solution.cost(&inst).value(), 6.0);
    }

    #[test]
    fn more_phases_do_not_hurt_much_and_eventually_help() {
        // On the adversarial-for-greedy family the coarse single-phase run
        // overshoots; with many phases the ratio must come down to the
        // greedy regime or better.
        let inst = PowerLaw::new(12, 60, 1e5).unwrap().generate(9).unwrap();
        let opt = exact::solve(&inst).unwrap().cost.value();
        let coarse = run(&inst, 1).solution.cost(&inst).value() / opt;
        let fine = run(&inst, 24).solution.cost(&inst).value() / opt;
        assert!(fine <= coarse * 1.10 + 1e-9, "fine ({fine}) much worse than coarse ({coarse})");
    }

    #[test]
    fn ratio_is_moderate_with_enough_phases() {
        for seed in 0..5 {
            let inst = UniformRandom::new(8, 30).unwrap().generate(seed).unwrap();
            let out = run(&inst, 16);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let ratio = out.solution.cost(&inst).value() / opt;
            assert!(ratio < 4.0, "seed {seed}: ratio {ratio} unexpectedly large");
        }
    }

    #[test]
    fn produced_dual_certifies_a_useful_lower_bound() {
        let inst = UniformRandom::new(7, 25).unwrap().generate(11).unwrap();
        let out = run(&inst, 10);
        let dual = out.dual.unwrap();
        let lb = dual.lower_bound(&inst, distfl_lp::TOLERANCE);
        let opt = exact::solve(&inst).unwrap().cost.value();
        assert!(lb <= opt + 1e-6, "dual LB {lb} must not exceed OPT {opt}");
        assert!(lb > bounds::trivial_lower_bound(&inst) * 0.2, "dual LB uselessly small");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = Clustered::new(3, 8, 30).unwrap().generate(6).unwrap();
        let algo = PayDual::new(PayDualParams::with_phases(6));
        let a = algo.run(&inst, 5).unwrap();
        let b = algo.run(&inst, 5).unwrap();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.transcript, b.transcript);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let inst = UniformRandom::new(10, 60).unwrap().generate(8).unwrap();
        let serial = PayDual::new(PayDualParams::with_phases(6)).run(&inst, 3).unwrap();
        let parallel =
            PayDual::new(PayDualParams { threads: Some(4), ..PayDualParams::with_phases(6) })
                .run(&inst, 3)
                .unwrap();
        assert_eq!(serial.solution, parallel.solution);
        assert_eq!(serial.transcript, parallel.transcript);
    }

    #[test]
    fn zero_phases_is_rejected() {
        let inst = UniformRandom::new(2, 2).unwrap().generate(0).unwrap();
        let err = PayDual::new(PayDualParams::with_phases(0)).run(&inst, 0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParams { .. }));
    }

    #[test]
    fn name_includes_parameters() {
        assert_eq!(PayDual::new(PayDualParams::with_phases(6)).name(), "paydual(s=6)");
    }

    #[test]
    fn simulated_run_matches_the_lockstep_engine() {
        use distfl_congest::LatencyModel;
        let inst = UniformRandom::new(8, 30).unwrap().generate(5).unwrap();
        let algo = PayDual::new(PayDualParams::with_phases(6));
        let lockstep = algo.run(&inst, 9).unwrap();
        for latency in [
            LatencyModel::Constant(25_000),
            LatencyModel::Uniform { lo: 100, hi: 800_000 },
            LatencyModel::LogNormal { median_nanos: 40_000.0, sigma: 1.2 },
        ] {
            let config = SimConfig { latency, latency_seed: 17, ..SimConfig::default() };
            let simulated = algo.run_simulated(&inst, 9, config).unwrap();
            assert_eq!(lockstep.solution, simulated.outcome.solution, "{latency:?}");
            assert_eq!(lockstep.transcript, simulated.outcome.transcript, "{latency:?}");
            assert!(simulated.verdicts.iter().all(|v| !v.is_faulty()), "{latency:?}");
            assert!(simulated.report.virtual_nanos > 0);
        }
    }

    #[test]
    fn simulated_run_with_losses_stays_feasible_and_attributes_them() {
        let inst = UniformRandom::new(6, 24).unwrap().generate(4).unwrap();
        let culprit = distfl_congest::NodeId::new(2); // a facility node
        let config = SimConfig { lossy_nodes: vec![(culprit, 0.7)], ..SimConfig::default() };
        let run =
            PayDual::new(PayDualParams::with_phases(10)).run_simulated(&inst, 3, config).unwrap();
        run.outcome.solution.check_feasible(&inst).unwrap();
        assert!(
            matches!(
                run.verdicts[culprit.index()],
                distfl_congest::FaultVerdict::DroppedAboveThreshold { .. }
            ),
            "got {:?}",
            run.verdicts[culprit.index()]
        );
    }

    #[test]
    fn client_crashed_before_bootstrap_is_a_clean_error() {
        let inst = UniformRandom::new(4, 8).unwrap().generate(2).unwrap();
        let first_client = distfl_congest::NodeId::new(inst.num_facilities() as u32);
        let config = SimConfig { crashes: vec![(first_client, 0)], ..SimConfig::default() };
        let err = PayDual::new(PayDualParams::with_phases(4))
            .run_simulated(&inst, 1, config)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Congest(distfl_congest::CongestError::ProtocolIncomplete { .. })
        ));
    }
}
