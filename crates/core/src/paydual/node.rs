//! Node state machines for PayDual.

use distfl_congest::{NodeId, NodeLogic, Payload, StepCtx};
use distfl_instance::{ClientId, FacilityId, Instance};

use super::ConnectRule;
use crate::model::{client_node, facility_node};

/// Upper bound on any PayDual message, in bits: one tag byte plus one
/// 64-bit scalar. The CONGEST discipline check in the tests uses this.
pub const MAX_MESSAGE_BITS: u64 = 72;

/// Messages of the PayDual protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayDualMsg {
    /// Facility → clients, round 0: the opening cost.
    AnnounceOpening(f64),
    /// Client → facility, offer rounds: the current dual value.
    Offer(f64),
    /// Facility → clients, open rounds: "I am open".
    Open,
    /// Client → facility, connect rounds: "I connect to you", carrying the
    /// dual value whose slack freezes into the facility's payment.
    Connect(f64),
}

impl Payload for PayDualMsg {
    fn size_bits(&self) -> u64 {
        match self {
            PayDualMsg::Open => 8,
            _ => MAX_MESSAGE_BITS,
        }
    }

    /// Canonical wire encoding: one tag byte plus the big-endian scalar —
    /// exactly the [`PayDualMsg::size_bits`] budget. Used by the
    /// wire-format tests to keep the declared sizes honest.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(9);
        match self {
            PayDualMsg::AnnounceOpening(v) => {
                b.put_u8(0);
                b.put_f64(*v);
            }
            PayDualMsg::Offer(v) => {
                b.put_u8(1);
                b.put_f64(*v);
            }
            PayDualMsg::Open => b.put_u8(2),
            PayDualMsg::Connect(v) => {
                b.put_u8(3);
                b.put_f64(*v);
            }
        }
        b.freeze()
    }
}

/// One PayDual node: either a facility or a client state machine.
#[derive(Debug, Clone)]
pub enum PayDualNode {
    /// Facility role.
    Facility(FacilityState),
    /// Client role.
    Client(ClientState),
}

impl NodeLogic for PayDualNode {
    type Msg = PayDualMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, PayDualMsg>) {
        match self {
            PayDualNode::Facility(f) => f.step(ctx),
            PayDualNode::Client(c) => c.step(ctx),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            PayDualNode::Facility(f) => f.done,
            PayDualNode::Client(c) => c.done,
        }
    }
}

/// Builds the node vector for an instance: facilities `0..m`, then clients.
pub fn build_nodes(
    instance: &Instance,
    phases: u32,
    connect_rule: ConnectRule,
) -> Vec<PayDualNode> {
    let m = instance.num_facilities();
    let last_round = crate::theory::paydual_rounds(phases) - 1;
    let mut nodes = Vec::with_capacity(m + instance.num_clients());
    for i in instance.facilities() {
        let links = instance
            .facility_links(i)
            .iter()
            .map(|(j, c)| (client_node(m, ClientId::new(j)), c))
            .collect();
        nodes.push(PayDualNode::Facility(FacilityState::new(
            instance.opening_cost(i).value(),
            links,
            last_round,
        )));
    }
    let size_bound = (m + instance.num_clients()) as f64;
    for j in instance.clients() {
        let links = instance
            .client_links(j)
            .iter()
            .map(|(i, c)| (facility_node(FacilityId::new(i)), c))
            .collect();
        nodes.push(PayDualNode::Client(ClientState::new(
            links,
            phases,
            size_bound,
            last_round,
            connect_rule,
        )));
    }
    nodes
}

/// Looks up the link cost toward `src` in a node's sorted link table.
fn link_cost(links: &[(NodeId, f64)], src: NodeId) -> Option<f64> {
    links.binary_search_by_key(&src, |(id, _)| *id).ok().map(|pos| links[pos].1)
}

/// Facility state machine.
#[derive(Debug, Clone)]
pub struct FacilityState {
    opening: f64,
    /// Linked clients (node id, connection cost), sorted by node id.
    links: Vec<(NodeId, f64)>,
    open: bool,
    /// Frozen contributions of connected clients.
    frozen: f64,
    connected: Vec<NodeId>,
    last_round: u32,
    done: bool,
}

impl FacilityState {
    fn new(opening: f64, links: Vec<(NodeId, f64)>, last_round: u32) -> Self {
        FacilityState {
            opening,
            links,
            open: false,
            frozen: 0.0,
            connected: Vec::new(),
            last_round,
            done: false,
        }
    }

    /// Whether the facility declared itself open during the run.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Frozen payment accumulated from connected clients.
    pub fn frozen_payment(&self) -> f64 {
        self.frozen
    }

    /// Number of clients that connected here.
    pub fn num_connected(&self) -> usize {
        self.connected.len()
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, PayDualMsg>) {
        let r = ctx.round();
        if r == 0 {
            ctx.broadcast(PayDualMsg::AnnounceOpening(self.opening));
        } else if r % 3 == 2 {
            // Open round: tally offers, open if fully paid, announce.
            let mut pay = self.frozen;
            for &(src, msg) in ctx.inbox() {
                if let PayDualMsg::Offer(alpha) = msg {
                    let c = link_cost(&self.links, src)
                        .expect("offers only arrive over existing links");
                    pay += (alpha - c).max(0.0);
                }
            }
            if pay >= self.opening {
                self.open = true;
            }
            if self.open {
                ctx.broadcast(PayDualMsg::Open);
            }
        } else if r % 3 == 1 && r > 1 {
            // Harvest round: record connections, freeze contributions.
            for &(src, msg) in ctx.inbox() {
                if let PayDualMsg::Connect(alpha) = msg {
                    let c = link_cost(&self.links, src)
                        .expect("connections only arrive over existing links");
                    self.frozen += (alpha - c).max(0.0);
                    self.connected.push(src);
                }
            }
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

/// Client state machine.
#[derive(Debug, Clone)]
pub struct ClientState {
    /// Linked facilities (node id, connection cost), sorted by node id.
    links: Vec<(NodeId, f64)>,
    phases: u32,
    size_bound: f64,
    alpha: f64,
    gamma: f64,
    cap: f64,
    known_open: Vec<bool>,
    connected: Option<usize>,
    /// Link index of the cheapest `(c + f)` bundle, used as the local
    /// recovery target when fault injection suppresses the normal
    /// connection path.
    fallback: Option<usize>,
    connect_rule: ConnectRule,
    last_round: u32,
    done: bool,
}

impl ClientState {
    fn new(
        links: Vec<(NodeId, f64)>,
        phases: u32,
        size_bound: f64,
        last_round: u32,
        connect_rule: ConnectRule,
    ) -> Self {
        let degree = links.len();
        ClientState {
            links,
            phases,
            size_bound,
            alpha: 0.0,
            gamma: 1.0,
            cap: 0.0,
            known_open: vec![false; degree],
            connected: None,
            fallback: None,
            connect_rule,
            last_round,
            done: false,
        }
    }

    /// The facility this client connected to (`None` before termination).
    pub fn connected_facility(&self) -> Option<FacilityId> {
        self.connected.map(|idx| FacilityId::new(self.links[idx].0.raw()))
    }

    /// The client's cheapest-bundle facility, the local recovery target
    /// when lossy links (fault injection) prevented a normal connection.
    pub fn fallback_facility(&self) -> Option<FacilityId> {
        self.fallback.map(|idx| FacilityId::new(self.links[idx].0.raw()))
    }

    /// The client's final dual value.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Initializes `α`, `γ`, the cap, and the fallback target from the
    /// announced opening costs. Tolerates missing announcements (possible
    /// only under fault injection) by treating the affected facilities as
    /// unknown.
    fn initialize(&mut self, ctx: &StepCtx<'_, PayDualMsg>) {
        let mut target = f64::INFINITY;
        let min_c = self.links.iter().map(|&(_, c)| c).fold(f64::INFINITY, f64::min);
        for &(src, msg) in ctx.inbox() {
            let PayDualMsg::AnnounceOpening(f) = msg else {
                continue;
            };
            let Ok(idx) = self.links.binary_search_by_key(&src, |(id, _)| *id) else {
                continue;
            };
            let bundle = self.links[idx].1 + f;
            if bundle < target {
                target = bundle;
                self.fallback = Some(idx);
            }
        }
        if !target.is_finite() {
            // Every announcement was lost (fault injection): stay at the
            // cheapest link and let the fallback extraction recover.
            self.fallback = Some(
                self.links
                    .iter()
                    .enumerate()
                    .min_by(|(_, (_, a)), (_, (_, b))| a.total_cmp(b))
                    .map(|(idx, _)| idx)
                    .expect("instance invariant: every client has a link"),
            );
            self.alpha = min_c;
            self.gamma = 1.0;
            self.cap = min_c;
            return;
        }
        if target <= 0.0 {
            // A free facility at a free link: connect at dual zero.
            self.alpha = 0.0;
            self.gamma = 1.0;
            self.cap = 0.0;
            return;
        }
        // Start at the cheapest connection cost; when that is zero, start a
        // 1/N fraction below the self-pay target so cooperative payment of
        // cheap facilities is still possible.
        let start = if min_c > 0.0 { min_c } else { target / self.size_bound.max(2.0) };
        self.alpha = start;
        self.cap = 2.0 * target;
        self.gamma = (self.cap / start).powf(1.0 / f64::from(self.phases));
    }

    /// Scans for the best eligible open facility under the configured
    /// connect rule (ties to the lowest id).
    fn best_open(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (idx, &(_, c)) in self.links.iter().enumerate() {
            if self.known_open[idx] && self.alpha >= c {
                let score = match self.connect_rule {
                    ConnectRule::MaxSlack => self.alpha - c,
                    ConnectRule::CheapestEligible => -c,
                };
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((idx, score));
                }
            }
        }
        best.map(|(idx, _)| idx)
    }

    fn step(&mut self, ctx: &mut StepCtx<'_, PayDualMsg>) {
        let r = ctx.round();
        if r == 0 {
            return;
        }
        if r == 1 {
            self.initialize(ctx);
            ctx.broadcast(PayDualMsg::Offer(self.alpha));
            return;
        }
        match r % 3 {
            0 => {
                // Connect round: digest OPEN announcements, then connect or
                // raise.
                for &(src, msg) in ctx.inbox() {
                    if matches!(msg, PayDualMsg::Open) {
                        let idx = self
                            .links
                            .binary_search_by_key(&src, |(id, _)| *id)
                            .expect("announcements only arrive over existing links");
                        self.known_open[idx] = true;
                    }
                }
                if let Some(idx) = self.best_open() {
                    let dst = self.links[idx].0;
                    ctx.send(dst, PayDualMsg::Connect(self.alpha))
                        .expect("connect targets are neighbors");
                    self.connected = Some(idx);
                    self.done = true;
                } else {
                    self.alpha = (self.alpha * self.gamma).min(self.cap);
                }
            }
            1 => {
                // Offer round (still active).
                ctx.broadcast(PayDualMsg::Offer(self.alpha));
            }
            _ => {}
        }
        if r >= self.last_round {
            // In the fault-free model `connected` is always set here (the
            // termination guarantee); under fault injection the harvest
            // falls back to `fallback_facility`.
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_respect_congest() {
        assert!(PayDualMsg::AnnounceOpening(1.0).size_bits() <= MAX_MESSAGE_BITS);
        assert!(PayDualMsg::Offer(1.0).size_bits() <= MAX_MESSAGE_BITS);
        assert!(PayDualMsg::Open.size_bits() <= MAX_MESSAGE_BITS);
        assert!(PayDualMsg::Connect(1.0).size_bits() <= MAX_MESSAGE_BITS);
    }

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [
            PayDualMsg::AnnounceOpening(1.5),
            PayDualMsg::Offer(1.5),
            PayDualMsg::Open,
            PayDualMsg::Connect(1.5),
        ];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        // Same payload value, different tags: encodings must differ.
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        // Value round-trips through the big-endian bytes.
        let enc = PayDualMsg::Offer(42.25).encode();
        assert_eq!(f64::from_be_bytes(enc[1..9].try_into().unwrap()), 42.25);
    }

    #[test]
    fn link_cost_lookup() {
        let links = vec![(NodeId::new(2), 1.5), (NodeId::new(7), 2.5)];
        assert_eq!(link_cost(&links, NodeId::new(7)), Some(2.5));
        assert_eq!(link_cost(&links, NodeId::new(3)), None);
    }

    #[test]
    fn build_nodes_shapes() {
        use distfl_instance::generators::{InstanceGenerator, UniformRandom};
        let inst = UniformRandom::new(3, 5).unwrap().generate(0).unwrap();
        let nodes = build_nodes(&inst, 4, ConnectRule::default());
        assert_eq!(nodes.len(), 8);
        assert!(matches!(nodes[0], PayDualNode::Facility(_)));
        assert!(matches!(nodes[2], PayDualNode::Facility(_)));
        assert!(matches!(nodes[3], PayDualNode::Client(_)));
        assert!(matches!(nodes[7], PayDualNode::Client(_)));
    }
}
