//! Closed-form bounds from the paper and from this reproduction's analysis.
//!
//! These formulas are plotted next to measured ratios in experiments E1–E3
//! so the *shape* of the trade-off can be compared against theory. None of
//! them are used by the algorithms themselves.

use distfl_instance::{spread, Instance};

/// The `H_n` harmonic number — the sequential greedy's tight approximation
/// factor for non-metric instances.
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

/// The paper's headline bound `√k · (m·ρ)^{1/√k} · ln(m+n)` for round
/// budget `k` on an `m`-facility, `n`-client instance of spread `rho`.
///
/// # Panics
///
/// Panics if `k == 0` or any size is zero.
pub fn paper_bound(k: u32, m: usize, n: usize, rho: f64) -> f64 {
    assert!(k > 0 && m > 0 && n > 0, "degenerate parameters");
    let sqrt_k = f64::from(k).sqrt();
    let base = (m as f64 * rho.max(1.0)).max(std::f64::consts::E);
    sqrt_k * base.powf(1.0 / sqrt_k) * ((m + n) as f64).ln().max(1.0)
}

/// This reproduction's PayDual bound `γ(s) · (1 + ln(m+n))` with
/// `γ(s) = B^{1/s}` the per-phase raise factor of the instance (see
/// `paydual::analysis`).
pub fn paydual_bound(instance: &Instance, phases: u32) -> f64 {
    let gamma = spread::phase_factor(instance, phases);
    let log_term =
        1.0 + ((instance.num_facilities() + instance.num_clients()) as f64).ln().max(0.0);
    gamma * log_term
}

/// The CONGEST round count PayDual uses for `s` phases: one bootstrap
/// round, one client-initialization round, three rounds per phase
/// (offer / open / connect) with one spare phase for the final-offer
/// boundary case, and one harvest round.
pub fn paydual_rounds(phases: u32) -> u32 {
    3 * (phases + 1) + 2
}

/// The round budget `k` of the paper that corresponds to `s` PayDual
/// phases (the paper counts total rounds).
pub fn k_of_phases(phases: u32) -> u32 {
    paydual_rounds(phases)
}

/// The CONGEST round count MetricBall uses for `s` phases: three rounds
/// per ball-growing phase (bid / deny / resolve) plus the three-round
/// coverage tail (demand / open / connect).
pub fn metricball_rounds(phases: u32) -> u32 {
    3 * phases + 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, PowerLaw};

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        // H_100 ~ ln(100) + 0.577.
        assert!((harmonic(100) - (100.0f64.ln() + 0.5772)).abs() < 0.01);
    }

    #[test]
    fn paper_bound_decreases_in_k() {
        let bounds: Vec<f64> =
            [1u32, 4, 16, 64, 256].iter().map(|&k| paper_bound(k, 50, 400, 1e4)).collect();
        for w in bounds.windows(2) {
            assert!(w[1] < w[0], "paper bound not decreasing: {bounds:?}");
        }
    }

    #[test]
    fn paper_bound_increases_in_rho() {
        let a = paper_bound(9, 50, 400, 10.0);
        let b = paper_bound(9, 50, 400, 1e6);
        assert!(b > a);
    }

    #[test]
    fn paydual_bound_decreases_in_phases() {
        let inst = PowerLaw::new(10, 40, 1e5).unwrap().generate(1).unwrap();
        let b1 = paydual_bound(&inst, 1);
        let b4 = paydual_bound(&inst, 4);
        let b16 = paydual_bound(&inst, 16);
        assert!(b1 > b4 && b4 > b16);
    }

    #[test]
    fn round_accounting() {
        assert_eq!(paydual_rounds(1), 8);
        assert_eq!(paydual_rounds(6), 23);
        assert_eq!(k_of_phases(6), 23);
    }
}
