//! Fractional opening vectors for the rounding stage.
//!
//! The PODC 2005 pipeline is *solve the LP approximately, then round*. The
//! dual-ascent stage ([`crate::paydual`]) produces near-integral primal
//! information, so for studying the rounding stage in isolation
//! (experiment E5) this module provides genuinely fractional, feasible
//! primal points:
//!
//! * [`spread_fractional`] — every client spreads its demand uniformly
//!   over its `width` cheapest links (the canonical "hard to round"
//!   shape),
//! * [`payment_fractional`] — openings proportional to the dual payments
//!   a [`distfl_lp::DualSolution`] offers each facility, completed to
//!   feasibility client by client.
//!
//! Both construct provably feasible [`FractionalSolution`]s (asserted in
//! tests via `check_feasible`).

use distfl_instance::{FacilityId, Instance};
use distfl_lp::{DualSolution, FractionalSolution};

/// A feasible fractional point where client `j` assigns `1/width` to each
/// of its `width` cheapest links (fewer if its degree is smaller), and
/// `y_i` is the maximum assignment placed on `i`.
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn spread_fractional(instance: &Instance, width: usize) -> FractionalSolution {
    assert!(width > 0, "width must be positive");
    let mut y = vec![0.0f64; instance.num_facilities()];
    let x: Vec<Vec<(FacilityId, f64)>> = instance
        .clients()
        .map(|j| {
            let mut links: Vec<(FacilityId, f64)> =
                instance.client_links(j).iter().map(|(i, c)| (FacilityId::new(i), c)).collect();
            links.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let take = width.min(links.len());
            let share = 1.0 / take as f64;
            links[..take]
                .iter()
                .map(|&(i, _)| {
                    y[i.index()] = y[i.index()].max(share);
                    (i, share)
                })
                .collect()
        })
        .collect();
    FractionalSolution::new(y, x)
}

/// A feasible fractional point whose openings reflect how much a dual
/// point pays each facility: `y_i = min(1, payment_i / f_i)` (`1` for free
/// facilities), then each client covers itself greedily over its cheapest
/// links, raising `y` where needed so that `x ≤ y` and `Σx = 1` hold
/// exactly.
pub fn payment_fractional(instance: &Instance, dual: &DualSolution) -> FractionalSolution {
    let mut y: Vec<f64> = instance
        .facilities()
        .map(|i| {
            let f = instance.opening_cost(i).value();
            if f == 0.0 {
                1.0
            } else {
                (dual.payment(instance, i) / f).min(1.0)
            }
        })
        .collect();
    let x: Vec<Vec<(FacilityId, f64)>> = instance
        .clients()
        .map(|j| {
            let mut links: Vec<(FacilityId, f64)> =
                instance.client_links(j).iter().map(|(i, c)| (FacilityId::new(i), c)).collect();
            links.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let mut need = 1.0f64;
            let mut assignment = Vec::new();
            for &(i, _) in &links {
                if need <= 0.0 {
                    break;
                }
                let take = y[i.index()].min(need);
                if take > 0.0 {
                    assignment.push((i, take));
                    need -= take;
                }
            }
            if need > 1e-12 {
                // Not enough fractional opening along the cheap links:
                // raise the cheapest facility's opening to absorb the rest.
                let (i, _) = links[0];
                y[i.index()] = (y[i.index()] + need).min(1.0).max(need);
                match assignment.iter_mut().find(|(fi, _)| *fi == i) {
                    Some((_, v)) => *v += need,
                    None => assignment.push((i, need)),
                }
            }
            assignment
        })
        .collect();
    FractionalSolution::new(y, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};

    #[test]
    fn spread_is_feasible_and_fractional() {
        let inst = UniformRandom::new(6, 20).unwrap().generate(1).unwrap();
        let frac = spread_fractional(&inst, 3);
        frac.check_feasible(&inst, 1e-9).unwrap();
        // Genuinely fractional: some y strictly inside (0, 1).
        assert!(frac.y().iter().any(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn spread_width_one_is_integral() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(2).unwrap();
        let frac = spread_fractional(&inst, 1);
        frac.check_feasible(&inst, 1e-9).unwrap();
        assert!(frac.y().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn spread_clamps_to_degree_on_sparse_instances() {
        let inst = GridNetwork::with_radius(8, 8, 5, 25, 2).unwrap().generate(3).unwrap();
        let frac = spread_fractional(&inst, 10);
        frac.check_feasible(&inst, 1e-9).unwrap();
    }

    #[test]
    fn payment_fractional_is_feasible_for_any_dual() {
        let inst = UniformRandom::new(6, 18).unwrap().generate(4).unwrap();
        for scale in [0.0, 1.0, 100.0] {
            let dual = DualSolution::new(vec![scale; 18]);
            let frac = payment_fractional(&inst, &dual);
            frac.check_feasible(&inst, 1e-9).unwrap();
        }
    }

    #[test]
    fn stronger_duals_open_more() {
        let inst = UniformRandom::new(6, 18).unwrap().generate(5).unwrap();
        let weak = payment_fractional(&inst, &DualSolution::new(vec![0.0; 18]));
        let strong = payment_fractional(&inst, &DualSolution::new(vec![500.0; 18]));
        let sum = |f: &FractionalSolution| f.y().iter().sum::<f64>();
        assert!(sum(&strong) >= sum(&weak));
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let inst = UniformRandom::new(2, 2).unwrap().generate(0).unwrap();
        let _ = spread_fractional(&inst, 0);
    }
}
