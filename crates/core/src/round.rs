//! **DistRound** — distributed randomized rounding in the CONGEST model.
//!
//! Consumes a fractional opening vector (each facility knows its own `y_i`,
//! each client knows its own fractional support — purely local data) and
//! produces a feasible integral solution:
//!
//! * **Trials** (`T` of them, 2 rounds each): facility `i` opens with
//!   probability `min(1, λ·y_i)` — independently per trial, sticky once
//!   open — and announces `OPEN`; an unserved client connects to the
//!   cheapest announced facility in its fractional support.
//! * **Fallback** (2 rounds): a client still unserved after all trials
//!   forces open its cheapest `(c_ij + f_i)` bundle, so the output is
//!   feasible with probability 1.
//!
//! With `λ·T = Θ(log(n+m))` every client is served in the randomized
//! trials w.h.p. and the expected cost is `O(log(n+m))` times the
//! fractional objective — the `log(m+n)` factor of the paper's bound.
//! Experiment E5 sweeps `T` to trace the success/cost trade-off, and
//! cross-validates against the sequential oracle
//! [`distfl_lp::rounding::round`].
//!
//! Rounds: `2T + 5`, independent of the input size.

use distfl_congest::{CongestConfig, Network, NodeId, NodeLogic, Payload, StepCtx};
use distfl_instance::{FacilityId, Instance, Solution};
use distfl_lp::FractionalSolution;

use crate::error::CoreError;
use crate::model::{client_node, facility_node, node_role, topology_of, Role};

/// Parameters for [`distributed_round`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistRoundParams {
    /// Per-trial opening boost `λ`.
    pub boost: f64,
    /// Number of randomized trials `T`.
    pub trials: u32,
    /// Worker threads for the simulator.
    pub threads: Option<usize>,
    /// Optional deterministic message-drop plan (the output stays feasible
    /// because the fallback is a local decision).
    pub fault: Option<distfl_congest::FaultPlan>,
}

impl DistRoundParams {
    /// The standard configuration: `λ = 2`, `T = ⌈log₂(n+m)⌉ + 2`,
    /// computed safely for degenerate totals by
    /// [`distfl_lp::rounding::standard_trials`].
    pub fn for_instance(instance: &Instance) -> Self {
        DistRoundParams {
            boost: 2.0,
            trials: distfl_lp::rounding::standard_trials(
                instance.num_clients() + instance.num_facilities(),
            ),
            threads: None,
            fault: None,
        }
    }
}

/// Total CONGEST rounds for the given trial count.
pub fn rounding_rounds(trials: u32) -> u32 {
    2 * trials + 5
}

/// Messages of the rounding protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RoundMsg {
    /// Facility → clients, round 0: opening cost (for the fallback).
    Announce(f64),
    /// Facility → clients: "I am open".
    Open,
    /// Client → facility: connection.
    Connect,
    /// Client → facility: forced opening (fallback).
    Force,
}

impl Payload for RoundMsg {
    fn size_bits(&self) -> u64 {
        match self {
            RoundMsg::Announce(_) => 72,
            _ => 8,
        }
    }

    /// Canonical wire encoding: one tag byte, plus the big-endian opening
    /// cost for `Announce` — exactly the [`RoundMsg::size_bits`] budget.
    /// Used by the wire-format test to keep the declared sizes honest.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(9);
        match self {
            RoundMsg::Announce(v) => {
                b.put_u8(0);
                b.put_f64(*v);
            }
            RoundMsg::Open => b.put_u8(1),
            RoundMsg::Connect => b.put_u8(2),
            RoundMsg::Force => b.put_u8(3),
        }
        b.freeze()
    }
}

#[derive(Debug, Clone)]
enum RoundNode {
    Facility(FacilityState),
    Client(ClientState),
}

#[derive(Debug, Clone)]
struct FacilityState {
    y: f64,
    /// The true opening cost, announced for the clients' fallback choice.
    y_opening_cost: f64,
    boost: f64,
    trials: u32,
    open: bool,
    used: bool,
    last_round: u32,
    done: bool,
}

#[derive(Debug, Clone)]
struct ClientState {
    /// All links `(facility node, cost)`, sorted by node id.
    links: Vec<(NodeId, f64)>,
    /// Whether each link is in the fractional support (aligned).
    in_support: Vec<bool>,
    opening: Vec<f64>,
    trials: u32,
    known_open: Vec<bool>,
    assigned: Option<usize>,
    served_in_trial: Option<u32>,
    last_round: u32,
    done: bool,
}

impl NodeLogic for RoundNode {
    type Msg = RoundMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, RoundMsg>) {
        match self {
            RoundNode::Facility(f) => f.step(ctx),
            RoundNode::Client(c) => c.step(ctx),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            RoundNode::Facility(f) => f.done,
            RoundNode::Client(c) => c.done,
        }
    }
}

impl FacilityState {
    fn step(&mut self, ctx: &mut StepCtx<'_, RoundMsg>) {
        let r = ctx.round();
        if r == 0 {
            ctx.broadcast(RoundMsg::Announce(self.y_opening_cost));
        } else if r % 2 == 1 && (r - 1) / 2 < self.trials {
            // Trial round: flip the coin, announce if open.
            if !self.open && ctx.rng().bernoulli((self.boost * self.y).min(1.0)) {
                self.open = true;
            }
            if self.open {
                ctx.broadcast(RoundMsg::Open);
            }
        } else if r % 2 == 0 && r >= 2 {
            // Harvest: record connections and forced openings.
            for &(_, msg) in ctx.inbox() {
                match msg {
                    RoundMsg::Connect => self.used = true,
                    RoundMsg::Force => {
                        self.open = true;
                        self.used = true;
                    }
                    _ => {}
                }
            }
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

impl ClientState {
    fn step(&mut self, ctx: &mut StepCtx<'_, RoundMsg>) {
        let r = ctx.round();
        if r == 0 {
            return;
        }
        if r == 1 {
            // Record announcements by sender; drops (fault injection) leave
            // the slot at infinity so the fallback avoids that facility
            // unless nothing else is known.
            self.opening = vec![f64::INFINITY; self.links.len()];
            for &(src, msg) in ctx.inbox() {
                if let RoundMsg::Announce(f) = msg {
                    if let Ok(idx) = self.links.binary_search_by_key(&src, |(id, _)| *id) {
                        self.opening[idx] = f;
                    }
                }
            }
            // Round 1 is also the first trial round for facilities; the
            // client reacts starting round 2.
            return;
        }
        let fallback_round = 2 * self.trials + 3;
        if r % 2 == 0 && r < fallback_round {
            // React to trial announcements.
            for &(src, msg) in ctx.inbox() {
                if matches!(msg, RoundMsg::Open) {
                    let idx = self
                        .links
                        .binary_search_by_key(&src, |(id, _)| *id)
                        .expect("announcements only arrive over existing links");
                    self.known_open[idx] = true;
                }
            }
            if self.assigned.is_none() {
                let best = self
                    .links
                    .iter()
                    .enumerate()
                    .filter(|(idx, _)| self.in_support[*idx] && self.known_open[*idx])
                    .min_by(|(ia, (_, ca)), (ib, (_, cb))| ca.total_cmp(cb).then(ia.cmp(ib)))
                    .map(|(idx, _)| idx);
                if let Some(idx) = best {
                    self.assigned = Some(idx);
                    self.served_in_trial = Some((r - 2) / 2);
                    ctx.send(self.links[idx].0, RoundMsg::Connect)
                        .expect("connection targets are neighbors");
                    self.done = true;
                }
            }
        } else if r == fallback_round && self.assigned.is_none() {
            let (idx, _) = self
                .links
                .iter()
                .enumerate()
                .map(|(idx, &(_, c))| {
                    let f = self.opening[idx];
                    (idx, if f.is_finite() { c + f } else { f64::MAX })
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .expect("instance invariant: every client has a link");
            self.assigned = Some(idx);
            ctx.send(self.links[idx].0, RoundMsg::Force).expect("fallback target is a neighbor");
            self.done = true;
        }
        if r >= self.last_round {
            self.done = true;
        }
    }
}

/// Diagnostics of a distributed rounding run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistRoundOutcome {
    /// The feasible integral solution.
    pub solution: Solution,
    /// CONGEST statistics.
    pub transcript: distfl_congest::Transcript,
    /// Clients served by the deterministic fallback.
    pub fallback_clients: usize,
    /// Trial index (0-based) at which each randomized-served client
    /// connected.
    pub served_in_trial: Vec<Option<u32>>,
}

/// Rounds `fractional` into an integral solution over the instance's
/// CONGEST network.
///
/// # Errors
///
/// Returns a [`CoreError`] for invalid parameters or a fractional point
/// whose shape does not match the instance.
pub fn distributed_round(
    instance: &Instance,
    fractional: &FractionalSolution,
    params: DistRoundParams,
    seed: u64,
) -> Result<DistRoundOutcome, CoreError> {
    let _span = distfl_obs::span_arg("solver", "distround", u64::from(params.trials));
    if !(params.boost.is_finite() && params.boost > 0.0) {
        return Err(CoreError::InvalidParams {
            reason: format!("boost must be positive, got {}", params.boost),
        });
    }
    if fractional.y().len() != instance.num_facilities() {
        return Err(CoreError::InvalidParams {
            reason: "fractional solution shape does not match instance".into(),
        });
    }
    let m = instance.num_facilities();
    let last_round = rounding_rounds(params.trials) - 1;
    let mut nodes = Vec::with_capacity(m + instance.num_clients());
    for i in instance.facilities() {
        nodes.push(RoundNode::Facility(FacilityState {
            y: fractional.y()[i.index()],
            y_opening_cost: instance.opening_cost(i).value(),
            boost: params.boost,
            trials: params.trials,
            open: false,
            used: false,
            last_round,
            done: false,
        }));
    }
    for j in instance.clients() {
        let links: Vec<(NodeId, f64)> = instance
            .client_links(j)
            .iter()
            .map(|(i, c)| (facility_node(FacilityId::new(i)), c))
            .collect();
        let in_support: Vec<bool> = instance
            .client_links(j)
            .iter()
            .map(|(i, _)| fractional.x(j).iter().any(|&(fi, v)| fi.raw() == i && v > 0.0))
            .collect();
        nodes.push(RoundNode::Client(ClientState {
            known_open: vec![false; links.len()],
            opening: Vec::with_capacity(links.len()),
            links,
            in_support,
            trials: params.trials,
            assigned: None,
            served_in_trial: None,
            last_round,
            done: false,
        }));
    }
    let topo = topology_of(instance)?;
    let config =
        CongestConfig { threads: params.threads, fault: params.fault, ..CongestConfig::default() };
    let mut net = Network::with_config(topo, nodes, seed, config)?;
    net.run(rounding_rounds(params.trials))?;

    let mut assignment = vec![FacilityId::new(0); instance.num_clients()];
    let mut served_in_trial = vec![None; instance.num_clients()];
    let mut fallback = 0;
    for (index, node) in net.nodes().iter().enumerate() {
        if let (Role::Client(j), RoundNode::Client(c)) =
            (node_role(m, NodeId::new(index as u32)), node)
        {
            let idx = c.assigned.expect("fallback guarantees assignment");
            assignment[j.index()] = FacilityId::new(c.links[idx].0.raw());
            served_in_trial[j.index()] = c.served_in_trial;
            if c.served_in_trial.is_none() {
                fallback += 1;
            }
        }
    }
    let solution = Solution::from_assignment(instance, assignment)?;
    let _ = client_node(m, distfl_instance::ClientId::new(0));
    Ok(DistRoundOutcome {
        solution,
        transcript: net.into_transcript(),
        fallback_clients: fallback,
        served_in_trial,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraclp::spread_fractional;
    use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};

    #[test]
    fn output_is_always_feasible() {
        for seed in 0..8 {
            let inst = UniformRandom::new(6, 20).unwrap().generate(seed).unwrap();
            let frac = spread_fractional(&inst, 3);
            let out = distributed_round(&inst, &frac, DistRoundParams::for_instance(&inst), seed)
                .unwrap();
            out.solution.check_feasible(&inst).unwrap();
        }
    }

    #[test]
    fn round_count_matches_formula() {
        let inst = UniformRandom::new(5, 15).unwrap().generate(1).unwrap();
        let frac = spread_fractional(&inst, 2);
        let params = DistRoundParams { boost: 2.0, trials: 4, threads: None, fault: None };
        let out = distributed_round(&inst, &frac, params, 3).unwrap();
        assert_eq!(out.transcript.num_rounds(), rounding_rounds(4));
    }

    #[test]
    fn zero_trials_serves_everyone_by_fallback() {
        let inst = UniformRandom::new(5, 12).unwrap().generate(2).unwrap();
        let frac = spread_fractional(&inst, 2);
        let params = DistRoundParams { boost: 2.0, trials: 0, threads: None, fault: None };
        let out = distributed_round(&inst, &frac, params, 1).unwrap();
        assert_eq!(out.fallback_clients, 12);
        out.solution.check_feasible(&inst).unwrap();
    }

    #[test]
    fn enough_trials_rarely_fall_back() {
        let inst = UniformRandom::new(6, 30).unwrap().generate(3).unwrap();
        let frac = spread_fractional(&inst, 3);
        let params = DistRoundParams { boost: 3.0, trials: 25, threads: None, fault: None };
        let out = distributed_round(&inst, &frac, params, 5).unwrap();
        assert_eq!(out.fallback_clients, 0);
        // Most clients served in the first few trials.
        let early = out.served_in_trial.iter().filter(|t| t.is_some_and(|v| v < 5)).count();
        assert!(early >= 25, "only {early}/30 served early");
    }

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [RoundMsg::Announce(1.5), RoundMsg::Open, RoundMsg::Connect, RoundMsg::Force];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        // Four variants: encodings must be pairwise distinct.
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        // The announced cost round-trips through the big-endian bytes.
        let enc = RoundMsg::Announce(42.25).encode();
        assert_eq!(f64::from_be_bytes(enc[1..9].try_into().unwrap()), 42.25);
    }

    #[test]
    fn congest_discipline_holds() {
        let inst = GridNetwork::new(8, 8, 5, 20).unwrap().generate(4).unwrap();
        let frac = spread_fractional(&inst, 2);
        let out = distributed_round(&inst, &frac, DistRoundParams::for_instance(&inst), 2).unwrap();
        assert!(out.transcript.congest_compliant(72));
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = UniformRandom::new(6, 18).unwrap().generate(5).unwrap();
        let frac = spread_fractional(&inst, 3);
        let params = DistRoundParams::for_instance(&inst);
        let a = distributed_round(&inst, &frac, params, 9).unwrap();
        let b = distributed_round(&inst, &frac, params, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn standard_trials_always_cover_the_smallest_instances() {
        // Regression for the float-cast collapse on tiny totals: the
        // smallest legal instance (1 facility, 1 client) must get at least
        // as many trials as the degenerate-helper floor, and growing the
        // instance never shrinks the budget.
        let tiny = inst_1x1();
        let p = DistRoundParams::for_instance(&tiny);
        assert_eq!(p.trials, 3);
        assert!(p.trials >= distfl_lp::rounding::standard_trials(0));
        let bigger = UniformRandom::new(6, 20).unwrap().generate(0).unwrap();
        assert!(DistRoundParams::for_instance(&bigger).trials >= p.trials);
    }

    fn inst_1x1() -> Instance {
        let mut b = distfl_instance::InstanceBuilder::new();
        let f = b.add_facility(distfl_instance::Cost::new(2.0).unwrap());
        let c = b.add_client();
        b.link(c, f, distfl_instance::Cost::new(1.0).unwrap()).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        let inst = UniformRandom::new(3, 6).unwrap().generate(0).unwrap();
        let frac = spread_fractional(&inst, 2);
        let bad = DistRoundParams { boost: 0.0, trials: 3, threads: None, fault: None };
        assert!(distributed_round(&inst, &frac, bad, 0).is_err());
        let mismatched = FractionalSolution::new(vec![1.0], vec![]);
        let params = DistRoundParams::for_instance(&inst);
        assert!(distributed_round(&inst, &mismatched, params, 0).is_err());
    }
}
