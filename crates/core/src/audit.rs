//! Distributed solution auditing.
//!
//! After a distributed run, each node holds only its *local* slice of the
//! solution (a facility knows whether it is open; a client knows its
//! assignment). A real deployment wants global answers — "what does this
//! placement cost?", "is anyone unserved?" — without collecting the whole
//! state at an operator. These audits compute them in `O(D)` rounds with
//! the BFS convergecast of [`distfl_congest::bfs`]:
//!
//! * [`distributed_cost`] — the total solution cost as a tree `Sum`,
//! * [`distributed_max_connection`] — the worst client's connection cost
//!   (a `Max`), the "stretch" dashboards track,
//! * [`distributed_open_count`] — how many facilities are open,
//! * [`distributed_fault_audit`] — the network-wide worst fault
//!   accusation (a `Max` over [`distfl_congest::encode_accusation`]
//!   values), naming a corrupted node without any central collection.
//!
//! The first three also serve as end-to-end cross-checks of the
//! aggregation substrate: their results must match the offline evaluation
//! exactly.

use distfl_congest::bfs::{aggregate, AggregateOp};
use distfl_congest::{decode_accusation, NodeId, Transcript};
use distfl_instance::{Instance, Solution};

use crate::error::CoreError;
use crate::model::topology_of;

/// Per-node local values for an audit: facility nodes first, then clients.
fn local_values<F, C>(instance: &Instance, facility: F, client: C) -> Vec<f64>
where
    F: Fn(distfl_instance::FacilityId) -> f64,
    C: Fn(distfl_instance::ClientId) -> f64,
{
    instance.facilities().map(facility).chain(instance.clients().map(client)).collect()
}

/// Runs one aggregate over the instance's communication graph.
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] if the communication graph is
/// disconnected (tree aggregation needs a connected graph), and
/// propagates simulation errors.
fn run_audit(
    instance: &Instance,
    values: Vec<f64>,
    op: AggregateOp,
) -> Result<(f64, Transcript), CoreError> {
    let topology = topology_of(instance)?;
    if !topology.is_connected() {
        return Err(CoreError::InvalidParams {
            reason: "audits need a connected communication graph".to_owned(),
        });
    }
    aggregate(&topology, NodeId::new(0), &values, op).map_err(CoreError::from)
}

/// Computes the total cost of `solution` distributively (`O(D)` rounds).
/// Every node contributes only local knowledge: open facilities their
/// opening cost, clients their assigned connection cost.
///
/// # Errors
///
/// See [`distributed_cost`]'s module docs; also fails if `solution` is
/// infeasible for `instance`.
pub fn distributed_cost(
    instance: &Instance,
    solution: &Solution,
) -> Result<(f64, Transcript), CoreError> {
    solution.check_feasible(instance)?;
    let values = local_values(
        instance,
        |i| if solution.is_open(i) { instance.opening_cost(i).value() } else { 0.0 },
        |j| {
            instance
                .connection_cost(j, solution.assigned(j))
                .expect("feasible solution uses existing links")
                .value()
        },
    );
    run_audit(instance, values, AggregateOp::Sum)
}

/// Computes the worst single connection cost distributively.
///
/// # Errors
///
/// Same conditions as [`distributed_cost`].
pub fn distributed_max_connection(
    instance: &Instance,
    solution: &Solution,
) -> Result<(f64, Transcript), CoreError> {
    solution.check_feasible(instance)?;
    let values = local_values(
        instance,
        |_| f64::NEG_INFINITY,
        |j| {
            instance
                .connection_cost(j, solution.assigned(j))
                .expect("feasible solution uses existing links")
                .value()
        },
    );
    run_audit(instance, values, AggregateOp::Max)
}

/// Counts open facilities distributively.
///
/// # Errors
///
/// Same conditions as [`distributed_cost`].
pub fn distributed_open_count(
    instance: &Instance,
    solution: &Solution,
) -> Result<(f64, Transcript), CoreError> {
    solution.check_feasible(instance)?;
    let values = local_values(instance, |i| if solution.is_open(i) { 1.0 } else { 0.0 }, |_| 0.0);
    run_audit(instance, values, AggregateOp::Sum)
}

/// Aggregates per-node fault accusations into the network-wide worst
/// offender, distributively (`O(D)` rounds).
///
/// This is the second half of fault attribution: after a simulated run
/// (see [`crate::paydual::PayDual::run_simulated`]) every node holds one
/// encoded accusation — the worst fault it observed *on its own edges*,
/// produced by [`distfl_congest::encode_accusation`]. Because the
/// encoding orders by severity first, one `Max` convergecast surfaces the
/// globally worst accusation, which decodes back to
/// `(accused node, severity)`. Returns `None` when nobody observed
/// anything (all severities zero).
///
/// # Errors
///
/// Returns [`CoreError::InvalidParams`] if `accusations` is not one value
/// per node (facilities then clients) or the communication graph is
/// disconnected; propagates simulation errors.
pub fn distributed_fault_audit(
    instance: &Instance,
    accusations: &[f64],
) -> Result<(Option<(NodeId, u32)>, Transcript), CoreError> {
    let expected = instance.num_facilities() + instance.num_clients();
    if accusations.len() != expected {
        return Err(CoreError::InvalidParams {
            reason: format!(
                "need one accusation per node: got {}, expected {expected}",
                accusations.len()
            ),
        });
    }
    let (worst, transcript) = run_audit(instance, accusations.to_vec(), AggregateOp::Max)?;
    let named = decode_accusation(worst).filter(|&(_, severity)| severity > 0);
    Ok((named, transcript))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy;
    use crate::paydual::{PayDual, PayDualParams};
    use crate::runner::FlAlgorithm;
    use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};

    #[test]
    fn audited_cost_matches_offline_evaluation() {
        for seed in 0..4 {
            let inst = UniformRandom::new(6, 20).unwrap().generate(seed).unwrap();
            let (solution, _) = greedy::solve(&inst);
            let (cost, t) = distributed_cost(&inst, &solution).unwrap();
            assert!((cost - solution.cost(&inst).value()).abs() < 1e-9, "seed {seed}");
            assert!(t.congest_compliant(72));
        }
    }

    #[test]
    fn audit_matches_after_a_distributed_run() {
        let inst = UniformRandom::new(8, 30).unwrap().generate(5).unwrap();
        let out = PayDual::new(PayDualParams::with_phases(8)).run(&inst, 1).unwrap();
        let (cost, _) = distributed_cost(&inst, &out.solution).unwrap();
        assert!((cost - out.solution.cost(&inst).value()).abs() < 1e-9);
        let (open, _) = distributed_open_count(&inst, &out.solution).unwrap();
        assert_eq!(open as usize, out.solution.num_open());
    }

    #[test]
    fn max_connection_matches_the_offline_maximum() {
        let inst = UniformRandom::new(5, 15).unwrap().generate(2).unwrap();
        let (solution, _) = greedy::solve(&inst);
        let (got, _) = distributed_max_connection(&inst, &solution).unwrap();
        let expected = inst
            .clients()
            .map(|j| inst.connection_cost(j, solution.assigned(j)).unwrap().value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn audits_cost_diameter_not_size_rounds() {
        let small = UniformRandom::new(4, 10).unwrap().generate(1).unwrap();
        let large = UniformRandom::new(12, 200).unwrap().generate(1).unwrap();
        let run = |inst: &Instance| {
            let (s, _) = greedy::solve(inst);
            distributed_cost(inst, &s).unwrap().1.num_rounds()
        };
        // Dense bipartite graphs have diameter <= 3 regardless of size, so
        // the audits' round counts stay within a small constant band.
        let a = run(&small);
        let b = run(&large);
        assert!(a <= 12 && b <= 12, "audit rounds grew: {a} vs {b}");
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let inst = GridNetwork::with_radius(12, 12, 6, 20, 1).unwrap().generate(3).unwrap();
        let topo = topology_of(&inst).unwrap();
        let (solution, _) = greedy::solve(&inst);
        let outcome = distributed_cost(&inst, &solution);
        if topo.is_connected() {
            assert!(outcome.is_ok());
        } else {
            assert!(matches!(outcome, Err(CoreError::InvalidParams { .. })));
        }
    }

    #[test]
    fn fault_audit_names_the_lossy_node() {
        use distfl_congest::{FaultVerdict, SimConfig};
        let inst = UniformRandom::new(6, 24).unwrap().generate(4).unwrap();
        let culprit = NodeId::new(2); // a facility node
        let config = SimConfig { lossy_nodes: vec![(culprit, 0.7)], ..SimConfig::default() };
        let run =
            PayDual::new(PayDualParams::with_phases(10)).run_simulated(&inst, 3, config).unwrap();
        assert!(matches!(
            run.verdicts[culprit.index()],
            FaultVerdict::DroppedAboveThreshold { .. }
        ));
        let (named, t) = distributed_fault_audit(&inst, &run.accusations).unwrap();
        let (accused, severity) = named.expect("the corruption must be detected");
        assert_eq!(accused, culprit, "the audit must name the corrupted node");
        assert_eq!(
            severity,
            FaultVerdict::DroppedAboveThreshold { dropped: 1, sent: 1 }.severity()
        );
        assert!(t.congest_compliant(72));
    }

    #[test]
    fn fault_audit_is_silent_on_clean_runs() {
        use distfl_congest::SimConfig;
        let inst = UniformRandom::new(5, 15).unwrap().generate(1).unwrap();
        let run = PayDual::new(PayDualParams::with_phases(6))
            .run_simulated(&inst, 7, SimConfig::default())
            .unwrap();
        assert!(run.verdicts.iter().all(|v| !v.is_faulty()));
        let (named, _) = distributed_fault_audit(&inst, &run.accusations).unwrap();
        assert_eq!(named, None);
    }

    #[test]
    fn fault_audit_rejects_wrong_accusation_shape() {
        let inst = UniformRandom::new(3, 6).unwrap().generate(0).unwrap();
        let err = distributed_fault_audit(&inst, &[0.0; 4]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParams { .. }));
    }

    #[test]
    fn infeasible_solutions_are_rejected_up_front() {
        // Shape mismatch: a solution for a 4-facility instance audited
        // against a 3-facility one.
        let inst = UniformRandom::new(3, 6).unwrap().generate(0).unwrap();
        let other = UniformRandom::new(4, 6).unwrap().generate(0).unwrap();
        let (solution, _) = greedy::solve(&other);
        assert!(distributed_cost(&inst, &solution).is_err());
        // Client-count mismatch is also caught.
        let fewer = UniformRandom::new(3, 4).unwrap().generate(0).unwrap();
        let (short, _) = greedy::solve(&fewer);
        assert!(distributed_cost(&inst, &short).is_err());
    }
}
