//! Sequential star greedy (Hochbaum) — the `H_n`-approximation yardstick.
//!
//! Repeatedly pick the *star* (a facility plus a subset of unserved linked
//! clients) minimizing `(residual opening cost + Σ connection costs) /
//! #clients`, open the facility, and serve the star. This is the algorithm
//! whose continuous selection order the distributed PayDual compresses into
//! `O(k)` rounds; for non-metric instances its `H_n` factor is optimal (up
//! to constants) unless P = NP.
//!
//! The implementation also records the classic dual-fitting certificate:
//! client `j` served at ratio `r` gets `α_j = r`, and `α / H_n` is
//! dual-feasible — so the greedy run itself certifies a lower bound of
//! `cost / H_n` on `OPT`.
//!
//! # Lazy-evaluation heap
//!
//! [`solve_detailed`] avoids the naive per-iteration rescan of every
//! facility's star. Once a facility's star ratio is computed it is cached
//! in a min-heap keyed by `(ratio, facility id)`. Serving clients only
//! *shrinks* the unserved pool, and a star available after a removal was
//! available before it, so a facility's best ratio is monotone
//! non-decreasing while the facility stays closed — cached keys are lower
//! bounds. (Opening a facility drops its residual to zero, which *can*
//! lower its ratio; that only happens to the facility just selected, whose
//! key is recomputed and reinserted immediately.) Pop → recompute →
//! compare against the next cached key → select or reinsert therefore
//! yields exactly the naive selection sequence, including `(ratio,
//! facility)` tie-breaks; [`solve_detailed_reference`] retains the naive
//! scan and the equivalence is pinned bit-for-bit by proptests.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use distfl_instance::{kernels, ClientId, FacilityId, Instance, Solution};
use distfl_lp::DualSolution;

use crate::error::CoreError;
use crate::runner::{FlAlgorithm, Outcome};
use crate::theory::harmonic;

/// The sequential star-greedy baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StarGreedy;

impl StarGreedy {
    /// Creates the baseline.
    pub fn new() -> Self {
        StarGreedy
    }
}

/// The best star of facility `i` over currently unserved clients:
/// `(ratio, clients)` minimizing `(residual_f + Σ c)/k`, or `None` if no
/// unserved client is linked.
fn best_star(
    instance: &Instance,
    i: FacilityId,
    residual_f: f64,
    served: &[bool],
) -> Option<(f64, Vec<distfl_instance::ClientId>)> {
    let mut costs: Vec<(f64, distfl_instance::ClientId)> = instance
        .facility_links(i)
        .iter()
        .filter(|&(j, _)| !served[j as usize])
        .map(|(j, c)| (c, ClientId::new(j)))
        .collect();
    if costs.is_empty() {
        return None;
    }
    costs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut best_ratio = f64::INFINITY;
    let mut best_k = 0;
    let mut prefix = 0.0;
    for (k, (c, _)) in costs.iter().enumerate() {
        prefix += c;
        let ratio = (residual_f + prefix) / (k + 1) as f64;
        if ratio < best_ratio {
            best_ratio = ratio;
            best_k = k + 1;
        }
    }
    let clients = costs[..best_k].iter().map(|&(_, j)| j).collect();
    Some((best_ratio, clients))
}

/// Full output of a greedy run.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyRun {
    /// The greedy solution.
    pub solution: Solution,
    /// Per-client service ratio (the dual certificate).
    pub ratios: Vec<f64>,
    /// Number of stars picked (iterations of the outer loop).
    pub iterations: u32,
}

/// Runs star greedy, returning the solution and the per-client service
/// ratios (the dual certificate).
pub fn solve(instance: &Instance) -> (Solution, Vec<f64>) {
    let run = solve_detailed(instance);
    (run.solution, run.ratios)
}

/// Heap key ordered by `(ratio, facility id)`. Ratios are finite and
/// non-negative, so `total_cmp` coincides with numeric order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StarKey {
    ratio: f64,
    fid: u32,
}

impl Eq for StarKey {}

impl Ord for StarKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio.total_cmp(&other.ratio).then(self.fid.cmp(&other.fid))
    }
}

impl PartialOrd for StarKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-facility link rows sorted by `(cost, client id)` — the order
/// `best_star` sorts into — in SoA form: split client-id/cost lanes behind
/// shared offsets, with a per-row live watermark.
///
/// Serving is monotone, so served entries are *compacted away in place*
/// (order-preserving, via [`kernels::retain_unmarked`]) rather than
/// skipped on every scan: each re-evaluation is then a branch-free
/// [`kernels::fused_ratio_accumulate`] over a pure cost slice, and rows
/// shrink as the run progresses instead of being re-filtered in full. The
/// compacted live prefix is exactly the subsequence a served-skipping
/// scan of the original row visits, so prefix sums — and therefore
/// ratios — stay bit-identical to the reference.
pub(crate) struct SortedStars {
    pub(crate) offsets: Vec<u32>,
    /// Absolute end of each facility's live (unserved) prefix.
    pub(crate) live_end: Vec<u32>,
    pub(crate) ids: Vec<u32>,
    pub(crate) costs: Vec<f64>,
}

impl SortedStars {
    pub(crate) fn build(instance: &Instance) -> Self {
        let m = instance.num_facilities();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut ids = Vec::with_capacity(instance.num_links());
        let mut costs = Vec::with_capacity(instance.num_links());
        let mut scratch: Vec<(f64, u32)> = Vec::new();
        offsets.push(0u32);
        for i in instance.facilities() {
            scratch.clear();
            scratch.extend(instance.facility_links(i).iter().map(|(j, c)| (c, j)));
            scratch.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            ids.extend(scratch.iter().map(|&(_, j)| j));
            costs.extend(scratch.iter().map(|&(c, _)| c));
            offsets.push(ids.len() as u32);
        }
        let live_end = offsets[1..].to_vec();
        SortedStars { offsets, live_end, ids, costs }
    }

    /// An empty structure to be filled by `copy_from` or the warm-cache
    /// patch pass.
    pub(crate) fn empty() -> Self {
        SortedStars { offsets: vec![0], live_end: Vec::new(), ids: Vec::new(), costs: Vec::new() }
    }

    /// Overwrites `self` with `src`, reusing allocations. The run loop
    /// consumes the rows destructively (in-place compaction), so warm
    /// solves copy a pristine structure into a working one per run.
    pub(crate) fn copy_from(&mut self, src: &SortedStars) {
        self.offsets.clear();
        self.offsets.extend_from_slice(&src.offsets);
        self.live_end.clear();
        self.live_end.extend_from_slice(&src.live_end);
        self.ids.clear();
        self.ids.extend_from_slice(&src.ids);
        self.costs.clear();
        self.costs.extend_from_slice(&src.costs);
    }

    /// The full (pristine) row of facility `i` as `(ids, costs)` lanes.
    pub(crate) fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (&self.ids[lo..hi], &self.costs[lo..hi])
    }

    /// The live portion of facility `i`'s row as `(ids, costs)` lanes.
    fn live(&self, i: FacilityId) -> (&[u32], &[f64]) {
        let lo = self.offsets[i.index()] as usize;
        let hi = self.live_end[i.index()] as usize;
        (&self.ids[lo..hi], &self.costs[lo..hi])
    }

    /// Drops served clients from facility `i`'s live row (stable, in
    /// place), returning the new live length.
    fn compact(&mut self, i: FacilityId, served: &[bool]) -> usize {
        let lo = self.offsets[i.index()] as usize;
        let hi = self.live_end[i.index()] as usize;
        let w = kernels::retain_unmarked(&mut self.ids[lo..hi], &mut self.costs[lo..hi], served);
        self.live_end[i.index()] = (lo + w) as u32;
        w
    }
}

/// Per-facility iteration-0 star ratios — the exact values the heap is
/// seeded with. `NaN` marks a facility with no linked clients (nothing to
/// seed); `fused_ratio_accumulate` never returns `NaN` under the lane
/// input contract, so the sentinel is unambiguous.
pub(crate) fn seed_ratios(instance: &Instance, stars: &SortedStars) -> Vec<f64> {
    instance
        .facilities()
        .map(|i| {
            let (_, costs) = stars.row(i.index());
            if costs.is_empty() {
                f64::NAN
            } else {
                kernels::fused_ratio_accumulate(costs, instance.opening_cost(i).value()).0
            }
        })
        .collect()
}

/// Reusable greedy run state; `run_greedy` resets it per call, so warm
/// solves allocate nothing.
#[derive(Default)]
pub(crate) struct GreedyScratch {
    served: Vec<bool>,
    opened: Vec<bool>,
    assignment: Vec<FacilityId>,
    heap: BinaryHeap<std::cmp::Reverse<StarKey>>,
}

/// The lazy-evaluation heap run over prepared rows and iteration-0 seeds.
///
/// `stars` must hold the `(cost, client id)`-sorted rows of `instance`
/// with full live ranges, and `seeds[i]` the exact iteration-0 ratio of
/// facility `i` (`NaN` for empty rows). Both the cold path and the warm
/// caches funnel into this loop, so their outputs are identical by
/// construction: the heap's pop order is a pure function of its *content*
/// (keys are totally ordered and per-facility unique), never of push
/// order.
pub(crate) fn run_greedy(
    instance: &Instance,
    stars: &mut SortedStars,
    seeds: &[f64],
    scratch: &mut GreedyScratch,
) -> GreedyRun {
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let served = &mut scratch.served;
    served.clear();
    served.resize(n, false);
    let opened = &mut scratch.opened;
    opened.clear();
    opened.resize(m, false);
    let assignment = &mut scratch.assignment;
    assignment.clear();
    assignment.resize(n, FacilityId::new(0));
    let mut ratios = vec![0.0f64; n];
    let mut remaining = n;
    let mut iterations = 0u32;

    let heap = &mut scratch.heap;
    heap.clear();
    for (i, &seed) in seeds.iter().enumerate() {
        if !seed.is_nan() {
            heap.push(std::cmp::Reverse(StarKey { ratio: seed, fid: i as u32 }));
        }
    }

    while remaining > 0 {
        let std::cmp::Reverse(key) =
            heap.pop().expect("instance invariant: every client is linked, so a star exists");
        let i = FacilityId::new(key.fid);
        let residual = if opened[i.index()] { 0.0 } else { instance.opening_cost(i).value() };
        if stars.compact(i, served) == 0 {
            // Every linked client is served; this facility is permanently
            // out of stars (serving never un-serves).
            continue;
        }
        let (ratio, k) = {
            let (_, costs) = stars.live(i);
            kernels::fused_ratio_accumulate(costs, residual)
        };
        let fresh = StarKey { ratio, fid: key.fid };
        // Cached keys are lower bounds on true keys, so beating the best
        // cached key proves global minimality (ids are unique, so the
        // lexicographic comparison is never an exact tie across facilities).
        if heap.peek().is_some_and(|std::cmp::Reverse(top)| *top < fresh) {
            heap.push(std::cmp::Reverse(fresh));
            continue;
        }
        iterations += 1;
        opened[i.index()] = true;
        // The row was just compacted, so its first `k` entries are exactly
        // the star's (all-unserved) members.
        let (ids, _) = stars.live(i);
        for &jraw in &ids[..k] {
            let j = jraw as usize;
            debug_assert!(!served[j], "star members must all have been unserved");
            served[j] = true;
            assignment[j] = i;
            ratios[j] = ratio;
        }
        remaining -= k;
        // The winner's residual just dropped to zero; recompute eagerly so
        // its (possibly lower) new ratio re-enters the heap.
        if stars.compact(i, served) > 0 {
            let (_, costs) = stars.live(i);
            let (ratio, _) = kernels::fused_ratio_accumulate(costs, 0.0);
            heap.push(std::cmp::Reverse(StarKey { ratio, fid: key.fid }));
        }
    }

    let solution = Solution::from_assignment(instance, assignment.clone())
        .expect("greedy assigns over existing links");
    distfl_obs::counter("solver.greedy.iterations").add(iterations as u64);
    GreedyRun { solution, ratios, iterations }
}

/// Runs star greedy with full diagnostics (lazy-evaluation heap).
pub fn solve_detailed(instance: &Instance) -> GreedyRun {
    let _span = distfl_obs::span("solver", "greedy");
    let mut stars = SortedStars::build(instance);
    let seeds = seed_ratios(instance, &stars);
    let mut scratch = GreedyScratch::default();
    run_greedy(instance, &mut stars, &seeds, &mut scratch)
}

/// Runs star greedy with full diagnostics by the naive per-iteration
/// rescan. Retained as the reference implementation: `bench_solvers`
/// measures [`solve_detailed`] against it and the solver-equivalence
/// proptests pin bit-identical output.
pub fn solve_detailed_reference(instance: &Instance) -> GreedyRun {
    let n = instance.num_clients();
    let m = instance.num_facilities();
    let mut served = vec![false; n];
    let mut opened = vec![false; m];
    let mut assignment = vec![FacilityId::new(0); n];
    let mut ratios = vec![0.0f64; n];
    let mut remaining = n;
    let mut iterations = 0u32;

    while remaining > 0 {
        iterations += 1;
        let mut best: Option<(f64, FacilityId, Vec<distfl_instance::ClientId>)> = None;
        for i in instance.facilities() {
            let residual = if opened[i.index()] { 0.0 } else { instance.opening_cost(i).value() };
            if let Some((ratio, clients)) = best_star(instance, i, residual, &served) {
                let better = match &best {
                    None => true,
                    Some((r, bi, _)) => ratio < *r || (ratio == *r && i < *bi),
                };
                if better {
                    best = Some((ratio, i, clients));
                }
            }
        }
        let (ratio, i, clients) =
            best.expect("instance invariant: every client is linked, so a star exists");
        opened[i.index()] = true;
        for j in clients {
            served[j.index()] = true;
            assignment[j.index()] = i;
            ratios[j.index()] = ratio;
            remaining -= 1;
        }
    }

    let solution = Solution::from_assignment(instance, assignment)
        .expect("greedy assigns over existing links");
    GreedyRun { solution, ratios, iterations }
}

impl FlAlgorithm for StarGreedy {
    fn name(&self) -> String {
        "greedy".to_owned()
    }

    fn run(&self, instance: &Instance, _seed: u64) -> Result<Outcome, CoreError> {
        let (solution, ratios) = solve(instance);
        // Dual-fitting certificate: ratios scaled by H_n are feasible.
        let h = harmonic(instance.num_clients());
        let alpha: Vec<f64> = ratios.iter().map(|r| r / h).collect();
        Ok(Outcome {
            solution,
            transcript: None,
            dual: Some(DualSolution::new(alpha)),
            modeled_rounds: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{AdversarialGreedy, InstanceGenerator, UniformRandom};
    use distfl_instance::{Cost, InstanceBuilder};
    use distfl_lp::exact;

    #[test]
    fn serves_everyone_feasibly() {
        for seed in 0..5 {
            let inst = UniformRandom::new(7, 25).unwrap().generate(seed).unwrap();
            let (sol, ratios) = solve(&inst);
            sol.check_feasible(&inst).unwrap();
            assert!(ratios.iter().all(|r| *r > 0.0));
        }
    }

    #[test]
    fn picks_the_obvious_shared_facility() {
        // One cheap facility serving everyone cheaply vs expensive singles.
        let mut b = InstanceBuilder::new();
        let hub = b.add_facility(Cost::new(2.0).unwrap());
        let solo = b.add_facility(Cost::new(100.0).unwrap());
        for _ in 0..4 {
            let j = b.add_client();
            b.link(j, hub, Cost::new(1.0).unwrap()).unwrap();
            b.link(j, solo, Cost::new(1.0).unwrap()).unwrap();
        }
        let inst = b.build().unwrap();
        let (sol, _) = solve(&inst);
        assert!(sol.is_open(hub));
        assert!(!sol.is_open(solo));
        assert_eq!(sol.cost(&inst).value(), 6.0);
    }

    #[test]
    fn is_fooled_by_the_adversarial_family() {
        let gen = AdversarialGreedy::new(16).unwrap();
        let inst = gen.generate(0).unwrap();
        let (sol, _) = solve(&inst);
        let cost = sol.cost(&inst).value();
        // Greedy should pay (close to) the H_n-inflated decoy cost.
        assert!(
            (cost - gen.greedy_cost()).abs() < 1e-6,
            "greedy paid {cost}, decoy trap is {}",
            gen.greedy_cost()
        );
        assert!(cost / gen.optimal_cost() > 2.0);
    }

    #[test]
    fn within_h_n_of_optimum_on_random_instances() {
        for seed in 0..8 {
            let inst = UniformRandom::new(6, 15).unwrap().generate(seed).unwrap();
            let (sol, _) = solve(&inst);
            let opt = exact::solve(&inst).unwrap().cost.value();
            let bound = harmonic(15) * opt;
            assert!(
                sol.cost(&inst).value() <= bound + 1e-9,
                "seed {seed}: greedy {} above H_n * OPT = {bound}",
                sol.cost(&inst).value()
            );
        }
    }

    #[test]
    fn dual_certificate_is_valid() {
        for seed in 0..5 {
            let inst = UniformRandom::new(6, 18).unwrap().generate(seed).unwrap();
            let outcome = StarGreedy::new().run(&inst, 0).unwrap();
            let dual = outcome.dual.unwrap();
            let opt = exact::solve(&inst).unwrap().cost.value();
            let lb = dual.lower_bound(&inst, distfl_lp::TOLERANCE);
            assert!(lb <= opt + 1e-6, "seed {seed}: certificate {lb} above OPT {opt}");
        }
    }

    #[test]
    fn reopened_facility_pays_opening_once() {
        // Facility serves one client at ratio r1, later picked again with
        // residual 0. Construct: hub f=10, c=1 for client A, c=100 for
        // client B; decoy f=1,c=1 for B only... simpler: just check that
        // total cost accounts each opening once on a crafted instance.
        let mut b = InstanceBuilder::new();
        let f = b.add_facility(Cost::new(10.0).unwrap());
        let a = b.add_client();
        let c = b.add_client();
        b.link(a, f, Cost::new(1.0).unwrap()).unwrap();
        b.link(c, f, Cost::new(50.0).unwrap()).unwrap();
        let inst = b.build().unwrap();
        let (sol, _) = solve(&inst);
        assert_eq!(sol.cost(&inst).value(), 10.0 + 1.0 + 50.0);
    }
}
