//! Property tests pinning the incremental solver hot paths to their naive
//! reference implementations, bit for bit.
//!
//! The lazy-heap greedy, the cached-assignment local search, and the
//! event-driven Jain–Vazirani dual ascent all claim *exact* equivalence
//! with the retained reference code — not approximate agreement. These
//! properties enforce that claim across the uniform-random, clustered, and
//! line generator families: solutions, dual ratios, iteration and move
//! counts, and costs must all compare equal as raw values.

use proptest::prelude::*;

use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{Clustered, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::Instance;

/// One instance from any of the three generator families.
fn any_instance() -> impl Strategy<Value = Instance> {
    (0u8..3, 1usize..10, 1usize..30, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => UniformRandom::new(m, n).unwrap().generate(seed).unwrap(),
        1 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        _ => LineCity::new(m, n).unwrap().generate(seed).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lazy_greedy_matches_reference_bitwise(inst in any_instance()) {
        let fast = greedy::solve_detailed(&inst);
        let slow = greedy::solve_detailed_reference(&inst);
        prop_assert_eq!(&fast.solution, &slow.solution);
        prop_assert_eq!(&fast.ratios, &slow.ratios);
        prop_assert_eq!(fast.iterations, slow.iterations);
    }

    #[test]
    fn cached_local_search_matches_reference_bitwise(inst in any_instance()) {
        // Start from the greedy solution: feasible, and identical for both.
        let (start, _) = greedy::solve(&inst);
        let fast = localsearch::optimize(&inst, &start, 100);
        let slow = localsearch::optimize_reference(&inst, &start, 100);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn cached_local_search_matches_reference_under_move_caps(
        inst in any_instance(),
        cap in 0u32..5,
    ) {
        let (start, _) = greedy::solve(&inst);
        let fast = localsearch::optimize(&inst, &start, cap);
        let slow = localsearch::optimize_reference(&inst, &start, cap);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn event_driven_dual_ascent_matches_reference_bitwise(inst in any_instance()) {
        let fast = jv::dual_ascent(&inst);
        let slow = jv::dual_ascent_reference(&inst);
        prop_assert_eq!(fast.alpha, slow.alpha);
        prop_assert_eq!(fast.temp_open, slow.temp_open);
    }
}
