//! Property tests pinning the incremental solver hot paths to their naive
//! reference implementations, bit for bit.
//!
//! The lazy-heap greedy, the cached-assignment local search, and the
//! event-driven Jain–Vazirani dual ascent all claim *exact* equivalence
//! with the retained reference code — not approximate agreement. These
//! properties enforce that claim across the uniform-random, clustered, and
//! line generator families: solutions, dual ratios, iteration and move
//! counts, and costs must all compare equal as raw values.
//!
//! The chunked scan kernels those hot paths are built on are pinned here
//! too, directly against their scalar reference twins, over lanes that mix
//! regular values with the awkward shapes: empty, short (1..=9, so every
//! chunk remainder path runs), all-equal (tie-breaks must pick the
//! reference's first index), subnormal, huge, and infinite.

use proptest::prelude::*;

use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{Clustered, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::{kernels, Instance};

/// One instance from any of the three generator families.
fn any_instance() -> impl Strategy<Value = Instance> {
    (0u8..3, 1usize..10, 1usize..30, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => UniformRandom::new(m, n).unwrap().generate(seed).unwrap(),
        1 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        _ => LineCity::new(m, n).unwrap().generate(seed).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lazy_greedy_matches_reference_bitwise(inst in any_instance()) {
        let fast = greedy::solve_detailed(&inst);
        let slow = greedy::solve_detailed_reference(&inst);
        prop_assert_eq!(&fast.solution, &slow.solution);
        prop_assert_eq!(&fast.ratios, &slow.ratios);
        prop_assert_eq!(fast.iterations, slow.iterations);
    }

    #[test]
    fn cached_local_search_matches_reference_bitwise(inst in any_instance()) {
        // Start from the greedy solution: feasible, and identical for both.
        let (start, _) = greedy::solve(&inst);
        let fast = localsearch::optimize(&inst, &start, 100);
        let slow = localsearch::optimize_reference(&inst, &start, 100);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn cached_local_search_matches_reference_under_move_caps(
        inst in any_instance(),
        cap in 0u32..5,
    ) {
        let (start, _) = greedy::solve(&inst);
        let fast = localsearch::optimize(&inst, &start, cap);
        let slow = localsearch::optimize_reference(&inst, &start, cap);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn event_driven_dual_ascent_matches_reference_bitwise(inst in any_instance()) {
        let fast = jv::dual_ascent(&inst);
        let slow = jv::dual_ascent_reference(&inst);
        prop_assert_eq!(fast.alpha, slow.alpha);
        prop_assert_eq!(fast.temp_open, slow.temp_open);
    }
}

/// Resolves a weighted element selector into one extreme-magnitude value:
/// exact zero, the smallest subnormal, near-overflow, `+inf`, or the
/// regular draw. The result respects the kernel input contract
/// (non-negative, NaN-free, no `-0.0`).
fn salted(sel: u8, regular: f64) -> f64 {
    match sel {
        0 => 0.0,
        1 => 5e-324,
        2 => 1e300,
        3 => f64::INFINITY,
        _ => regular,
    }
}

/// A cost lane salted with the extreme magnitudes. Half the draws are
/// truncated short (0..=9) so every chunk-remainder path runs; the rest
/// keep up to 40 elements to cover the chunked bodies.
fn cost_lane() -> impl Strategy<Value = Vec<f64>> {
    (prop::collection::vec((0u8..10, 0.0f64..1e3), 0..41), 0u8..2, 0usize..10).prop_map(
        |(raw, short, cap)| {
            let mut lane: Vec<f64> = raw.into_iter().map(|(sel, v)| salted(sel, v)).collect();
            if short == 1 {
                lane.truncate(cap);
            }
            lane
        },
    )
}

/// An all-equal lane: every index ties, so both scans must agree on the
/// *first* one.
fn equal_lane() -> impl Strategy<Value = Vec<f64>> {
    (0u8..4, 0.0f64..1e3, 1usize..18).prop_map(|(sel, v, len)| vec![salted(sel, v); len])
}

/// Parallel best/second/facility lanes as the local-search cache holds
/// them, plus a drop id that may or may not occur in the facility lane.
fn cache_lanes() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<u32>, u32)> {
    (
        prop::collection::vec(((3u8..10, 0.0f64..1e3), (3u8..10, 0.0f64..1e3), 0u32..6), 0..25),
        0u32..6,
    )
        .prop_map(|(rows, drop)| {
            let (mut best, mut second, mut fac) = (Vec::new(), Vec::new(), Vec::new());
            for ((bs, bv), (ss, sv), f) in rows {
                best.push(salted(bs, bv));
                second.push(salted(ss, sv));
                fac.push(f);
            }
            (best, second, fac, drop)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kernel_min_argmin_matches_reference(lane in cost_lane()) {
        let fast = kernels::min_argmin(&lane);
        let slow = kernels::min_argmin_reference(&lane);
        prop_assert_eq!(fast.map(|(k, v)| (k, v.to_bits())), slow.map(|(k, v)| (k, v.to_bits())));
    }

    #[test]
    fn kernel_min_argmin_breaks_ties_at_the_first_index(lane in equal_lane()) {
        let (k, v) = kernels::min_argmin(&lane).unwrap();
        prop_assert_eq!(k, 0);
        prop_assert_eq!(v.to_bits(), lane[0].to_bits());
    }

    #[test]
    fn kernel_prefix_threshold_count_matches_reference(
        lane in cost_lane(),
        threshold in (1u8..10, 0.0f64..1e3),
        sort in any::<bool>(),
    ) {
        let threshold = salted(threshold.0, threshold.1);
        // The JV pointer advance feeds ascending rows; the definition is
        // order-free, so both shapes are pinned.
        let mut lane = lane;
        if sort {
            lane.sort_by(f64::total_cmp);
        }
        prop_assert_eq!(
            kernels::prefix_threshold_count(&lane, threshold),
            kernels::prefix_threshold_count_reference(&lane, threshold)
        );
    }

    #[test]
    fn kernel_fused_ratio_accumulate_matches_reference(
        lane in cost_lane(),
        residual in (0u8..2, 0.0f64..1e3),
    ) {
        let residual = if residual.0 == 0 { 0.0 } else { residual.1 };
        // Greedy feeds (cost, client)-sorted rows; the prefix chain is
        // order-sensitive, so match that shape.
        let mut lane = lane;
        lane.sort_by(f64::total_cmp);
        let (fr, fk) = kernels::fused_ratio_accumulate(&lane, residual);
        let (sr, sk) = kernels::fused_ratio_accumulate_reference(&lane, residual);
        prop_assert_eq!((fr.to_bits(), fk), (sr.to_bits(), sk));
    }

    #[test]
    fn kernel_retain_unmarked_matches_reference(
        lane in cost_lane(),
        seed in any::<u64>(),
    ) {
        let ids: Vec<u32> = (0..lane.len() as u32).collect();
        let marked: Vec<bool> = (0..lane.len()).map(|k| (seed >> (k % 64)) & 1 == 1).collect();
        let (ref_ids, ref_costs) = kernels::retain_unmarked_reference(&ids, &lane, &marked);
        let mut ids = ids;
        let mut costs = lane;
        let live = kernels::retain_unmarked(&mut ids, &mut costs, &marked);
        prop_assert_eq!(&ids[..live], &ref_ids[..]);
        let live_bits: Vec<u64> = costs[..live].iter().map(|c| c.to_bits()).collect();
        let ref_bits: Vec<u64> = ref_costs.iter().map(|c| c.to_bits()).collect();
        prop_assert_eq!(live_bits, ref_bits);
    }

    #[test]
    fn kernel_assign_sums_match_reference(lanes in cache_lanes()) {
        let (best, second, fac, drop) = lanes;
        prop_assert_eq!(
            kernels::assign_sum(&best).to_bits(),
            kernels::assign_sum_reference(&best).to_bits()
        );
        prop_assert_eq!(
            kernels::assign_sum_drop(&best, &fac, &second, drop).to_bits(),
            kernels::assign_sum_drop_reference(&best, &fac, &second, drop).to_bits()
        );
        // An add column in the shape `optimize` scatters: +inf for
        // unlinked clients, finite link costs elsewhere.
        let add_min: Vec<f64> = best
            .iter()
            .enumerate()
            .map(|(k, b)| if k % 3 == 0 { f64::INFINITY } else { b * 0.5 + k as f64 })
            .collect();
        prop_assert_eq!(
            kernels::assign_sum_add(&best, &add_min).to_bits(),
            kernels::assign_sum_add_reference(&best, &add_min).to_bits()
        );
        prop_assert_eq!(
            kernels::assign_sum_swap(&best, &fac, &second, drop, &add_min).to_bits(),
            kernels::assign_sum_swap_reference(&best, &fac, &second, drop, &add_min).to_bits()
        );
    }
}
