//! Property tests pinning the metric solver portfolio, bit for bit.
//!
//! The distributed MetricBall protocol and the robust outliers pipeline
//! both retain sequential reference implementations that replay the
//! protocol's randomness (`NodeRng::derive` per facility per phase)
//! without a simulator. These properties enforce *exact* equivalence —
//! identical `Solution` values, not approximate agreement — across metric
//! and non-metric generator families, every phase count, and random
//! seeds; plus the routing contract the serve layer's `auto` kind rests
//! on: the classifier must send every metric-generator instance to the
//! metric specialist, and `auto`'s answer must equal its route's.

use proptest::prelude::*;

use distfl_core::outliers::OutliersParams;
use distfl_core::{metricball, outliers, SolverKind};
use distfl_instance::generators::{
    Clustered, Euclidean, GridNetwork, InstanceGenerator, Metricized, PowerLaw, UniformRandom,
};
use distfl_instance::Instance;

/// An instance from any family — metric or not; the references must
/// match everywhere, not only where the approximation guarantee holds.
fn any_instance() -> impl Strategy<Value = Instance> {
    (0u8..4, 1usize..8, 1usize..24, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => UniformRandom::new(m, n).unwrap().generate(seed).unwrap(),
        1 => Euclidean::new(m, n).unwrap().generate(seed).unwrap(),
        2 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        _ => Metricized::new(PowerLaw::new(m, n, 1e3).unwrap()).generate(seed).unwrap(),
    })
}

/// An instance from a family whose costs are metric by construction.
fn metric_instance() -> impl Strategy<Value = Instance> {
    (0u8..4, 2usize..8, 2usize..24, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => Euclidean::new(m, n).unwrap().generate(seed).unwrap(),
        1 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        2 => {
            let side = 2 + (m % 5);
            GridNetwork::new(side, side, m.min(side * side), n).unwrap().generate(seed).unwrap()
        }
        _ => Metricized::new(UniformRandom::new(m, n).unwrap()).generate(seed).unwrap(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metricball_matches_its_reference_bitwise(
        inst in any_instance(),
        phases in 1u32..9,
        seed in any::<u64>(),
    ) {
        use distfl_core::metricball::{MetricBall, MetricBallParams};
        use distfl_core::FlAlgorithm;
        let fast = MetricBall::new(MetricBallParams::with_phases(phases))
            .run(&inst, seed)
            .unwrap();
        let reference = metricball::solve_reference(&inst, phases, seed).unwrap();
        prop_assert_eq!(&fast.solution, &reference);
    }

    #[test]
    fn outliers_matches_its_reference_bitwise(
        inst in any_instance(),
        phases in 1u32..7,
        drop_pct in 0u32..50,
        seed in any::<u64>(),
    ) {
        use distfl_core::outliers::Outliers;
        use distfl_core::FlAlgorithm;
        let params = OutliersParams::new(f64::from(drop_pct) / 100.0, phases).unwrap();
        let fast = Outliers::new(params).run(&inst, seed).unwrap();
        let reference = outliers::solve_reference(&inst, params, seed).unwrap();
        prop_assert_eq!(&fast.solution, &reference);
    }

    #[test]
    fn auto_routes_metric_generators_to_metricball(inst in metric_instance()) {
        // The acceptance contract of the classifier: an instance from a
        // metric generator family is never routed away from the metric
        // specialist.
        prop_assert_eq!(SolverKind::Auto.resolve(&inst), SolverKind::MetricBall);
    }

    #[test]
    fn auto_equals_its_route(inst in any_instance(), seed in any::<u64>()) {
        let routed = SolverKind::Auto.resolve(&inst);
        prop_assert!(routed != SolverKind::Auto);
        let auto = SolverKind::Auto.solve(&inst, seed).unwrap();
        let direct = routed.solve(&inst, seed).unwrap();
        prop_assert_eq!(&auto.solution, &direct.solution);
    }
}
