//! Warm-start equivalence: after any schedule of instance deltas, a
//! warm-started solve must be **bit-identical** to a from-scratch solve of
//! the mutated instance — for all three warm solvers, over random
//! add/remove/reprice interleavings, in the style of `solver_equivalence`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use distfl_core::warm::{WarmCache, WarmConfig};
use distfl_core::{greedy, jv, localsearch, SolverKind};
use distfl_instance::generators::{Clustered, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::{ClientId, Cost, DeltaBatch, FacilityId, Instance};

/// Move cap matching the cold `SolverKind::LocalSearch` dispatch.
const LS_MAX_MOVES: u32 = 10_000;

fn any_instance() -> impl Strategy<Value = Instance> {
    (0u8..3, 1usize..8, 1usize..20, 0u64..1000).prop_map(|(family, m, n, seed)| match family {
        0 => UniformRandom::new(m, n).unwrap().generate(seed).unwrap(),
        1 => {
            let clusters = m % 3 + 1;
            Clustered::new(clusters, m.max(clusters), n).unwrap().generate(seed).unwrap()
        }
        _ => LineCity::new(m, n).unwrap().generate(seed).unwrap(),
    })
}

/// Draws a batch valid for the instance's current shape: a few removals
/// (never all clients), reprices of surviving clients' existing links
/// (distinct pairs), and added clients with random link sets.
fn random_batch(inst: &Instance, rng: &mut StdRng) -> DeltaBatch {
    let n = inst.num_clients();
    let m = inst.num_facilities();
    let mut batch = DeltaBatch::new();

    let max_remove = (n - 1).min(3);
    let num_remove = if max_remove == 0 { 0 } else { rng.gen_range(0..=max_remove) };
    let mut removed: Vec<u32> = Vec::new();
    while removed.len() < num_remove {
        let j = rng.gen_range(0..n as u32);
        if !removed.contains(&j) {
            removed.push(j);
        }
    }
    for &j in &removed {
        batch.remove_client(ClientId::new(j));
    }

    let mut repriced: Vec<(u32, u32)> = Vec::new();
    for _ in 0..rng.gen_range(0..=4usize) {
        let j = rng.gen_range(0..n as u32);
        if removed.contains(&j) {
            continue;
        }
        let row = inst.client_links(ClientId::new(j));
        let i = row.ids[rng.gen_range(0..row.len())];
        if repriced.contains(&(j, i)) {
            continue;
        }
        repriced.push((j, i));
        batch.reprice(
            ClientId::new(j),
            FacilityId::new(i),
            Cost::new(rng.gen_range(0.0..100.0f64)).unwrap(),
        );
    }

    for _ in 0..rng.gen_range(0..=3usize) {
        let p = batch.add_client();
        let deg = rng.gen_range(1..=m);
        let mut fids: Vec<u32> = (0..m as u32).collect();
        for k in 0..deg {
            let swap = rng.gen_range(k..m);
            fids.swap(k, swap);
        }
        fids.truncate(deg);
        fids.sort_unstable();
        for &i in &fids {
            batch
                .link(p, FacilityId::new(i), Cost::new(rng.gen_range(0.0..100.0f64)).unwrap())
                .unwrap();
        }
    }
    batch
}

/// Runs `batches` random deltas, keeping `warm` in sync, and returns the
/// mutated instance.
fn churn(inst: &mut Instance, warm: &mut WarmCache, seed: u64, batches: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..batches {
        let batch = random_batch(inst, &mut rng);
        let report = inst.apply_delta(&batch).unwrap();
        warm.apply_delta(inst, &report);
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn warm_greedy_is_bit_identical_after_delta_schedules(
        base in any_instance(),
        seed in any::<u64>(),
        batches in 1usize..4,
    ) {
        let mut inst = base.clone();
        let mut warm = WarmCache::new(&inst);
        churn(&mut inst, &mut warm, seed, batches);
        let w = warm.solve_greedy(&inst);
        let c = greedy::solve_detailed(&inst);
        prop_assert_eq!(&w.solution, &c.solution);
        prop_assert_eq!(bits(&w.ratios), bits(&c.ratios));
        prop_assert_eq!(w.iterations, c.iterations);
        // A second warm solve from the same epoch is stable (the working
        // copy, not the pristine rows, absorbed the run's destruction).
        let again = warm.solve_greedy(&inst);
        prop_assert_eq!(&again.solution, &c.solution);
    }

    #[test]
    fn warm_local_search_is_bit_identical_after_delta_schedules(
        base in any_instance(),
        seed in any::<u64>(),
        batches in 1usize..4,
    ) {
        let mut inst = base.clone();
        let mut warm = WarmCache::new(&inst);
        churn(&mut inst, &mut warm, seed, batches);
        let w = warm.solve_local_search(&inst, LS_MAX_MOVES);
        let (start, _) = greedy::solve(&inst);
        let c = localsearch::optimize(&inst, &start, LS_MAX_MOVES);
        prop_assert_eq!(&w.solution, &c.solution);
        prop_assert_eq!(w.initial_cost.to_bits(), c.initial_cost.to_bits());
        prop_assert_eq!(w.final_cost.to_bits(), c.final_cost.to_bits());
        prop_assert_eq!(w.moves, c.moves);
        prop_assert_eq!(w.converged, c.converged);
    }

    #[test]
    fn warm_jv_is_bit_identical_after_delta_schedules(
        base in any_instance(),
        seed in any::<u64>(),
        batches in 1usize..4,
    ) {
        let mut inst = base.clone();
        let mut warm = WarmCache::new(&inst);
        churn(&mut inst, &mut warm, seed, batches);
        let asc_w = warm.dual_ascent(&inst);
        let asc_c = jv::dual_ascent(&inst);
        prop_assert_eq!(bits(&asc_w.alpha), bits(&asc_c.alpha));
        prop_assert_eq!(&asc_w.temp_open, &asc_c.temp_open);
        let (sol_w, dual_w) = warm.solve_jv(&inst);
        let (sol_c, dual_c) = jv::solve(&inst);
        prop_assert_eq!(&sol_w, &sol_c);
        prop_assert_eq!(bits(dual_w.alpha()), bits(dual_c.alpha()));
    }

    #[test]
    fn patch_and_rebuild_paths_agree(
        base in any_instance(),
        seed in any::<u64>(),
        batches in 1usize..4,
    ) {
        // Threshold +inf: drift never exceeds it, so every delta patches
        // (removal-heavy batches can drift past any finite bound because
        // dropped links count against the post-mutation lane size).
        // Threshold -1.0: every delta rebuilds. Outputs must not differ.
        let mut inst_a = base.clone();
        let mut patcher =
            WarmCache::with_config(&inst_a, WarmConfig { drift_threshold: f64::INFINITY });
        churn(&mut inst_a, &mut patcher, seed, batches);
        let mut inst_b = base.clone();
        let mut rebuilder =
            WarmCache::with_config(&inst_b, WarmConfig { drift_threshold: -1.0 });
        churn(&mut inst_b, &mut rebuilder, seed, batches);
        prop_assert_eq!(&inst_a, &inst_b);
        prop_assert!(patcher.rebuilds() == 0 && patcher.patches() as usize == batches);
        prop_assert!(rebuilder.patches() == 0 && rebuilder.rebuilds() as usize == batches);
        let a = patcher.solve_greedy(&inst_a);
        let b = rebuilder.solve_greedy(&inst_b);
        prop_assert_eq!(&a.solution, &b.solution);
        prop_assert_eq!(bits(&a.ratios), bits(&b.ratios));
        let (ja, da) = patcher.solve_jv(&inst_a);
        let (jb, db) = rebuilder.solve_jv(&inst_b);
        prop_assert_eq!(&ja, &jb);
        prop_assert_eq!(bits(da.alpha()), bits(db.alpha()));
    }

    #[test]
    fn warm_dispatch_matches_cold_dispatch(
        base in any_instance(),
        seed in any::<u64>(),
    ) {
        let mut inst = base.clone();
        let mut warm = WarmCache::new(&inst);
        churn(&mut inst, &mut warm, seed, 2);
        for kind in SolverKind::ALL {
            let w = match kind.solve_warm(&inst, 7, &mut warm) {
                Ok(w) => w,
                // The portfolio kinds decline warm sessions by contract
                // (typed boundary); cold dispatch still covers them.
                Err(distfl_core::CoreError::WarmUnsupported { kind: name }) => {
                    prop_assert_eq!(name, kind.name());
                    continue;
                }
                Err(e) => return Err(TestCaseError::fail(format!("{kind}: {e}"))),
            };
            let c = kind.solve(&inst, 7).unwrap();
            prop_assert_eq!(&w.solution, &c.solution, "kind {}", kind);
            match (w.dual, c.dual) {
                (Some(dw), Some(dc)) => prop_assert_eq!(bits(dw.alpha()), bits(dc.alpha())),
                (None, None) => {}
                _ => prop_assert!(false, "dual presence differs for {}", kind),
            }
        }
    }
}
