//! Property tests: fault injection never breaks PayDual's safety.
//!
//! The paper's guarantees assume a fault-free synchronous network; the
//! library's stronger operational claim (E10) is that *feasibility* is
//! unconditional — under arbitrary message-drop plans and crash-stop
//! schedules the recovered assignment still serves every client over
//! existing links, and the `audit` convergecasts agree with the offline
//! evaluation of that solution. These properties fuzz both fault models
//! (and their combination) across instance shapes and seeds.

use proptest::prelude::*;

use distfl_congest::{CongestConfig, FaultPlan, Network, NodeId};
use distfl_core::paydual::{node as pd, PayDual, PayDualParams};
use distfl_core::{audit, node_role, theory, topology_of, FlAlgorithm, Role};
use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_instance::{FacilityId, Instance, Solution};

/// A dense bipartite instance: `m` facilities, `n` clients.
fn any_instance() -> impl Strategy<Value = Instance> {
    (2usize..7, 5usize..25, 0u64..500)
        .prop_map(|(m, n, seed)| UniformRandom::new(m, n).unwrap().generate(seed).unwrap())
}

/// Audits `solution` distributively (when the graph is connected) and
/// checks the convergecast agrees with the offline cost.
fn audit_matches(inst: &Instance, solution: &Solution) -> Result<(), TestCaseError> {
    let topology = topology_of(inst).expect("topology");
    if !topology.is_connected() {
        return Ok(());
    }
    let (cost, _) = audit::distributed_cost(inst, solution).expect("audit runs");
    prop_assert!(
        (cost - solution.cost(inst).value()).abs() < 1e-9,
        "audited cost {cost} disagrees with offline evaluation"
    );
    let (open, _) = audit::distributed_open_count(inst, solution).expect("audit runs");
    prop_assert!((open - solution.num_open() as f64).abs() < 1e-9);
    Ok(())
}

/// Runs PayDual with `k` facilities crashed at `crash_round` plus an
/// optional drop plan, and recovers the clients' assignment the way a
/// deployment would (connected facility, else local fallback).
fn run_with_faults(
    inst: &Instance,
    phases: u32,
    seed: u64,
    k: usize,
    crash_round: u32,
    fault: Option<FaultPlan>,
) -> Solution {
    let topo = topology_of(inst).expect("topology");
    let nodes = pd::build_nodes(inst, phases, Default::default());
    let config = CongestConfig {
        crashes: (0..k).map(|i| (NodeId::new(i as u32), crash_round)).collect(),
        fault,
        ..CongestConfig::default()
    };
    let mut net = Network::with_config(topo, nodes, seed, config).expect("network");
    net.run(theory::paydual_rounds(phases)).expect("run");
    let m = inst.num_facilities();
    let assignment: Vec<FacilityId> = net
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(index, node)| match (node_role(m, NodeId::new(index as u32)), node) {
            (Role::Client(_), pd::PayDualNode::Client(c)) => Some(
                c.connected_facility()
                    .or_else(|| c.fallback_facility())
                    .expect("clients always have a recovery target"),
            ),
            _ => None,
        })
        .collect();
    Solution::from_assignment(inst, assignment).expect("recovered assignment is feasible")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn message_drops_never_break_feasibility(
        inst in any_instance(),
        drop_prob in 0.0f64..0.95,
        phases in 1u32..6,
        seed in 0u64..100,
        fault_seed in 0u64..100,
    ) {
        let fault = (drop_prob > 0.0)
            .then(|| FaultPlan::drop_with_probability(drop_prob, fault_seed));
        let params = PayDualParams { fault, ..PayDualParams::with_phases(phases) };
        let out = PayDual::new(params).run(&inst, seed).expect("paydual run");
        prop_assert!(out.solution.check_feasible(&inst).is_ok());
        audit_matches(&inst, &out.solution)?;
    }

    #[test]
    fn crash_stop_schedules_never_break_feasibility(
        inst in any_instance(),
        phases in 1u32..6,
        seed in 0u64..100,
        crash_frac in 0.0f64..1.0,
        crash_round in 0u32..6,
    ) {
        // Crash facility nodes only, always leaving at least one alive so
        // clients retain a recovery target; clients themselves never crash
        // (a crashed client has no assignment to audit).
        let m = inst.num_facilities();
        let k = ((m as f64 * crash_frac) as usize).min(m - 1);
        let solution = run_with_faults(&inst, phases, seed, k, crash_round, None);
        prop_assert!(solution.check_feasible(&inst).is_ok());
        audit_matches(&inst, &solution)?;
    }

    #[test]
    fn combined_drops_and_crashes_never_break_feasibility(
        inst in any_instance(),
        drop_prob in 0.0f64..0.8,
        phases in 1u32..5,
        seed in 0u64..50,
        crash_frac in 0.0f64..1.0,
        crash_round in 0u32..4,
    ) {
        let m = inst.num_facilities();
        let k = ((m as f64 * crash_frac) as usize).min(m - 1);
        let fault = (drop_prob > 0.0)
            .then(|| FaultPlan::drop_with_probability(drop_prob, seed.wrapping_add(7)));
        let solution = run_with_faults(&inst, phases, seed, k, crash_round, fault);
        prop_assert!(solution.check_feasible(&inst).is_ok());
        audit_matches(&inst, &solution)?;
    }
}
