//! Dependency-free SVG line figures.
//!
//! The experiments' "figures" (E1's trade-off curve, E3's spread
//! sensitivity, E5's rounding success, E7's ablation) are rendered as
//! standalone SVG files next to the CSVs, so the reproduction produces
//! actual figures, not just tables. The renderer is deliberately small:
//! axes with rounded ticks, optional log scales, one polyline plus
//! markers per series, and a legend.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (x, y); non-finite points are skipped.
    pub points: Vec<(f64, f64)>,
}

/// A line figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// File stem for the SVG output.
    pub id: String,
    /// Title rendered above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale the x axis.
    pub log_x: bool,
    /// Log-scale the y axis.
    pub log_y: bool,
    /// The plotted series.
    pub series: Vec<Series>,
}

/// Brand-neutral categorical palette.
const PALETTE: [&str; 6] = ["#3366cc", "#dc3912", "#109618", "#990099", "#ff9900", "#0099c6"];

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_LEFT: f64 = 70.0;
const MARGIN_RIGHT: f64 = 160.0;
const MARGIN_TOP: f64 = 42.0;
const MARGIN_BOTTOM: f64 = 52.0;

impl Figure {
    /// Creates an empty linear-scale figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push(Series { label: label.into(), points });
        self
    }

    /// All finite points across series, transformed for scale.
    fn transformed(&self) -> Vec<Vec<(f64, f64)>> {
        let tx = |x: f64| if self.log_x { x.max(f64::MIN_POSITIVE).log10() } else { x };
        let ty = |y: f64| if self.log_y { y.max(f64::MIN_POSITIVE).log10() } else { y };
        self.series
            .iter()
            .map(|s| {
                s.points
                    .iter()
                    .filter(|(x, y)| x.is_finite() && y.is_finite())
                    .map(|&(x, y)| (tx(x), ty(y)))
                    .collect()
            })
            .collect()
    }

    /// Renders the figure as an SVG document.
    ///
    /// # Panics
    ///
    /// Panics if the figure has no finite data points.
    pub fn render_svg(&self) -> String {
        let data = self.transformed();
        let all: Vec<(f64, f64)> = data.iter().flatten().copied().collect();
        assert!(!all.is_empty(), "figure {} has no data", self.id);
        let (mut x_min, mut x_max) = min_max(all.iter().map(|p| p.0));
        let (mut y_min, mut y_max) = min_max(all.iter().map(|p| p.1));
        if x_max - x_min < 1e-12 {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if y_max - y_min < 1e-12 {
            y_min -= 0.5;
            y_max += 0.5;
        }
        // A little headroom.
        let y_pad = (y_max - y_min) * 0.06;
        y_min -= y_pad;
        y_max += y_pad;

        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = move |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = write!(svg, r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_LEFT,
            escape(&self.title)
        );

        // Axes.
        let _ = write!(
            svg,
            r##"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="#333"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="#333"/>"##,
            l = MARGIN_LEFT,
            r = MARGIN_LEFT + plot_w,
            t = MARGIN_TOP,
            b = MARGIN_TOP + plot_h,
        );
        // Ticks (5 per axis, inverse-transformed labels).
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * f64::from(i) / 4.0;
            let fy = y_min + (y_max - y_min) * f64::from(i) / 4.0;
            let lx = if self.log_x { 10f64.powf(fx) } else { fx };
            let ly = if self.log_y { 10f64.powf(fy) } else { fy };
            let _ = write!(
                svg,
                r##"<line x1="{x}" y1="{b}" x2="{x}" y2="{b2}" stroke="#333"/><text x="{x}" y="{ty}" font-size="11" text-anchor="middle">{label}</text>"##,
                x = sx(fx),
                b = MARGIN_TOP + plot_h,
                b2 = MARGIN_TOP + plot_h + 5.0,
                ty = MARGIN_TOP + plot_h + 18.0,
                label = tick_label(lx),
            );
            let _ = write!(
                svg,
                r##"<line x1="{l2}" y1="{y}" x2="{l}" y2="{y}" stroke="#333"/><text x="{tx}" y="{y2}" font-size="11" text-anchor="end">{label}</text>"##,
                l = MARGIN_LEFT,
                l2 = MARGIN_LEFT - 5.0,
                y = sy(fy),
                tx = MARGIN_LEFT - 8.0,
                y2 = sy(fy) + 4.0,
                label = tick_label(ly),
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (si, (series, points)) in self.series.iter().zip(&data).enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            if points.len() > 1 {
                let path: Vec<String> =
                    points.iter().map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y))).collect();
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = MARGIN_TOP + 14.0 + 18.0 * si as f64;
            let lx = MARGIN_LEFT + plot_w + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" font-size="11">{}</text>"#,
                lx + 18.0,
                lx + 24.0,
                ly + 4.0,
                escape(&series.label)
            );
        }
        svg.push_str("</svg>");
        svg
    }
}

/// Minimum and maximum of an iterator of finite values.
fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

/// Short human tick label.
fn tick_label(v: f64) -> String {
    let a = v.abs();
    if a >= 1e5 || (a > 0.0 && a < 1e-2) {
        format!("{v:.0e}")
    } else if a >= 100.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Escapes XML-special characters.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Writes figures as `<id>.svg` under the results directory, printing the
/// paths.
pub fn emit_figures(figures: &[Figure]) {
    let dir = crate::results_dir();
    for figure in figures {
        let path = dir.join(format!("{}.svg", figure.id));
        std::fs::write(&path, figure.render_svg()).expect("write figure svg");
        println!("[figure: {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure::new("fig_test", "A <test> figure", "rounds", "ratio")
            .with_series("alpha", vec![(1.0, 2.0), (2.0, 1.5), (4.0, 1.2)])
            .with_series("beta", vec![(1.0, 3.0), (4.0, 2.0)])
    }

    #[test]
    fn renders_expected_structure() {
        let svg = sample().render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("alpha") && svg.contains("beta"));
        assert!(svg.contains("&lt;test&gt;"), "title is escaped");
        assert!(svg.contains("rounds") && svg.contains("ratio"));
    }

    #[test]
    fn log_scale_positions_decades_evenly() {
        let fig = Figure {
            log_x: true,
            ..Figure::new("f", "t", "x", "y")
                .with_series("s", vec![(1.0, 1.0), (10.0, 2.0), (100.0, 3.0)])
        };
        let svg = fig.render_svg();
        // Extract the three circle x positions; spacing must be equal.
        let xs: Vec<f64> = svg
            .match_indices("<circle cx=\"")
            .map(|(i, _)| {
                let rest = &svg[i + 12..];
                rest[..rest.find('"').unwrap()].parse().unwrap()
            })
            .collect();
        assert_eq!(xs.len(), 3);
        let d1 = xs[1] - xs[0];
        let d2 = xs[2] - xs[1];
        assert!((d1 - d2).abs() < 0.1, "log spacing uneven: {d1} vs {d2}");
    }

    #[test]
    fn single_point_series_renders_without_line() {
        let fig = Figure::new("f", "t", "x", "y").with_series("lonely", vec![(3.0, 3.0)]);
        let svg = fig.render_svg();
        assert_eq!(svg.matches("<polyline").count(), 0);
        assert_eq!(svg.matches("<circle").count(), 1);
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let fig = Figure::new("f", "t", "x", "y")
            .with_series("s", vec![(1.0, 1.0), (f64::NAN, 2.0), (2.0, f64::INFINITY), (3.0, 2.0)]);
        let svg = fig.render_svg();
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_figure_panics() {
        let _ = Figure::new("f", "t", "x", "y").render_svg();
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(tick_label(1_000_000.0), "1e6");
        assert_eq!(tick_label(150.0), "150");
        assert_eq!(tick_label(1.2345), "1.23");
        assert_eq!(tick_label(2.0), "2");
        assert_eq!(tick_label(0.001), "1e-3");
    }
}
