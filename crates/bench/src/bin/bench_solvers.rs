//! Machine-readable benchmark for the sequential solver hot paths.
//!
//! Measures the incremental implementations against the retained naive
//! references on identical inputs — lazy-heap star greedy vs the
//! per-iteration full rescan, cached-assignment local search vs the full
//! re-pricing of every candidate move, and the event-driven Jain–Vazirani
//! dual ascent vs the per-round scan over all links — across generator
//! families and OR-Library-shaped dense sizes. Every comparison also
//! asserts the outputs are identical, so a speedup reported here is a
//! speedup on the *same* answer. Emits a single JSON document so CI and
//! EXPERIMENTS.md baselines can diff runs mechanically.
//!
//! The document records allocation budgets for all three hot paths:
//! `greedy_allocs_per_iter_budget` (amortized heap allocations per greedy
//! iteration), `ls_allocs_per_move_budget` (per local-search move), and
//! `jv_allocs_per_client_budget` (per client of the JV dual ascent).
//! `--smoke` re-measures on small instances and exits non-zero if any
//! budget (read back from BENCH_2.json when present) is exceeded — the
//! allocation regression gate CI runs on every push.
//!
//! Usage: `bench_solvers [--quick] [--smoke] [--out PATH]`
//! (default `BENCH_2.json`).

// The counting global allocator below is the one place this binary needs
// `unsafe`: GlobalAlloc is an unsafe trait by definition.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{Clustered, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::Instance;

/// Passes through to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Amortized allocations per greedy iteration the fast path must stay
/// under (whole-call allocations divided by iterations, so the one-time
/// CSR/heap setup is included). The committed BENCH_2.json records this
/// value and `--smoke` enforces it.
const GREEDY_ALLOCS_PER_ITER_BUDGET: f64 = 16.0;

/// Amortized allocations per accepted local-search move (whole-call
/// allocations divided by moves, so the once-per-call cache and candidate
/// buffers are included). Guards the hoisted-pricing rework: a per-round
/// or per-candidate allocation sneaking back in blows this immediately.
const LS_ALLOCS_PER_MOVE_BUDGET: f64 = 32.0;

/// Amortized allocations per client for one JV dual ascent (whole-call
/// allocations divided by clients). The event loop reuses its sorted
/// lanes, linear forms, and candidate buffers, so the per-client share of
/// the setup is small and must stay that way.
const JV_ALLOCS_PER_CLIENT_BUDGET: f64 = 4.0;

/// Local-search move cap: both implementations run under the same cap, so
/// the comparison stays apples-to-apples even on instances whose descent
/// is long.
const LS_MOVES: u32 = 4;

/// One timed comparison: milliseconds for each implementation (best of
/// `reps`) plus the speedup.
struct Timing {
    fast_ms: f64,
    reference_ms: f64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.fast_ms
    }
}

fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        drop(out);
    }
    best
}

/// Greedy comparison: verifies bit-identical runs, then times both and
/// profiles the fast path's allocations per iteration.
fn bench_greedy(inst: &Instance, reps: usize) -> (Timing, u32, f64) {
    let fast = greedy::solve_detailed(inst);
    let slow = greedy::solve_detailed_reference(inst);
    assert_eq!(fast.solution, slow.solution, "lazy greedy diverged from reference");
    assert_eq!(fast.ratios, slow.ratios, "lazy greedy ratios diverged");
    assert_eq!(fast.iterations, slow.iterations, "lazy greedy iteration count diverged");

    let before = allocations();
    let run = greedy::solve_detailed(inst);
    let allocs = allocations() - before;
    let allocs_per_iter = allocs as f64 / f64::from(run.iterations.max(1));

    let timing = Timing {
        fast_ms: time_best(reps, || greedy::solve_detailed(inst)),
        reference_ms: time_best(reps, || greedy::solve_detailed_reference(inst)),
    };
    (timing, run.iterations, allocs_per_iter)
}

/// Local-search comparison from the greedy solution, verified identical,
/// with the fast path's allocations per accepted move.
fn bench_local_search(inst: &Instance, reps: usize) -> (Timing, u32, f64) {
    let (start, _) = greedy::solve(inst);
    let fast = localsearch::optimize(inst, &start, LS_MOVES);
    let slow = localsearch::optimize_reference(inst, &start, LS_MOVES);
    assert_eq!(fast, slow, "cached local search diverged from reference");

    let before = allocations();
    let run = localsearch::optimize(inst, &start, LS_MOVES);
    let allocs = allocations() - before;
    let allocs_per_move = allocs as f64 / f64::from(run.moves.max(1));

    let timing = Timing {
        fast_ms: time_best(reps, || localsearch::optimize(inst, &start, LS_MOVES)),
        reference_ms: time_best(reps, || localsearch::optimize_reference(inst, &start, LS_MOVES)),
    };
    (timing, fast.moves, allocs_per_move)
}

/// Jain–Vazirani phase-1 comparison, verified identical, with the fast
/// path's allocations per client.
fn bench_jv(inst: &Instance, reps: usize) -> (Timing, f64) {
    let fast = jv::dual_ascent(inst);
    let slow = jv::dual_ascent_reference(inst);
    assert_eq!(fast.alpha, slow.alpha, "event-driven ascent diverged from reference");
    assert_eq!(fast.temp_open, slow.temp_open, "ascent opening order diverged");

    let before = allocations();
    let run = jv::dual_ascent(inst);
    let allocs = allocations() - before;
    let allocs_per_client = allocs as f64 / inst.num_clients().max(1) as f64;
    drop(run);

    let timing = Timing {
        fast_ms: time_best(reps, || jv::dual_ascent(inst)),
        reference_ms: time_best(reps, || jv::dual_ascent_reference(inst)),
    };
    (timing, allocs_per_client)
}

fn json_timing(t: &Timing) -> String {
    format!(
        "{{\"fast_ms\": {:.3}, \"reference_ms\": {:.3}, \"speedup\": {:.3}}}",
        t.fast_ms,
        t.reference_ms,
        t.speedup()
    )
}

/// Pulls one committed allocation budget back out of a BENCH_2.json
/// document (no JSON dependency in-tree; the keys are written by this
/// same binary, so a flat scan is reliable).
fn read_key(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = format!("\"{key}\":");
    let at = text.find(&key)? + key.len();
    let rest = text[at..].trim_start();
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn instances(quick: bool) -> Vec<(String, Instance)> {
    let mk_uniform = |m: usize, n: usize, seed: u64| -> Instance {
        UniformRandom::new(m, n).unwrap().generate(seed).unwrap()
    };
    if quick {
        vec![
            ("uniform_10x50".into(), mk_uniform(10, 50, 1)),
            ("clustered_3x12x80".into(), Clustered::new(3, 12, 80).unwrap().generate(2).unwrap()),
            ("line_12x80".into(), LineCity::new(12, 80).unwrap().generate(3).unwrap()),
            // cap71..74 shape from the OR-Library: 16 facilities, 50 clients.
            ("cap74_shaped_16x50".into(), mk_uniform(16, 50, 4)),
        ]
    } else {
        vec![
            ("uniform_20x200".into(), mk_uniform(20, 200, 1)),
            ("clustered_5x30x400".into(), Clustered::new(5, 30, 400).unwrap().generate(2).unwrap()),
            ("line_40x400".into(), LineCity::new(40, 400).unwrap().generate(3).unwrap()),
            // cap71..74 shape from the OR-Library: 16 facilities, 50 clients.
            ("cap74_shaped_16x50".into(), mk_uniform(16, 50, 4)),
            // capb shape from the OR-Library: 100 facilities, 1000 clients.
            ("capb_shaped_100x1000".into(), mk_uniform(100, 1000, 5)),
        ]
    }
}

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut out_path = "BENCH_2.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                quick = true;
                smoke = true;
            }
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_solvers [--quick] [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    // Fail on an unwritable output path *before* minutes of measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    // The smoke gate compares against the committed baseline's budgets
    // when available, so tightening BENCH_2.json tightens CI with it.
    let (g_budget, ls_budget, jv_budget) = if smoke {
        (
            read_key("BENCH_2.json", "greedy_allocs_per_iter_budget")
                .unwrap_or(GREEDY_ALLOCS_PER_ITER_BUDGET),
            read_key("BENCH_2.json", "ls_allocs_per_move_budget")
                .unwrap_or(LS_ALLOCS_PER_MOVE_BUDGET),
            read_key("BENCH_2.json", "jv_allocs_per_client_budget")
                .unwrap_or(JV_ALLOCS_PER_CLIENT_BUDGET),
        )
    } else {
        (GREEDY_ALLOCS_PER_ITER_BUDGET, LS_ALLOCS_PER_MOVE_BUDGET, JV_ALLOCS_PER_CLIENT_BUDGET)
    };

    let reps = if quick { 2usize } else { 3 };
    let mut entries = Vec::new();
    let mut worst_greedy = 0.0f64;
    let mut worst_ls = 0.0f64;
    let mut worst_jv = 0.0f64;
    for (name, inst) in instances(quick) {
        let (g_timing, iterations, allocs_per_iter) = bench_greedy(&inst, reps);
        let (ls_timing, moves, allocs_per_move) = bench_local_search(&inst, reps);
        let (jv_timing, allocs_per_client) = bench_jv(&inst, reps);
        worst_greedy = worst_greedy.max(allocs_per_iter);
        worst_ls = worst_ls.max(allocs_per_move);
        worst_jv = worst_jv.max(allocs_per_client);
        eprintln!(
            "{name:<24} greedy {:>7.2}x ({} iters, {allocs_per_iter:.1} allocs/iter)  \
             local-search {:>7.2}x ({moves} moves, {allocs_per_move:.1} allocs/move)  \
             jv-ascent {:>7.2}x ({allocs_per_client:.2} allocs/client)",
            g_timing.speedup(),
            iterations,
            ls_timing.speedup(),
            jv_timing.speedup(),
        );
        entries.push(format!(
            "    {{\"instance\": \"{name}\", \"facilities\": {}, \"clients\": {}, \
             \"links\": {},\n     \"greedy\": {},\n     \
             \"greedy_iterations\": {iterations}, \"greedy_allocs_per_iter\": \
             {allocs_per_iter:.2},\n     \"local_search\": {},\n     \
             \"local_search_moves\": {moves}, \"local_search_allocs_per_move\": \
             {allocs_per_move:.2},\n     \"jv_dual_ascent\": {},\n     \
             \"jv_allocs_per_client\": {allocs_per_client:.2}}}",
            inst.num_facilities(),
            inst.num_clients(),
            inst.num_links(),
            json_timing(&g_timing),
            json_timing(&ls_timing),
            json_timing(&jv_timing),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"solver_hot_paths\",\n  \"mode\": \"{}\",\n  \
         \"baseline\": \"retained naive references: full-rescan greedy, \
         full-repricing local search (both capped at {LS_MOVES} moves), \
         per-round link-scan JV dual ascent\",\n  \
         \"greedy_allocs_per_iter_budget\": {GREEDY_ALLOCS_PER_ITER_BUDGET},\n  \
         \"ls_allocs_per_move_budget\": {LS_ALLOCS_PER_MOVE_BUDGET},\n  \
         \"jv_allocs_per_client_budget\": {JV_ALLOCS_PER_CLIENT_BUDGET},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        if smoke {
            "smoke"
        } else if quick {
            "quick"
        } else {
            "full"
        },
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");

    if smoke {
        let mut failed = false;
        for (what, worst, budget) in [
            ("greedy allocations per iteration", worst_greedy, g_budget),
            ("local-search allocations per move", worst_ls, ls_budget),
            ("jv allocations per client", worst_jv, jv_budget),
        ] {
            if worst > budget {
                eprintln!("error: {what} {worst:.2} exceed the budget {budget}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
