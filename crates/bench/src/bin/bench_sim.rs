//! Machine-readable benchmark for the discrete-event CONGEST simulator:
//! the wall-clock-vs-k curve behind ROADMAP item 3.
//!
//! The paper's guarantee is `O(k)` *rounds* for a `k√ρ`-approximation;
//! rounds only translate into time once they cost real, heterogeneous
//! latency. This bench runs PayDual at a sweep of phase counts `k`
//! through [`distfl_core::paydual::PayDual::run_simulated`] under three
//! latency families — constant, uniform (heavy reordering), and
//! lognormal (heavy tail) — and records the simulated makespan next to
//! the round count, so the trade-off "more phases, better cost, linearly
//! more virtual time" is measured, not modeled. Every timed row first
//! asserts the simulator's transcript is **bit-identical** to the
//! lock-step engine's for the same seed: a makespan reported here is the
//! makespan of the *same* execution the rest of the workspace measures.
//!
//! Emits a single JSON document (default `BENCH_9.json`). `--smoke`
//! skips the sweep and runs only the CI gate — engine-vs-sim transcript
//! equivalence across the three latency families and bit-identical
//! replay of the event ordering (same `SimReport`, transcript, and event
//! stream twice) — exiting non-zero on any violation. `--quick` shrinks
//! the sweep for a fast local run.
//!
//! Usage: `bench_sim [--smoke] [--quick] [--out PATH]`

use std::time::Instant;

use distfl_congest::{LatencyModel, SimConfig};
use distfl_core::paydual::{PayDual, PayDualParams, SimulatedRun};
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_instance::Instance;

/// The benchmark's latency families: one of each supported shape, all
/// with a ~50 µs center so makespans are comparable across rows.
fn latency_models() -> [(&'static str, LatencyModel); 3] {
    [
        ("constant_50us", LatencyModel::Constant(50_000)),
        ("uniform_10_200us", LatencyModel::Uniform { lo: 10_000, hi: 200_000 }),
        ("lognormal_med50us_s1", LatencyModel::LogNormal { median_nanos: 50_000.0, sigma: 1.0 }),
    ]
}

/// One simulated PayDual run at phase count `k`, checked bit-identical
/// against the lock-step engine before anything is reported.
fn simulate(inst: &Instance, k: u32, model: LatencyModel, seed: u64) -> SimulatedRun {
    let algo = PayDual::new(PayDualParams::with_phases(k));
    let config = SimConfig { latency: model, latency_seed: seed ^ 0xBE9C, ..SimConfig::default() };
    let sim = algo.run_simulated(inst, seed, config).expect("simulated run");
    let lockstep = algo.run(inst, seed).expect("lock-step run");
    assert_eq!(
        sim.outcome.transcript, lockstep.transcript,
        "simulator transcript diverged from the engine at k={k}"
    );
    assert_eq!(
        sim.outcome.solution, lockstep.solution,
        "simulator solution diverged from the engine at k={k}"
    );
    sim
}

// ---- Smoke gate -------------------------------------------------------

/// The CI gate: transcript equivalence across all three latency families
/// (the assertions inside [`simulate`]), plus deterministic event
/// ordering — an identical configuration replayed from scratch must
/// reproduce the same virtual timeline, not just the same transcript.
fn smoke() -> bool {
    let mut ok = true;
    let inst = UniformRandom::new(8, 40).unwrap().generate(9).unwrap();

    for (name, model) in latency_models() {
        let outcome = std::panic::catch_unwind(|| simulate(&inst, 6, model, 3));
        match outcome {
            Err(_) => {
                eprintln!("smoke FAILED: engine/sim divergence under {name}");
                ok = false;
            }
            Ok(first) => {
                let replay = simulate(&inst, 6, model, 3);
                if replay.report != first.report {
                    eprintln!("smoke FAILED: event ordering not deterministic under {name}");
                    ok = false;
                }
                if replay.verdicts != first.verdicts {
                    eprintln!("smoke FAILED: verdicts not deterministic under {name}");
                    ok = false;
                }
            }
        }
    }
    if ok {
        eprintln!("bench_sim smoke: transcripts bit-identical to the engine, replay deterministic");
    }
    ok
}

fn main() {
    let mut smoke_mode = false;
    let mut quick = false;
    let mut out_path = "BENCH_9.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_sim [--smoke] [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    if smoke_mode {
        if !smoke() {
            std::process::exit(1);
        }
        return;
    }

    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let inst = UniformRandom::new(30, 150).unwrap().generate(9).unwrap();
    let ks: &[u32] = if quick { &[1, 4, 16] } else { &[1, 2, 4, 8, 16, 32] };

    let mut sections = Vec::new();
    for (name, model) in latency_models() {
        let mut entries = Vec::new();
        for &k in ks {
            let start = Instant::now();
            let run = simulate(&inst, k, model, 9);
            let host_ms = start.elapsed().as_secs_f64() * 1e3;
            let rounds = run
                .outcome
                .transcript
                .as_ref()
                .expect("simulated runs produce transcripts")
                .num_rounds();
            let virtual_ms = run.report.virtual_nanos as f64 / 1e6;
            let cost = run.outcome.solution.cost(&inst).value();
            eprintln!(
                "{name:<22} k {k:>3}  rounds {rounds:>4}  virtual {virtual_ms:>10.3} ms  \
                 cost {cost:>10.2}  host {host_ms:>7.1} ms",
            );
            let modeled =
                run.outcome.modeled_rounds.map_or_else(|| "null".to_owned(), |r| r.to_string());
            entries.push(format!(
                "      {{\"k\": {k}, \"rounds\": {rounds}, \"modeled_rounds\": {modeled}, \
                 \"virtual_ms\": {virtual_ms:.3}, \"cost\": {cost:.3}, \
                 \"protocol_envelopes\": {}, \"pulse_envelopes\": {}}}",
                run.report.protocol_envelopes, run.report.pulse_envelopes
            ));
        }
        sections.push(format!(
            "    {{\"latency\": \"{name}\", \"rows\": [\n{}\n    ]}}",
            entries.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_wall_clock_vs_k\",\n  \
         \"instance\": \"uniform_30x150\",\n  \
         \"method\": \"PayDual at phase count k executed on the discrete-event \
         simulator (alpha-synchronizer over per-edge latency draws, compute 1 us \
         per step); each row's transcript and solution are asserted bit-identical \
         to the lock-step engine before its virtual makespan is reported\",\n  \
         \"latency_models\": [\n{}\n  ]\n}}\n",
        sections.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
