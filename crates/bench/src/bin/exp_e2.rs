//! Experiment E2 binary; see `distfl_bench::experiments::e2_locality`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e2_locality::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
