//! Runs every experiment E1-E10 and writes all CSVs; the data source for
//! EXPERIMENTS.md. Pass `--quick` for a reduced sweep.
//!
//! Sweeps fan out on the shared worker pool; output is byte-identical at
//! any thread count. Concurrency flags:
//!
//! * `--serial` — run every trial inline on the main thread,
//! * `--threads N` — use `N` threads in total (`N-1` pool workers),
//! * default — `DISTFL_THREADS` if set, else all available cores.
//!
//! Observability flags:
//!
//! * `--trace <path>` — record spans and metrics for the whole run and
//!   write a Chrome `trace_event` JSON file to `<path>` (open it in
//!   `chrome://tracing` or Perfetto); a flat CSV of the same events lands
//!   next to it at `<path>.csv`,
//! * `DISTFL_TRACE=1` — same, with the trace at
//!   `target/experiments/trace.json`.
//!
//! Tracing never changes experiment output: CSVs are byte-identical with
//! tracing on or off.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serial") {
        distfl_bench::set_sweep_workers(0);
    } else if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--threads needs a positive integer");
        distfl_bench::set_sweep_workers(n.saturating_sub(1));
    }

    let trace_path: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .expect("--trace needs an output path")
                .into()
        })
        .or_else(|| {
            distfl_obs::init_from_env()
                .then(|| std::path::PathBuf::from("target/experiments/trace.json"))
        });
    if trace_path.is_some() {
        distfl_obs::set_enabled(true);
    }

    let run_span = if trace_path.is_some() {
        distfl_obs::span("exp", "exp_all")
    } else {
        distfl_obs::Span::disabled()
    };
    let tables = distfl_bench::experiments::run_all(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
    let figures = distfl_bench::experiments::figures::standard_figures(&tables);
    distfl_bench::emit_figures(&figures);
    drop(run_span);

    if let Some(path) = trace_path {
        let snap = distfl_obs::snapshot();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create trace output directory");
        }
        let json = snap.chrome_json();
        distfl_obs::validate_json(&json).expect("trace export must be well-formed JSON");
        std::fs::write(&path, json).expect("write trace file");
        let csv_path = {
            let mut os = path.clone().into_os_string();
            os.push(".csv");
            std::path::PathBuf::from(os)
        };
        std::fs::write(&csv_path, snap.csv()).expect("write trace CSV");
        println!(
            "trace: {} events ({} dropped), {} metrics -> {} and {}",
            snap.events.len(),
            snap.dropped_events(),
            snap.metrics.len(),
            path.display(),
            csv_path.display(),
        );
    }
    println!("all experiments complete; CSVs and SVGs in target/experiments/");
}
