//! Runs every experiment E1-E7 and writes all CSVs; the data source for
//! EXPERIMENTS.md. Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::run_all(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
    let figures = distfl_bench::experiments::figures::standard_figures(&tables);
    distfl_bench::emit_figures(&figures);
    println!("all experiments complete; CSVs and SVGs in target/experiments/");
}
