//! Runs every experiment E1-E10 and writes all CSVs; the data source for
//! EXPERIMENTS.md. Pass `--quick` for a reduced sweep.
//!
//! Sweeps fan out on the shared worker pool; output is byte-identical at
//! any thread count. Concurrency flags:
//!
//! * `--serial` — run every trial inline on the main thread,
//! * `--threads N` — use `N` threads in total (`N-1` pool workers),
//! * default — `DISTFL_THREADS` if set, else all available cores.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--serial") {
        distfl_bench::set_sweep_workers(0);
    } else if let Some(i) = args.iter().position(|a| a == "--threads") {
        let n: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--threads needs a positive integer");
        distfl_bench::set_sweep_workers(n.saturating_sub(1));
    }
    let tables = distfl_bench::experiments::run_all(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
    let figures = distfl_bench::experiments::figures::standard_figures(&tables);
    distfl_bench::emit_figures(&figures);
    println!("all experiments complete; CSVs and SVGs in target/experiments/");
}
