//! Machine-readable round-pipeline benchmark for the CONGEST engine.
//!
//! Measures rounds/sec, messages/sec, and peak per-round heap allocations
//! for a flood workload on three topology families (line, grid, dense
//! bipartite) across thread counts {1, 2, 4, 8}, for both the current
//! engine and a faithful replica of the seed engine's round pipeline
//! (fresh outbox `Vec` per node per round, unconditional per-outbox sort,
//! per-message recorder check, linear crash scan, transcript clone at the
//! end). Emits a single JSON document so CI and EXPERIMENTS.md baselines
//! can diff runs mechanically.
//!
//! Usage: `bench_engine [--quick] [--out PATH]` (default `BENCH_1.json`).

// The counting global allocator below is the one place this workspace
// needs `unsafe`: GlobalAlloc is an unsafe trait by definition.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use distfl_congest::{
    CongestConfig, Network, NodeId, NodeLogic, Recorder, RoundStats, StepCtx, Topology,
};

/// Passes through to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Floods a counter to every neighbor for a fixed number of rounds.
struct Flood {
    rounds: u32,
    done: bool,
}

impl NodeLogic for Flood {
    type Msg = u64;
    fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
        if ctx.round() < self.rounds {
            ctx.broadcast(u64::from(ctx.round()));
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

/// One engine measurement: throughput plus allocation profile.
#[derive(Clone, Copy)]
struct Measurement {
    rounds_per_sec: f64,
    messages_per_sec: f64,
    /// Max allocations observed in any single round (includes warm-up).
    peak_round_allocs: u64,
    /// Max allocations in any round after the second (pools warmed).
    steady_round_allocs: u64,
}

/// Drives the current engine round by round, tracking per-round allocs.
fn measure_engine(topo: &Topology, threads: Option<usize>, rounds: u32) -> Measurement {
    let n = topo.num_nodes();
    let nodes: Vec<Flood> = (0..n).map(|_| Flood { rounds, done: false }).collect();
    let config = CongestConfig { threads, ..CongestConfig::default() };
    let mut net = Network::with_config(topo.clone(), nodes, 7, config).expect("network");
    let mut peak = 0u64;
    let mut steady = 0u64;
    let start = Instant::now();
    let mut executed = 0u32;
    while !net.all_done() {
        let before = allocations();
        net.step().expect("flood never violates the model");
        let delta = allocations() - before;
        peak = peak.max(delta);
        if executed >= 2 {
            steady = steady.max(delta);
        }
        executed += 1;
        assert!(executed <= rounds + 2, "flood failed to terminate");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let messages = net.transcript().total_messages();
    Measurement {
        rounds_per_sec: f64::from(executed) / elapsed,
        messages_per_sec: messages as f64 / elapsed,
        peak_round_allocs: peak,
        steady_round_allocs: steady,
    }
}

/// A faithful replica of the seed engine's round pipeline, kept here as
/// the comparison baseline: per-node `Vec::new()` outboxes every round,
/// unconditional sort of every outbox, a recorder call per message, a
/// linear crash-schedule scan per node per round, per-round spawn of
/// scoped worker threads for stepping, and a transcript clone at the end.
mod seed_replica {
    use super::{Instant, Measurement, NodeId, Recorder, RoundStats, Topology};
    use distfl_congest::{Event, EventKind};

    struct Flood {
        rounds: u32,
        done: bool,
    }

    struct StepOutcome {
        outbox: Vec<(NodeId, u64)>,
    }

    fn step_one(topo: &Topology, node: &mut Flood, index: usize, round: u32) -> StepOutcome {
        // Seed shape: a fresh outbox Vec per node per round.
        let mut outbox: Vec<(NodeId, u64)> = Vec::new();
        let id = NodeId::new(index as u32);
        if round < node.rounds {
            for &nb in topo.neighbors(id) {
                outbox.push((nb, u64::from(round)));
            }
        } else {
            node.done = true;
        }
        StepOutcome { outbox }
    }

    pub(super) fn measure(topo: &Topology, threads: Option<usize>, rounds: u32) -> Measurement {
        let n = topo.num_nodes();
        let mut nodes: Vec<Flood> = (0..n).map(|_| Flood { rounds, done: false }).collect();
        let mut inboxes: Vec<Vec<(NodeId, u64)>> = (0..n).map(|_| Vec::new()).collect();
        let crashes: Vec<(NodeId, u32)> = Vec::new();
        let mut recorder = Recorder::disabled();
        let mut transcript: Vec<RoundStats> = Vec::new();
        let threads = threads.unwrap_or(1).max(1);

        let mut peak = 0u64;
        let mut steady = 0u64;
        let mut executed = 0u32;
        let start = Instant::now();
        loop {
            // Seed's all_done: linear crash scan per node per round.
            let round = executed;
            let all_done = nodes.iter().enumerate().all(|(i, l)| {
                l.done || crashes.iter().any(|&(id, r)| id.index() == i && r <= round)
            });
            if all_done {
                break;
            }
            assert!(executed <= rounds + 2, "replica failed to terminate");
            let before = super::allocations();

            // Step stage: fresh outcome vec each round; threaded exactly
            // like the seed (scoped spawn per chunk, every round).
            let mut outcomes: Vec<StepOutcome> = Vec::with_capacity(n);
            if threads <= 1 || n < 2 * threads {
                for (index, node) in nodes.iter_mut().enumerate() {
                    outcomes.push(step_one(topo, node, index, round));
                }
            } else {
                outcomes.extend((0..n).map(|_| StepOutcome { outbox: Vec::new() }));
                let chunk = n.div_ceil(threads);
                std::thread::scope(|scope| {
                    for (chunk_index, (node_chunk, out_chunk)) in
                        nodes.chunks_mut(chunk).zip(outcomes.chunks_mut(chunk)).enumerate()
                    {
                        let base = chunk_index * chunk;
                        scope.spawn(move || {
                            for (offset, node) in node_chunk.iter_mut().enumerate() {
                                out_chunk[offset] = step_one(topo, node, base + offset, round);
                            }
                        });
                    }
                });
            }

            // Delivery: seed shape — reuse inbox buffers, move each outbox
            // out, sort it unconditionally, recorder call per message.
            for ib in &mut inboxes {
                ib.clear();
            }
            let mut stats = RoundStats { round, ..RoundStats::default() };
            for (src_index, outcome) in outcomes.into_iter().enumerate() {
                let src = NodeId::new(src_index as u32);
                let mut sorted = outcome.outbox;
                sorted.sort_by_key(|(dst, _)| *dst);
                let mut run_dst: Option<NodeId> = None;
                let mut run_len: u64 = 0;
                for (dst, msg) in sorted {
                    if run_dst == Some(dst) {
                        run_len += 1;
                    } else {
                        run_dst = Some(dst);
                        run_len = 1;
                    }
                    stats.max_messages_per_edge = stats.max_messages_per_edge.max(run_len);
                    let bits = 64;
                    stats.messages += 1;
                    stats.bits += bits;
                    stats.max_message_bits = stats.max_message_bits.max(bits);
                    recorder.record(Event { round, kind: EventKind::Deliver, src, dst });
                    inboxes[dst.index()].push((src, msg));
                }
            }
            transcript.push(stats);
            let delta = super::allocations() - before;
            peak = peak.max(delta);
            if executed >= 2 {
                steady = steady.max(delta);
            }
            executed += 1;
        }
        // Seed's run() returned `self.transcript.clone()`.
        let cloned = transcript.clone();
        let elapsed = start.elapsed().as_secs_f64();
        let messages: u64 = cloned.iter().map(|s| s.messages).sum();
        Measurement {
            rounds_per_sec: f64::from(executed) / elapsed,
            messages_per_sec: messages as f64 / elapsed,
            peak_round_allocs: peak,
            steady_round_allocs: steady,
        }
    }
}

fn best(reps: usize, mut f: impl FnMut() -> Measurement) -> Measurement {
    let mut out = f();
    for _ in 1..reps {
        let m = f();
        if m.rounds_per_sec > out.rounds_per_sec {
            out = Measurement {
                rounds_per_sec: m.rounds_per_sec,
                messages_per_sec: m.messages_per_sec,
                ..out
            };
        }
        out.peak_round_allocs = out.peak_round_allocs.min(m.peak_round_allocs);
        out.steady_round_allocs = out.steady_round_allocs.min(m.steady_round_allocs);
    }
    out
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        "{{\"rounds_per_sec\": {:.1}, \"messages_per_sec\": {:.1}, \
         \"peak_round_allocs\": {}, \"steady_round_allocs\": {}}}",
        m.rounds_per_sec, m.messages_per_sec, m.peak_round_allocs, m.steady_round_allocs
    )
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_1.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_engine [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    // Fail on an unwritable output path *before* minutes of measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let (reps, rounds) = if quick { (1usize, 5u32) } else { (3usize, 20u32) };
    let topologies: Vec<(String, Topology)> = if quick {
        vec![
            ("line_200".into(), Topology::grid(1, 200).unwrap()),
            ("grid_10x20".into(), Topology::grid(10, 20).unwrap()),
            ("dense_bipartite_60x400".into(), Topology::complete_bipartite(60, 400).unwrap()),
        ]
    } else {
        vec![
            ("line_4000".into(), Topology::grid(1, 4000).unwrap()),
            ("grid_50x80".into(), Topology::grid(50, 80).unwrap()),
            ("dense_bipartite_60x400".into(), Topology::complete_bipartite(60, 400).unwrap()),
        ]
    };

    let mut entries = Vec::new();
    for (name, topo) in &topologies {
        for &threads in &[1usize, 2, 4, 8] {
            let opt = (threads > 1).then_some(threads);
            let engine = best(reps, || measure_engine(topo, opt, rounds));
            let baseline = best(reps, || seed_replica::measure(topo, opt, rounds));
            let speedup = engine.rounds_per_sec / baseline.rounds_per_sec;
            eprintln!(
                "{name:<24} threads={threads} engine={:>10.0} r/s baseline={:>10.0} r/s \
                 speedup={speedup:.2}x steady_allocs={} vs {}",
                engine.rounds_per_sec,
                baseline.rounds_per_sec,
                engine.steady_round_allocs,
                baseline.steady_round_allocs,
            );
            entries.push(format!(
                "    {{\"topology\": \"{name}\", \"nodes\": {}, \"edges\": {}, \
                 \"rounds\": {rounds}, \"threads\": {threads},\n     \"engine\": {},\n     \
                 \"baseline\": {},\n     \"speedup\": {speedup:.3}}}",
                topo.num_nodes(),
                topo.num_edges(),
                json_measurement(&engine),
                json_measurement(&baseline),
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"engine_round_pipeline\",\n  \"mode\": \"{}\",\n  \
         \"workload\": \"flood (broadcast to all neighbors every round)\",\n  \
         \"baseline\": \"seed engine replica: per-round outbox allocation, \
         unconditional sort, per-message recorder call, transcript clone\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
