//! Experiment E9 binary; see `distfl_bench::experiments::e9_benchmark`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e9_benchmark::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
