//! Experiment E7 binary; see `distfl_bench::experiments::e7_bucket_ablation`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e7_bucket_ablation::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
