//! Experiment E6 binary; see `distfl_bench::experiments::e6_congestion`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e6_congestion::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
