//! Load generator for the `distfl-serve` solver service.
//!
//! Starts an in-process [`distfl_serve::Server`] and measures it three
//! ways, writing one JSON document (default `BENCH_6.json`):
//!
//! - **Open-loop throughput/latency curve** — a single-threaded
//!   multiplexed client (reusing the serve crate's public
//!   [`distfl_serve::reactor::Poller`]) holds ~1000 concurrent
//!   connections and offers requests at a fixed schedule, sweeping the
//!   offered rate. Latency is measured from each request's *scheduled*
//!   send time (no coordinated omission: a client that falls behind
//!   still charges the queueing delay to the server). Each sweep point
//!   records offered vs achieved rps, queue_full rejections, and
//!   p50/p90/p99 latency. The peak achieved rate is the headline number.
//! - **Heavy closed-loop mix** — the BENCH_5-comparable run: 64 blocking
//!   clients × 6 solver-bound requests cycling all four wire solvers
//!   over inline and OR-Library payloads. Reports throughput, latency
//!   percentiles, the **true mean scheduler batch size**
//!   (`serve.requests / serve.batches` — the configured cap is reported
//!   separately as `max_batch`), and pipelining/byte counters.
//! - **Determinism replay** — the same mix against a restarted server, a
//!   different worker count, and different shard counts; every response
//!   line must be byte-identical.
//!
//! Usage: `serve_load [--smoke] [--out PATH]` — `--smoke` shrinks
//! everything for CI while still exercising the pipelined framing path
//! (asserted via the `serve.pipelined_requests` counter).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_serve::frame::{Framed, LineFramer};
use distfl_serve::reactor::{self, Event, Interest, Poller, ReactorKind};
use distfl_serve::{ServeConfig, Server};

// ---------------------------------------------------------------------------
// Open-loop multiplexed client
// ---------------------------------------------------------------------------

/// One sweep point: offer `rate` requests/second for `duration`.
#[derive(Clone, Copy)]
struct SweepPoint {
    rate: f64,
    duration: Duration,
}

/// What one sweep point measured.
struct PointResult {
    offered_rps: f64,
    achieved_rps: f64,
    ok: usize,
    rejected: usize,
    unanswered: usize,
    /// Sorted scheduled-send→response latencies (ns) of ok responses.
    latencies: Vec<u64>,
}

/// One multiplexed load connection.
struct LoadConn {
    stream: TcpStream,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    interest: Interest,
}

impl LoadConn {
    /// Writes pending outbound bytes until the socket pushes back.
    /// Returns false if the connection failed.
    fn flush(&mut self) -> bool {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return false,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        }
        true
    }
}

/// The fixed request line for open-loop request `i` (id = the index, so
/// a response can be matched to its scheduled send time).
fn open_loop_line(i: usize) -> String {
    format!(
        r#"{{"id":"{i}","solver":"greedy","instance":{{"opening":[4.0,3.0],"links":[[0,1.0,1,2.0],[1,0.5]]}}}}"#
    )
}

/// Runs one open-loop sweep point against `addr` from `connections`
/// multiplexed sockets. Requests are assigned round-robin and their send
/// times follow a uniform schedule at `point.rate`.
fn run_open_loop_point(
    addr: std::net::SocketAddr,
    connections: usize,
    point: SweepPoint,
) -> PointResult {
    let total = (point.rate * point.duration.as_secs_f64()).round().max(1.0) as usize;
    let interval = Duration::from_secs_f64(1.0 / point.rate);

    let mut poller = Poller::new(ReactorKind::Auto).expect("client poller");
    let mut conns: Vec<LoadConn> = (0..connections)
        .map(|token| {
            let stream = TcpStream::connect(addr).expect("connect load conn");
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            poller
                .register(reactor::source_id(&stream), token as u64, Interest::READ)
                .expect("register load conn");
            LoadConn {
                stream,
                framer: LineFramer::new(1 << 20),
                out: Vec::new(),
                out_pos: 0,
                interest: Interest::READ,
            }
        })
        .collect();

    let start = Instant::now();
    let deadline = start + point.duration * 4 + Duration::from_secs(10);
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut rejected = 0usize;
    let mut answered = 0usize;
    let mut next_send = 0usize;
    let mut events: Vec<Event> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut dirty: Vec<usize> = Vec::new();

    while answered < total && Instant::now() < deadline {
        // Enqueue every request whose scheduled time has come.
        let now = Instant::now();
        while next_send < total && start + interval.mul_f64(next_send as f64) <= now {
            let conn = &mut conns[next_send % connections];
            if conn.out.is_empty() {
                dirty.push(next_send % connections);
            }
            conn.out.extend_from_slice(open_loop_line(next_send).as_bytes());
            conn.out.push(b'\n');
            next_send += 1;
        }
        // Flush the connections touched this tick; re-arm write interest
        // on the ones the kernel pushed back on.
        for &index in &dirty {
            let conn = &mut conns[index];
            assert!(conn.flush(), "load connection {index} failed");
            let want = Interest { read: true, write: !conn.out.is_empty() };
            if want != conn.interest {
                conn.interest = want;
                poller
                    .set_interest(reactor::source_id(&conn.stream), index as u64, want)
                    .expect("set interest");
            }
        }
        dirty.clear();

        let timeout = if next_send < total {
            let due = start + interval.mul_f64(next_send as f64);
            due.saturating_duration_since(Instant::now())
        } else {
            Duration::from_millis(5)
        };
        poller.wait(&mut events, Some(timeout)).expect("client poll");
        for &event in &events {
            let index = event.token as usize;
            if index >= conns.len() {
                continue;
            }
            if event.writable {
                dirty.push(index);
            }
            if !event.readable {
                continue;
            }
            loop {
                let conn = &mut conns[index];
                match conn.stream.read(&mut scratch) {
                    Ok(0) => panic!("server closed load connection {index} mid-run"),
                    Ok(n) => {
                        let received = Instant::now();
                        let chunk = &scratch[..n];
                        conns[index].framer.feed(chunk, &mut |framed| {
                            let Framed::Line(line) = framed else {
                                panic!("oversized response line")
                            };
                            let text = std::str::from_utf8(line).expect("UTF-8 response");
                            let id: usize =
                                extract_id(text).parse().expect("open-loop ids are indices");
                            answered += 1;
                            if text.contains(r#""ok":true"#) {
                                let scheduled = start + interval.mul_f64(id as f64);
                                latencies
                                    .push(received.saturating_duration_since(scheduled).as_nanos()
                                        as u64);
                            } else {
                                assert!(
                                    text.contains(r#""kind":"queue_full""#),
                                    "unexpected failure: {text}"
                                );
                                rejected += 1;
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => panic!("load connection {index} read error: {e}"),
                }
            }
        }
    }

    let wall = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    PointResult {
        offered_rps: point.rate,
        achieved_rps: latencies.len() as f64 / wall,
        ok: latencies.len(),
        rejected,
        unanswered: total - answered,
        latencies,
    }
}

// ---------------------------------------------------------------------------
// Heavy closed-loop mix (BENCH_5-comparable)
// ---------------------------------------------------------------------------

/// The shape of one closed-loop run.
#[derive(Clone)]
struct Plan {
    clients: usize,
    per_client: usize,
    workers: usize,
    max_batch: usize,
    shards: usize,
}

impl Plan {
    fn heavy(smoke: bool) -> Plan {
        if smoke {
            Plan { clients: 8, per_client: 3, workers: 2, max_batch: 8, shards: 0 }
        } else {
            Plan { clients: 64, per_client: 6, workers: 4, max_batch: 16, shards: 0 }
        }
    }

    fn requests(&self) -> usize {
        self.clients * self.per_client
    }
}

/// The deterministic heavy request line for client `ci`, request `ri`:
/// cycles all four wire solvers over inline and OR-Library payloads.
fn heavy_request_line(ci: usize, ri: usize) -> String {
    let solver = ["greedy", "local-search", "jv", "paydual"][(ci + ri) % 4];
    let seed = (ci * 31 + ri) as u64;
    let mut w = distfl_obs::JsonWriter::object();
    w.key("id").string(&format!("c{ci}-r{ri}"));
    w.key("solver").string(solver);
    w.key("seed").number_u64(seed);
    if (ci + ri).is_multiple_of(2) {
        let shift = (ci % 5) as f64 * 0.25;
        w.key("instance").begin_object();
        w.key("opening").begin_array().number(4.0 + shift).number(3.0).end_array();
        w.key("links").begin_array();
        w.begin_array().number_u64(0).number(1.0 + shift).number_u64(1).number(2.0).end_array();
        w.begin_array().number_u64(1).number(0.5).end_array();
        w.end_array();
        w.end_object();
    } else {
        let facilities = 4 + ri % 3;
        let clients = 10 + (ci % 4) * 3;
        let inst = UniformRandom::new(facilities, clients)
            .expect("mix instance shape")
            .generate(seed)
            .expect("mix instance");
        w.key("orlib").string(&distfl_instance::orlib::to_string(&inst).expect("orlib encode"));
    }
    w.finish()
}

struct RunResult {
    /// Sorted round-trip times in nanoseconds.
    latencies: Vec<u64>,
    responses: BTreeMap<String, String>,
    wall_secs: f64,
    /// `serve.requests / serve.batches` — the batch size the scheduler
    /// actually achieved (NOT the configured cap).
    mean_batch: f64,
}

/// One closed-loop run: blocking clients released together by a barrier
/// so admissions burst and the schedulers actually batch.
fn run_closed_loop(plan: &Plan, mix: &[Vec<String>]) -> RunResult {
    distfl_obs::metrics_reset();
    let config = ServeConfig {
        queue_capacity: 256,
        max_batch: plan.max_batch,
        workers: Some(plan.workers),
        shards: plan.shards,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind load server");
    let addr = server.local_addr();

    type Collected = (Vec<u64>, BTreeMap<String, String>);
    let barrier = Arc::new(Barrier::new(mix.len()));
    let collected: Arc<Mutex<Collected>> = Arc::new(Mutex::new((Vec::new(), BTreeMap::new())));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for lines in mix {
            let barrier = Arc::clone(&barrier);
            let collected = Arc::clone(&collected);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect load client");
                stream.set_nodelay(true).expect("set nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(lines.len());
                let mut responses = BTreeMap::new();
                barrier.wait();
                for line in lines {
                    let sent = Instant::now();
                    writeln!(writer, "{line}").expect("send request");
                    let mut response = String::new();
                    let n = reader.read_line(&mut response).expect("read response");
                    assert!(n > 0, "server closed mid-run");
                    latencies.push(sent.elapsed().as_nanos() as u64);
                    let response = response.trim_end().to_owned();
                    let id = extract_id(&response).to_owned();
                    assert!(response.contains(r#""ok":true"#), "failed response: {response}");
                    responses.insert(id, response);
                }
                let mut guard = collected.lock().expect("collect lock");
                guard.0.extend(latencies);
                guard.1.extend(responses);
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    server.shutdown();

    let requests = distfl_obs::counter("serve.requests").get();
    let batches = distfl_obs::counter("serve.batches").get();
    let mean_batch = if batches > 0 { requests as f64 / batches as f64 } else { 0.0 };
    let (mut latencies, responses) =
        Arc::try_unwrap(collected).expect("collectors done").into_inner().expect("collect lock");
    latencies.sort_unstable();
    RunResult { latencies, responses, wall_secs, mean_batch }
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// The `"id"` member of a response line (responses put it first).
fn extract_id(response: &str) -> &str {
    let rest = response.strip_prefix(r#"{"id":""#).expect("response starts with id");
    &rest[..rest.find('"').expect("id is terminated")]
}

/// The `q`-th percentile (0–100) of sorted `values`, nearest-rank.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn us(ns: u64) -> f64 {
    (ns as f64 / 100.0).round() / 10.0
}

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_6.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: serve_load [--smoke] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    // Metrics feed the batching/pipelining numbers; spans stay cheap and
    // in-memory.
    distfl_obs::set_enabled(true);

    // --- Open-loop sweep -------------------------------------------------
    let connections = if smoke { 32 } else { 1000 };
    let sweep: Vec<SweepPoint> = if smoke {
        vec![SweepPoint { rate: 2_000.0, duration: Duration::from_millis(300) }]
    } else {
        [4_000.0, 8_000.0, 16_000.0, 24_000.0, 32_000.0, 48_000.0]
            .into_iter()
            .map(|rate| SweepPoint { rate, duration: Duration::from_secs(2) })
            .collect()
    };
    // One shard and an inline pool: on a single-core host extra threads
    // only add context switches to the hot path.
    distfl_obs::metrics_reset();
    let curve_config = ServeConfig {
        queue_capacity: 4096,
        max_batch: 64,
        workers: Some(0),
        shards: 1,
        ..ServeConfig::default()
    };
    let curve_server = Server::start("127.0.0.1:0", curve_config).expect("bind curve server");
    let curve_addr = curve_server.local_addr();
    println!("serve_load: open-loop sweep, {connections} connections");
    let mut curve: Vec<PointResult> = Vec::new();
    for point in &sweep {
        let result = run_open_loop_point(curve_addr, connections, *point);
        println!(
            "  offered {:>6.0} rps -> achieved {:>6.0} rps, ok {} rejected {} unanswered {}, \
             p50 {:.0}us p99 {:.0}us",
            result.offered_rps,
            result.achieved_rps,
            result.ok,
            result.rejected,
            result.unanswered,
            us(percentile(&result.latencies, 50.0)),
            us(percentile(&result.latencies, 99.0)),
        );
        curve.push(result);
    }
    // Deterministic pipelined burst: 50 requests in one write() syscall,
    // so the framing/group-admission path is exercised even when the
    // sweep's rate never makes sends coalesce.
    {
        let mut stream = TcpStream::connect(curve_addr).expect("connect burst conn");
        stream.set_nodelay(true).expect("nodelay");
        let mut burst = String::new();
        for i in 0..50 {
            burst.push_str(&open_loop_line(1_000_000 + i));
            burst.push('\n');
        }
        stream.write_all(burst.as_bytes()).expect("write burst");
        let mut reader = BufReader::new(stream);
        for _ in 0..50 {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).expect("read burst response") > 0);
            assert!(line.contains(r#""ok":true"#), "{line}");
        }
    }
    let pipelined = distfl_obs::counter("serve.pipelined_requests").get();
    let wakeups = distfl_obs::counter("serve.reactor_wakeups").get();
    let bytes_read = distfl_obs::counter("serve.bytes_read").get();
    let bytes_written = distfl_obs::counter("serve.bytes_written").get();
    curve_server.shutdown();
    assert!(pipelined > 0, "the pipelined framing path must be exercised");
    let peak = curve.iter().map(|p| p.achieved_rps).fold(0.0f64, f64::max);

    // --- Heavy closed-loop mix -------------------------------------------
    let plan = Plan::heavy(smoke);
    let mix: Vec<Vec<String>> = (0..plan.clients)
        .map(|ci| (0..plan.per_client).map(|ri| heavy_request_line(ci, ri)).collect())
        .collect();
    println!(
        "serve_load: heavy mix, {} clients x {} requests, {} workers, max_batch {}",
        plan.clients, plan.per_client, plan.workers, plan.max_batch
    );
    let heavy = run_closed_loop(&plan, &mix);
    assert_eq!(heavy.responses.len(), plan.requests(), "every request answered once");
    let heavy_rps = plan.requests() as f64 / heavy.wall_secs;

    // --- Determinism replays ----------------------------------------------
    let restarted = run_closed_loop(&plan, &mix);
    let resized = run_closed_loop(&Plan { workers: plan.workers / 2, ..plan.clone() }, &mix);
    let one_shard = run_closed_loop(&Plan { shards: 1, ..plan.clone() }, &mix);
    let four_shards = run_closed_loop(&Plan { shards: 4, ..plan.clone() }, &mix);
    assert_eq!(heavy.responses, restarted.responses, "responses changed across a restart");
    assert_eq!(heavy.responses, resized.responses, "responses changed with the worker count");
    assert_eq!(heavy.responses, one_shard.responses, "responses changed with 1 shard");
    assert_eq!(heavy.responses, four_shards.responses, "responses changed with 4 shards");

    // --- Report -----------------------------------------------------------
    let mut w = distfl_obs::JsonWriter::object();
    w.key("bench").string("serve_load");
    w.key("mode").string(if smoke { "smoke" } else { "full" });
    w.key("open_loop").begin_object();
    w.key("connections").number_u64(connections as u64);
    w.key("point_duration_secs").number(sweep[0].duration.as_secs_f64());
    w.key("peak_achieved_rps").number((peak * 10.0).round() / 10.0);
    w.key("pipelined_requests").number_u64(pipelined);
    w.key("reactor_wakeups").number_u64(wakeups);
    w.key("bytes_read").number_u64(bytes_read);
    w.key("bytes_written").number_u64(bytes_written);
    w.key("curve").begin_array();
    for point in &curve {
        w.begin_object();
        w.key("offered_rps").number(point.offered_rps);
        w.key("achieved_rps").number((point.achieved_rps * 10.0).round() / 10.0);
        w.key("ok").number_u64(point.ok as u64);
        w.key("rejected").number_u64(point.rejected as u64);
        w.key("unanswered").number_u64(point.unanswered as u64);
        w.key("latency_us").begin_object();
        w.key("p50").number(us(percentile(&point.latencies, 50.0)));
        w.key("p90").number(us(percentile(&point.latencies, 90.0)));
        w.key("p99").number(us(percentile(&point.latencies, 99.0)));
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.key("heavy_mix").begin_object();
    w.key("clients").number_u64(plan.clients as u64);
    w.key("requests_per_client").number_u64(plan.per_client as u64);
    w.key("workers").number_u64(plan.workers as u64);
    w.key("requests").number_u64(plan.requests() as u64);
    w.key("wall_secs").number((heavy.wall_secs * 1e6).round() / 1e6);
    w.key("throughput_rps").number((heavy_rps * 10.0).round() / 10.0);
    w.key("latency_us").begin_object();
    w.key("p50").number(us(percentile(&heavy.latencies, 50.0)));
    w.key("p90").number(us(percentile(&heavy.latencies, 90.0)));
    w.key("p99").number(us(percentile(&heavy.latencies, 99.0)));
    w.end_object();
    w.key("mean_batch_size").number((heavy.mean_batch * 100.0).round() / 100.0);
    w.key("max_batch").number_u64(plan.max_batch as u64);
    w.end_object();
    w.key("deterministic").begin_object();
    w.key("across_restart").boolean(true);
    w.key("across_worker_counts").boolean(true);
    w.key("across_shard_counts").boolean(true);
    w.end_object();
    let doc = w.finish();
    distfl_obs::validate_json(&doc).expect("bench document is valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench document");

    println!(
        "  open-loop peak {:.0} rps; heavy mix {:.0} rps, mean batch {:.2} (cap {})",
        peak, heavy_rps, heavy.mean_batch, plan.max_batch
    );
    println!("  responses byte-identical across restart, worker, and shard counts; wrote {out}");
}
