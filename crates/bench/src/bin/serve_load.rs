//! Load generator for the `distfl-serve` batching solver service.
//!
//! Starts an in-process [`distfl_serve::Server`], fires a deterministic
//! request mix at it from many concurrent TCP clients (released together
//! by a barrier so admissions burst and the scheduler actually batches),
//! and writes one JSON document (default `BENCH_5.json`) with:
//!
//! - **throughput** — requests per second over the measured run;
//! - **latency** — per-request round-trip percentiles (p50/p90/p99) in
//!   microseconds;
//! - **batching** — `serve.requests` / `serve.batches` from the obs
//!   registry, i.e. the mean batch size the scheduler achieved;
//! - **determinism** — the same mix replayed against a restarted server
//!   and against a server with a different worker count, asserting every
//!   response line is byte-identical across all three runs.
//!
//! The mix cycles all four wire solvers (greedy, local-search, jv,
//! paydual) over inline and OR-Library instance payloads. Usage:
//! `serve_load [--smoke] [--out PATH]` — `--smoke` shrinks the mix for
//! CI while exercising every code path.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_serve::{ServeConfig, Server};

/// The shape of one load run.
struct Plan {
    clients: usize,
    per_client: usize,
    workers: usize,
    max_batch: usize,
}

impl Plan {
    fn full() -> Plan {
        Plan { clients: 64, per_client: 6, workers: 4, max_batch: 16 }
    }

    fn smoke() -> Plan {
        Plan { clients: 8, per_client: 3, workers: 2, max_batch: 8 }
    }

    fn requests(&self) -> usize {
        self.clients * self.per_client
    }
}

/// The deterministic request line for client `ci`, request `ri`.
///
/// Cycles solvers and alternates inline instances with OR-Library
/// payloads of varying size; the id encodes the position so responses
/// can be matched across runs.
fn request_line(ci: usize, ri: usize) -> String {
    let solver = ["greedy", "local-search", "jv", "paydual"][(ci + ri) % 4];
    let seed = (ci * 31 + ri) as u64;
    let mut w = distfl_obs::JsonWriter::object();
    w.key("id").string(&format!("c{ci}-r{ri}"));
    w.key("solver").string(solver);
    w.key("seed").number_u64(seed);
    if (ci + ri).is_multiple_of(2) {
        // Inline: a small two-facility instance whose costs vary with the
        // position, so responses differ across the mix.
        let shift = (ci % 5) as f64 * 0.25;
        w.key("instance").begin_object();
        w.key("opening").begin_array().number(4.0 + shift).number(3.0).end_array();
        w.key("links").begin_array();
        w.begin_array().number_u64(0).number(1.0 + shift).number_u64(1).number(2.0).end_array();
        w.begin_array().number_u64(1).number(0.5).end_array();
        w.end_array();
        w.end_object();
    } else {
        let facilities = 4 + ri % 3;
        let clients = 10 + (ci % 4) * 3;
        let inst = UniformRandom::new(facilities, clients)
            .expect("mix instance shape")
            .generate(seed)
            .expect("mix instance");
        w.key("orlib").string(&distfl_instance::orlib::to_string(&inst).expect("orlib encode"));
    }
    w.finish()
}

/// Per-request round-trip nanoseconds plus every response keyed by id.
type Collected = (Vec<u64>, BTreeMap<String, String>);

/// One complete run: serve the whole mix, return per-request round-trip
/// nanoseconds, every response keyed by request id, the wall-clock
/// seconds, and the mean scheduler batch size.
fn run_load(plan: &Plan, mix: &[Vec<String>]) -> RunResult {
    distfl_obs::metrics_reset();
    let config = ServeConfig {
        queue_capacity: 256,
        max_batch: plan.max_batch,
        workers: Some(plan.workers),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).expect("bind load server");
    let addr = server.local_addr();

    let barrier = Arc::new(Barrier::new(mix.len()));
    let collected: Arc<Mutex<Collected>> = Arc::new(Mutex::new((Vec::new(), BTreeMap::new())));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for lines in mix {
            let barrier = Arc::clone(&barrier);
            let collected = Arc::clone(&collected);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect load client");
                stream.set_nodelay(true).expect("set nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut writer = stream;
                let mut latencies = Vec::with_capacity(lines.len());
                let mut responses = BTreeMap::new();
                barrier.wait();
                for line in lines {
                    let sent = Instant::now();
                    writeln!(writer, "{line}").expect("send request");
                    let mut response = String::new();
                    let n = reader.read_line(&mut response).expect("read response");
                    assert!(n > 0, "server closed mid-run");
                    latencies.push(sent.elapsed().as_nanos() as u64);
                    let response = response.trim_end().to_owned();
                    let id = extract_id(&response);
                    assert!(response.contains(r#""ok":true"#), "failed response: {response}");
                    responses.insert(id, response);
                }
                let mut guard = collected.lock().expect("collect lock");
                guard.0.extend(latencies);
                guard.1.extend(responses);
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();
    server.shutdown();

    let requests = distfl_obs::counter("serve.requests").get();
    let batches = distfl_obs::counter("serve.batches").get();
    let mean_batch = if batches > 0 { requests as f64 / batches as f64 } else { 0.0 };
    let (mut latencies, responses) =
        Arc::try_unwrap(collected).expect("collectors done").into_inner().expect("collect lock");
    latencies.sort_unstable();
    RunResult { latencies, responses, wall_secs, mean_batch }
}

struct RunResult {
    /// Sorted round-trip times in nanoseconds.
    latencies: Vec<u64>,
    responses: BTreeMap<String, String>,
    wall_secs: f64,
    mean_batch: f64,
}

/// The `"id"` member of a response line (responses put it first).
fn extract_id(response: &str) -> String {
    let rest = response.strip_prefix(r#"{"id":""#).expect("response starts with id");
    rest.chars().take_while(|c| *c != '"').collect()
}

/// The `q`-th percentile (0–100) of sorted `values`, nearest-rank.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() {
    let mut smoke = false;
    let mut out = "BENCH_5.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("usage: serve_load [--smoke] [--out PATH] (got {other:?})");
                std::process::exit(2);
            }
        }
    }
    let plan = if smoke { Plan::smoke() } else { Plan::full() };
    // Metrics feed the batching numbers; spans stay cheap and in-memory.
    distfl_obs::set_enabled(true);

    let mix: Vec<Vec<String>> = (0..plan.clients)
        .map(|ci| (0..plan.per_client).map(|ri| request_line(ci, ri)).collect())
        .collect();

    println!(
        "serve_load: {} clients x {} requests, {} workers, max_batch {}",
        plan.clients, plan.per_client, plan.workers, plan.max_batch
    );
    let measured = run_load(&plan, &mix);
    assert_eq!(measured.responses.len(), plan.requests(), "every request answered once");

    // Determinism: a restarted server and a differently-sized pool must
    // produce byte-identical response lines for the same mix.
    let restarted = run_load(&plan, &mix);
    let resized_plan = Plan { workers: plan.workers / 2, ..plan };
    let resized = run_load(&resized_plan, &mix);
    assert_eq!(measured.responses, restarted.responses, "responses changed across a restart");
    assert_eq!(measured.responses, resized.responses, "responses changed with the worker count");

    let throughput = plan.requests() as f64 / measured.wall_secs;
    let to_us = |ns: u64| ns as f64 / 1000.0;
    let p50 = to_us(percentile(&measured.latencies, 50.0));
    let p90 = to_us(percentile(&measured.latencies, 90.0));
    let p99 = to_us(percentile(&measured.latencies, 99.0));

    let mut w = distfl_obs::JsonWriter::object();
    w.key("bench").string("serve_load");
    w.key("mode").string(if smoke { "smoke" } else { "full" });
    w.key("clients").number_u64(plan.clients as u64);
    w.key("requests_per_client").number_u64(plan.per_client as u64);
    w.key("workers").number_u64(plan.workers as u64);
    w.key("max_batch").number_u64(plan.max_batch as u64);
    w.key("requests").number_u64(plan.requests() as u64);
    w.key("wall_secs").number((measured.wall_secs * 1e6).round() / 1e6);
    w.key("throughput_rps").number((throughput * 10.0).round() / 10.0);
    w.key("latency_us").begin_object();
    w.key("p50").number(p50);
    w.key("p90").number(p90);
    w.key("p99").number(p99);
    w.end_object();
    w.key("mean_batch_size").number((measured.mean_batch * 100.0).round() / 100.0);
    w.key("deterministic").begin_object();
    w.key("across_restart").boolean(true);
    w.key("across_worker_counts").boolean(true);
    w.key("resized_workers").number_u64(resized_plan.workers as u64);
    w.end_object();
    let doc = w.finish();
    distfl_obs::validate_json(&doc).expect("bench document is valid JSON");
    std::fs::write(&out, format!("{doc}\n")).expect("write bench document");

    println!(
        "  {:.0} req/s; latency us p50 {p50:.0} p90 {p90:.0} p99 {p99:.0}; mean batch {:.2}",
        throughput, measured.mean_batch
    );
    println!("  responses byte-identical across restart and worker counts; wrote {out}");
}
