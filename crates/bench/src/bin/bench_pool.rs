//! Machine-readable benchmark for the persistent worker-pool subsystem.
//!
//! Three measurements, one JSON document (default `BENCH_3.json`):
//!
//! 1. **dispatch** — the cost of one fork/join batch of `k` trivial tasks
//!    via `std::thread::scope` (a fresh OS thread per task, the shape the
//!    engine used before the pool) vs [`distfl_pool::WorkerPool::scope`]
//!    (persistent workers, no spawn). This isolates pure dispatch
//!    overhead and is the measurement behind the engine's
//!    `PARALLEL_MIN_VOLUME` retuning.
//! 2. **flood** — a staged step/deliver round pipeline on a dense
//!    bipartite topology (medium traffic: ~8k messages per round), run
//!    with the *same* worker code under both dispatch mechanisms at
//!    thread counts {1, 2, 4, 8}. The speedup is the per-round win from
//!    eliminating thread spawns.
//! 3. **exp_all_quick** — `experiments::run_all(quick)` serial (zero
//!    workers, trials inline) vs pooled, asserting the emitted CSVs are
//!    byte-identical and reporting both wall clocks.
//!
//! The document records `"cores"`: on a single-core host the dispatch and
//! flood wins are real (both contenders get the same core; only the spawn
//! overhead differs) while multi-core scaling of `exp_all` is not
//! measurable — the JSON says which regime produced it.
//!
//! Usage: `bench_pool [--quick] [--smoke] [--out PATH]`.

use std::sync::Arc;
use std::time::Instant;

use distfl_congest::{NodeId, Topology, WorkerPool};

/// Nanoseconds for the best (minimum) of `reps` timed runs of `f`.
fn best_nanos(reps: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// One fork/join batch of `k` trivial tasks on fresh scoped threads.
fn scoped_batch(k: usize) {
    std::thread::scope(|scope| {
        for _ in 0..k {
            scope.spawn(|| {
                std::hint::black_box(0u64);
            });
        }
    });
}

/// The same batch dispatched onto the persistent pool.
fn pool_batch(pool: &WorkerPool, k: usize) {
    pool.scope(|scope| {
        for _ in 0..k {
            scope.spawn(|| {
                std::hint::black_box(0u64);
            });
        }
    });
}

/// How a flood round dispatches its two stages.
enum Dispatch {
    Scoped,
    Pool(Arc<WorkerPool>),
}

/// A staged step/deliver flood pipeline mirroring the engine's shape:
/// persistent outbox/inbox buffers, chunked node stepping, sharded
/// delivery. The *only* difference between the two dispatch modes is who
/// runs the chunk closures — fresh scoped threads or pool workers.
struct FloodPipeline {
    topo: Topology,
    outboxes: Vec<Vec<(NodeId, u64)>>,
    inboxes: Vec<Vec<(NodeId, u64)>>,
}

impl FloodPipeline {
    fn new(topo: Topology) -> Self {
        let n = topo.num_nodes();
        Self {
            topo,
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Runs `rounds` rounds at the given thread count; returns delivered
    /// messages (used to keep the work honest across modes).
    fn run(&mut self, threads: usize, rounds: u32, dispatch: &Dispatch) -> u64 {
        let n = self.topo.num_nodes();
        let chunk = n.div_ceil(threads.max(1));
        let mut delivered = 0u64;
        for round in 0..rounds {
            let topo = &self.topo;
            // Step stage: every node broadcasts the round counter.
            let step = |base: usize, outbox_chunk: &mut [Vec<(NodeId, u64)>]| {
                for (offset, outbox) in outbox_chunk.iter_mut().enumerate() {
                    outbox.clear();
                    let id = NodeId::new((base + offset) as u32);
                    for &nb in topo.neighbors(id) {
                        outbox.push((nb, u64::from(round)));
                    }
                }
            };
            let step = &step;
            match dispatch {
                Dispatch::Scoped => std::thread::scope(|scope| {
                    for (ci, oc) in self.outboxes.chunks_mut(chunk).enumerate() {
                        scope.spawn(move || step(ci * chunk, oc));
                    }
                }),
                Dispatch::Pool(pool) => {
                    pool.scope(|scope| {
                        for (ci, oc) in self.outboxes.chunks_mut(chunk).enumerate() {
                            scope.spawn(move || step(ci * chunk, oc));
                        }
                    });
                }
            }
            // Deliver stage: each shard owns an inbox range and scans all
            // outboxes for messages addressed into it.
            let outboxes = &self.outboxes;
            let deliver = |base: usize, inbox_chunk: &mut [Vec<(NodeId, u64)>]| {
                let hi = base + inbox_chunk.len();
                for inbox in inbox_chunk.iter_mut() {
                    inbox.clear();
                }
                for (src_index, outbox) in outboxes.iter().enumerate() {
                    let src = NodeId::new(src_index as u32);
                    for &(dst, msg) in outbox {
                        let d = dst.index();
                        if d >= base && d < hi {
                            inbox_chunk[d - base].push((src, msg));
                        }
                    }
                }
            };
            let deliver = &deliver;
            match dispatch {
                Dispatch::Scoped => std::thread::scope(|scope| {
                    for (ci, ic) in self.inboxes.chunks_mut(chunk).enumerate() {
                        scope.spawn(move || deliver(ci * chunk, ic));
                    }
                }),
                Dispatch::Pool(pool) => {
                    pool.scope(|scope| {
                        for (ci, ic) in self.inboxes.chunks_mut(chunk).enumerate() {
                            scope.spawn(move || deliver(ci * chunk, ic));
                        }
                    });
                }
            }
            delivered += self.inboxes.iter().map(|ib| ib.len() as u64).sum::<u64>();
        }
        delivered
    }
}

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut out_path = "BENCH_3.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_pool [--quick] [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        quick = true;
    }
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 1. Dispatch microbenchmark.
    let dispatch_reps = if quick { 200 } else { 2_000 };
    let mut dispatch_entries = Vec::new();
    for &k in &[2usize, 4, 8] {
        let pool = WorkerPool::shared(k - 1);
        // Warm both paths once before timing.
        scoped_batch(k);
        pool_batch(&pool, k);
        let scoped_ns = best_nanos(dispatch_reps, || scoped_batch(k));
        let pool_ns = best_nanos(dispatch_reps, || pool_batch(&pool, k));
        let speedup = scoped_ns as f64 / pool_ns as f64;
        eprintln!("dispatch k={k}: scoped={scoped_ns} ns pool={pool_ns} ns speedup={speedup:.1}x");
        dispatch_entries.push(format!(
            "    {{\"tasks\": {k}, \"scoped_spawn_ns\": {scoped_ns}, \
             \"pool_ns\": {pool_ns}, \"speedup\": {speedup:.2}}}"
        ));
    }

    // 2. Flood pipeline: same staged worker code, two dispatch modes.
    let (flood_reps, flood_rounds) = if smoke { (1usize, 3u32) } else { (3usize, 20u32) };
    let thread_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let topo = Topology::complete_bipartite(20, 200).expect("topology");
    let mut flood_entries = Vec::new();
    for &threads in thread_counts {
        let pool = WorkerPool::shared(threads.saturating_sub(1));
        let mut pipeline = FloodPipeline::new(topo.clone());
        // Warm-up + message-count cross-check between the two modes.
        let scoped_msgs = pipeline.run(threads, 1, &Dispatch::Scoped);
        let pool_msgs = pipeline.run(threads, 1, &Dispatch::Pool(Arc::clone(&pool)));
        assert_eq!(scoped_msgs, pool_msgs, "modes must do identical work");
        let scoped_ns = best_nanos(flood_reps, || {
            pipeline.run(threads, flood_rounds, &Dispatch::Scoped);
        });
        let pool_dispatch = Dispatch::Pool(Arc::clone(&pool));
        let pool_ns = best_nanos(flood_reps, || {
            pipeline.run(threads, flood_rounds, &pool_dispatch);
        });
        let per_round = |ns: u64| f64::from(flood_rounds) / (ns as f64 / 1e9);
        let speedup = scoped_ns as f64 / pool_ns as f64;
        eprintln!(
            "flood threads={threads}: scoped={:.0} r/s pool={:.0} r/s speedup={speedup:.2}x",
            per_round(scoped_ns),
            per_round(pool_ns),
        );
        flood_entries.push(format!(
            "    {{\"threads\": {threads}, \"msgs_per_round\": {}, \
             \"scoped_rounds_per_sec\": {:.1}, \"pool_rounds_per_sec\": {:.1}, \
             \"speedup\": {speedup:.2}}}",
            scoped_msgs,
            per_round(scoped_ns),
            per_round(pool_ns),
        ));
    }

    // 3. exp_all --quick, serial vs pooled, with a byte-equality check.
    let exp_json = if smoke {
        "null".to_owned()
    } else {
        distfl_bench::set_sweep_workers(0);
        let start = Instant::now();
        let serial = distfl_bench::experiments::run_all(true);
        let serial_secs = start.elapsed().as_secs_f64();

        let workers = if cores > 1 { cores - 1 } else { 3 };
        distfl_bench::set_sweep_workers(workers);
        let start = Instant::now();
        let pooled = distfl_bench::experiments::run_all(true);
        let pooled_secs = start.elapsed().as_secs_f64();
        distfl_bench::set_sweep_workers(0);

        assert_eq!(serial.len(), pooled.len(), "table count must not depend on workers");
        let identical =
            serial.iter().zip(&pooled).all(|(a, b)| a.id() == b.id() && a.to_csv() == b.to_csv());
        assert!(identical, "pooled sweep produced different CSV bytes than serial");
        let speedup = serial_secs / pooled_secs;
        eprintln!(
            "exp_all quick: serial={serial_secs:.2}s pooled({workers} workers)={pooled_secs:.2}s \
             speedup={speedup:.2}x csv_identical={identical}"
        );
        format!(
            "{{\"serial_secs\": {serial_secs:.3}, \"pooled_secs\": {pooled_secs:.3}, \
             \"pool_workers\": {workers}, \"speedup\": {speedup:.2}, \
             \"csv_identical\": {identical}}}"
        )
    };

    let json = format!(
        "{{\n  \"bench\": \"worker_pool\",\n  \"mode\": \"{}\",\n  \"cores\": {cores},\n  \
         \"note\": \"dispatch and flood compare identical work under scoped-spawn vs \
         persistent-pool dispatch, so their speedups hold at any core count; exp_all \
         parallel scaling additionally needs cores > 1\",\n  \
         \"dispatch\": [\n{}\n  ],\n  \"flood\": [\n{}\n  ],\n  \
         \"exp_all_quick\": {}\n}}\n",
        if smoke {
            "smoke"
        } else if quick {
            "quick"
        } else {
            "full"
        },
        dispatch_entries.join(",\n"),
        flood_entries.join(",\n"),
        exp_json
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
