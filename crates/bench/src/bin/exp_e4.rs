//! Experiment E4 binary; see `distfl_bench::experiments::e4_comparison`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e4_comparison::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
