//! Experiment E10 binary; see `distfl_bench::experiments::e10_faults`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e10_faults::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
