//! Experiment E3 binary; see `distfl_bench::experiments::e3_rho`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e3_rho::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
