//! Experiment E8 binary; see `distfl_bench::experiments::e8_paydual_ablation`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e8_paydual_ablation::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
