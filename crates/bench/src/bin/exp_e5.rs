//! Experiment E5 binary; see `distfl_bench::experiments::e5_rounding`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e5_rounding::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
