//! Machine-readable benchmark for the warm-start delta path.
//!
//! Pits the incremental pipeline — `Instance::apply_delta` +
//! `WarmCache::apply_delta` + a warm solve — against the from-scratch
//! pipeline — rebuild the instance through `InstanceBuilder` + a cold
//! solve — on the `capb_shaped_100x1000` instance (100 facilities x 1000
//! clients, dense: the BENCH_2/BENCH_7 shape), across churn rates from
//! 0.1% to 20% of links repriced per delta. Every timed step first
//! asserts the warm solution is **identical** to the cold one, so a
//! speedup reported here is a speedup on the *same* answer.
//!
//! A counting global allocator reports steady-state allocations per
//! delta+solve cycle on the warm path; the smoke gate bounds them, so a
//! patch-path regression to per-row reallocation (the thing the spare/
//! swap buffers exist to avoid) fails CI rather than silently eating the
//! speedup.
//!
//! Emits a single JSON document (default `BENCH_8.json`). `--smoke` skips
//! the timing and runs only the equivalence sweep (all three warm solvers
//! over random delta schedules on a small instance) plus the allocation
//! budget on the full shape, exiting non-zero on any violation — the
//! cheap CI gate. `--quick` shrinks repetitions for a fast local run.
//!
//! Usage: `bench_delta [--smoke] [--quick] [--out PATH]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use distfl_core::warm::WarmCache;
use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_instance::{ClientId, Cost, DeltaBatch, FacilityId, Instance, InstanceBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Move cap matching the serve dispatch, so local-search rows compare
/// like-for-like with the service's behavior.
const LS_MOVES: u32 = 10_000;

/// Steady-state allocation budget for one warm delta+greedy-solve cycle
/// (apply the delta to the warm cache, run the warm greedy solve). The
/// measured value sits around a dozen — the solution container and the
/// assignment clone — so triple-digit growth means the patch path started
/// reallocating per row.
const ALLOC_BUDGET: u64 = 128;

// ---- Counting allocator ----------------------------------------------

/// Forwards to the system allocator, counting allocation events (alloc +
/// realloc; frees are not interesting here).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation events recorded while running `f`.
fn count_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOC_EVENTS.load(Ordering::Relaxed) - before)
}

// ---- Delta schedules --------------------------------------------------

/// Draws a reprice-only batch touching `links` distinct existing links —
/// the churn knob: `links / instance.num_links()` is exactly the drift
/// the warm cache sees, so rates map one-to-one onto patch behavior.
fn reprice_batch(inst: &Instance, rng: &mut StdRng, links: usize) -> DeltaBatch {
    let n = inst.num_clients() as u32;
    let mut batch = DeltaBatch::new();
    let mut seen: Vec<(u32, u32)> = Vec::with_capacity(links);
    while seen.len() < links {
        let j = rng.gen_range(0..n);
        let row = inst.client_links(ClientId::new(j));
        let i = row.ids[rng.gen_range(0..row.len())];
        if seen.contains(&(j, i)) {
            continue;
        }
        seen.push((j, i));
        batch.reprice(
            ClientId::new(j),
            FacilityId::new(i),
            Cost::new(rng.gen_range(0.1..100.0f64)).unwrap(),
        );
    }
    batch
}

/// Rebuilds `inst` from its rows through the public builder — the
/// from-scratch path's instance-construction cost (what a client pays to
/// re-upload instead of sending a delta).
fn rebuild(inst: &Instance) -> Instance {
    let mut builder = InstanceBuilder::new();
    let fids: Vec<FacilityId> =
        inst.facilities().map(|i| builder.add_facility(inst.opening_cost(i))).collect();
    for j in inst.clients() {
        let client = builder.add_client();
        let row = inst.client_links(j);
        for (&i, &c) in row.ids.iter().zip(row.costs) {
            builder.link(client, fids[i as usize], Cost::new(c).unwrap()).unwrap();
        }
    }
    builder.build().unwrap()
}

// ---- The measured pipelines ------------------------------------------

/// One solver's warm-vs-scratch timing at one churn rate.
struct Row {
    solver: &'static str,
    delta_ms: f64,
    scratch_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scratch_ms / self.delta_ms
    }
}

/// Times one delta+solve cycle for all three solvers at `churn` (fraction
/// of links repriced per delta), asserting warm/cold equivalence on every
/// rep. Returns `(rows, warm-greedy allocs on the final rep)`.
fn measure(base: &Instance, churn: f64, reps: usize, seed: u64) -> (Vec<Row>, u64) {
    let links = ((churn * base.num_links() as f64).round() as usize).max(1);
    let mut rows = Vec::new();
    let mut greedy_allocs = 0;

    for solver in ["greedy", "local_search", "jv"] {
        // Fresh churn history per solver so each starts from `base` and
        // applies the identical delta sequence (seeded rng).
        let mut inst = base.clone();
        let mut warm = WarmCache::new(&inst);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delta_ms = f64::INFINITY;
        let mut scratch_ms = f64::INFINITY;
        for _ in 0..reps {
            let batch = reprice_batch(&inst, &mut rng, links);

            // Delta path: mutate in place, patch the warm cache, solve
            // warm.
            let start = Instant::now();
            let report = inst.apply_delta(&batch).unwrap();
            let t_apply = start.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            let (_, allocs) = count_allocs(|| {
                warm.apply_delta(&inst, &report);
            });
            let t_patch = t0.elapsed().as_secs_f64() * 1e3;
            let t0 = Instant::now();
            match solver {
                "greedy" => std::hint::black_box(warm.solve_greedy(&inst).iterations),
                "local_search" => {
                    std::hint::black_box(warm.solve_local_search(&inst, LS_MOVES).moves)
                }
                _ => std::hint::black_box(warm.dual_ascent(&inst).temp_open.len() as u32),
            };
            let t_solve = t0.elapsed().as_secs_f64() * 1e3;
            if std::env::var_os("DISTFL_BENCH_TRACE").is_some() {
                eprintln!(
                    "    [{solver}] apply {t_apply:.3}  patch {t_patch:.3}  solve {t_solve:.3}"
                );
            }
            delta_ms = delta_ms.min(start.elapsed().as_secs_f64() * 1e3);
            if solver == "greedy" {
                greedy_allocs = allocs;
            }

            // Scratch path: rebuild the instance through the builder,
            // then solve cold (structure construction included).
            let start = Instant::now();
            let fresh = rebuild(&inst);
            match solver {
                "greedy" => std::hint::black_box(greedy::solve_detailed(&fresh).iterations),
                "local_search" => {
                    let (s, _) = greedy::solve(&fresh);
                    std::hint::black_box(localsearch::optimize(&fresh, &s, LS_MOVES).moves)
                }
                _ => std::hint::black_box(jv::dual_ascent(&fresh).temp_open.len() as u32),
            };
            scratch_ms = scratch_ms.min(start.elapsed().as_secs_f64() * 1e3);

            // Equivalence: identical answers on the identical instance.
            match solver {
                "greedy" => {
                    assert_eq!(
                        warm.solve_greedy(&inst).solution,
                        greedy::solve_detailed(&inst).solution
                    );
                }
                "local_search" => {
                    let (s, _) = greedy::solve(&inst);
                    assert_eq!(
                        warm.solve_local_search(&inst, LS_MOVES).solution,
                        localsearch::optimize(&inst, &s, LS_MOVES).solution
                    );
                }
                _ => {
                    assert_eq!(warm.dual_ascent(&inst).alpha, jv::dual_ascent(&inst).alpha);
                }
            }
        }
        rows.push(Row { solver, delta_ms, scratch_ms });
    }
    (rows, greedy_allocs)
}

// ---- Smoke gate -------------------------------------------------------

/// The CI gate: warm == cold over random delta schedules for all three
/// solvers on a small instance, plus the steady-state allocation budget
/// on the full capb shape. Prints what failed; returns overall success.
fn smoke() -> bool {
    let mut ok = true;

    // Equivalence sweep (assertions inside `measure` do the checking).
    let small = UniformRandom::new(20, 120).unwrap().generate(11).unwrap();
    for (churn, seed) in [(0.01, 1u64), (0.1, 2), (0.5, 3)] {
        let result = std::panic::catch_unwind(|| measure(&small, churn, 3, seed));
        if result.is_err() {
            eprintln!("smoke FAILED: warm/cold divergence at churn {churn}");
            ok = false;
        }
    }

    // Allocation budget at the headline shape and churn.
    let base = UniformRandom::new(100, 1000).unwrap().generate(5).unwrap();
    let mut inst = base.clone();
    let mut warm = WarmCache::new(&inst);
    let mut rng = StdRng::seed_from_u64(7);
    let links = (0.01 * base.num_links() as f64).round() as usize;
    let mut steady = 0;
    for _ in 0..3 {
        let batch = reprice_batch(&inst, &mut rng, links);
        let report = inst.apply_delta(&batch).unwrap();
        let (_, allocs) = count_allocs(|| {
            warm.apply_delta(&inst, &report);
            std::hint::black_box(warm.solve_greedy(&inst).iterations)
        });
        steady = allocs; // keep the last (steady-state) cycle
    }
    eprintln!("steady-state warm greedy cycle: {steady} allocation events (budget {ALLOC_BUDGET})");
    if steady > ALLOC_BUDGET {
        eprintln!("smoke FAILED: allocs per delta {steady} exceeds budget {ALLOC_BUDGET}");
        ok = false;
    }
    if ok {
        eprintln!("bench_delta smoke: warm solves bit-identical, allocation budget holds");
    }
    ok
}

fn main() {
    let mut smoke_mode = false;
    let mut quick = false;
    let mut out_path = "BENCH_8.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_delta [--smoke] [--quick] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    if smoke_mode {
        if !smoke() {
            std::process::exit(1);
        }
        return;
    }

    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let base = UniformRandom::new(100, 1000).unwrap().generate(5).unwrap();
    let reps = if quick { 3 } else { 7 };
    let churns = [0.001, 0.01, 0.05, 0.2];

    let mut sections = Vec::new();
    let mut alloc_line = 0;
    for (index, &churn) in churns.iter().enumerate() {
        let (rows, allocs) = measure(&base, churn, reps, 40 + index as u64);
        if (churn - 0.01).abs() < 1e-12 {
            alloc_line = allocs;
        }
        let mut entries = Vec::new();
        for row in &rows {
            eprintln!(
                "churn {:>5.1}%  {:<13} delta {:>8.3} ms  scratch {:>8.3} ms  {:>6.2}x",
                churn * 100.0,
                row.solver,
                row.delta_ms,
                row.scratch_ms,
                row.speedup()
            );
            entries.push(format!(
                "      {{\"solver\": \"{}\", \"delta_ms\": {:.3}, \"scratch_ms\": {:.3}, \
                 \"speedup\": {:.3}}}",
                row.solver,
                row.delta_ms,
                row.scratch_ms,
                row.speedup()
            ));
        }
        sections.push(format!(
            "    {{\"churn\": {churn}, \"solvers\": [\n{}\n    ]}}",
            entries.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"warm_delta\",\n  \
         \"instance\": \"capb_shaped_100x1000\",\n  \
         \"baseline\": \"from-scratch pipeline: InstanceBuilder rebuild + cold solve \
         (structure construction included); the delta pipeline is \
         Instance::apply_delta + WarmCache::apply_delta + warm solve, asserted \
         identical to the cold answer on every rep\",\n  \
         \"ls_max_moves\": {LS_MOVES},\n  \
         \"warm_greedy_allocs_per_delta_at_1pct\": {alloc_line},\n  \
         \"alloc_budget\": {ALLOC_BUDGET},\n  \
         \"churn_rates\": [\n{}\n  ]\n}}\n",
        sections.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
