//! Machine-readable micro-benchmark for the SoA scan kernels.
//!
//! Times every chunked kernel in `distfl_instance::kernels` against its
//! retained scalar reference twin on lanes shaped like the `capb`
//! OR-Library row (100 facilities x 1000 clients, dense): client rows of
//! 100 costs, facility rows of 1000. Each comparison first asserts the
//! outputs are bitwise identical, so a speedup reported here is a speedup
//! on the *same* answer. A second section re-times the three solver fast
//! paths on the `capb_shaped_100x1000` instance and reports the speedup
//! against the committed BENCH_2.json row — the before/after evidence for
//! the SoA + kernel rework.
//!
//! Emits a single JSON document (default `BENCH_7.json`). `--smoke` skips
//! the timing and only runs the bitwise-equivalence checks on awkward lane
//! shapes (empty, 1..=9, chunk boundaries), exiting non-zero on any
//! mismatch — the cheap CI gate.
//!
//! Usage: `bench_kernels [--smoke] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;

use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_instance::{kernels, Instance};

/// Move cap matching `bench_solvers`, so the local-search row is
/// comparable with the BENCH_2.json baseline.
const LS_MOVES: u32 = 4;

/// Best-of-`reps` wall time for `f`, in milliseconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One kernel comparison: nanoseconds per call over `lanes`-many rows.
struct KernelTiming {
    name: &'static str,
    fast_ns: f64,
    reference_ns: f64,
}

impl KernelTiming {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.fast_ns
    }
}

/// The benchmark's lane set: the capb-shaped instance's client rows
/// (length 100, id-sorted) and its facility rows re-sorted by
/// `(cost, client)` the way the greedy star scan consumes them.
struct Lanes {
    client_rows: Vec<Vec<f64>>,
    facility_rows_sorted: Vec<Vec<f64>>,
}

fn lanes(inst: &Instance) -> Lanes {
    let client_rows: Vec<Vec<f64>> =
        inst.clients().map(|j| inst.client_links(j).costs.to_vec()).collect();
    let facility_rows_sorted: Vec<Vec<f64>> = inst
        .facilities()
        .map(|i| {
            let mut row = inst.facility_links(i).costs.to_vec();
            row.sort_by(f64::total_cmp);
            row
        })
        .collect();
    Lanes { client_rows, facility_rows_sorted }
}

fn bench_kernels(l: &Lanes, reps: usize) -> Vec<KernelTiming> {
    let mut out = Vec::new();
    let per_call = |total_ms: f64, calls: usize| total_ms * 1e6 / calls as f64;

    // min_argmin over every client row (the builder's cheapest-link scan).
    for (row, _) in l.client_rows.iter().zip(0..1) {
        assert_eq!(kernels::min_argmin(row), kernels::min_argmin_reference(row));
    }
    let calls = l.client_rows.len();
    out.push(KernelTiming {
        name: "min_argmin",
        fast_ns: per_call(
            time_best(reps, || {
                l.client_rows.iter().map(|r| kernels::min_argmin(r).unwrap().0).sum::<usize>()
            }),
            calls,
        ),
        reference_ns: per_call(
            time_best(reps, || {
                l.client_rows
                    .iter()
                    .map(|r| kernels::min_argmin_reference(r).unwrap().0)
                    .sum::<usize>()
            }),
            calls,
        ),
    });

    // prefix_threshold_count over sorted facility rows at a mid threshold
    // (the JV tightness-pointer advance).
    let thresholds: Vec<f64> = l.facility_rows_sorted.iter().map(|r| r[r.len() / 2]).collect();
    for (row, &t) in l.facility_rows_sorted.iter().zip(&thresholds) {
        assert_eq!(
            kernels::prefix_threshold_count(row, t),
            kernels::prefix_threshold_count_reference(row, t)
        );
    }
    let calls = l.facility_rows_sorted.len();
    out.push(KernelTiming {
        name: "prefix_threshold_count",
        fast_ns: per_call(
            time_best(reps, || {
                l.facility_rows_sorted
                    .iter()
                    .zip(&thresholds)
                    .map(|(r, &t)| kernels::prefix_threshold_count(r, t))
                    .sum::<usize>()
            }),
            calls,
        ),
        reference_ns: per_call(
            time_best(reps, || {
                l.facility_rows_sorted
                    .iter()
                    .zip(&thresholds)
                    .map(|(r, &t)| kernels::prefix_threshold_count_reference(r, t))
                    .sum::<usize>()
            }),
            calls,
        ),
    });

    // fused_ratio_accumulate over sorted facility rows (the greedy star
    // scan). The residual models an unpaid opening cost a few percent of
    // the row total, which parks the best prefix mid-row — the shape the
    // greedy heap actually re-evaluates. (Residual 0 degenerates: the
    // argmin collapses to the first link and nothing past chunk one
    // matters.)
    let residuals: Vec<f64> =
        l.facility_rows_sorted.iter().map(|r| r.iter().sum::<f64>() * 0.05).collect();
    for (row, &res) in l.facility_rows_sorted.iter().zip(&residuals) {
        for r in [0.0, res] {
            let fast = kernels::fused_ratio_accumulate(row, r);
            let slow = kernels::fused_ratio_accumulate_reference(row, r);
            assert_eq!((fast.0.to_bits(), fast.1), (slow.0.to_bits(), slow.1));
        }
    }
    out.push(KernelTiming {
        name: "fused_ratio_accumulate",
        fast_ns: per_call(
            time_best(reps, || {
                l.facility_rows_sorted
                    .iter()
                    .zip(&residuals)
                    .map(|(r, &res)| kernels::fused_ratio_accumulate(r, res).1)
                    .sum::<usize>()
            }),
            calls,
        ),
        reference_ns: per_call(
            time_best(reps, || {
                l.facility_rows_sorted
                    .iter()
                    .zip(&residuals)
                    .map(|(r, &res)| kernels::fused_ratio_accumulate_reference(r, res).1)
                    .sum::<usize>()
            }),
            calls,
        ),
    });

    // retain_unmarked over facility rows with every third client served
    // (the greedy in-place star compaction). The fast path re-copies the
    // pristine lanes each call — that copy is charged to it.
    let n = l.client_rows.len();
    let marked: Vec<bool> = (0..n).map(|j| j % 3 == 0).collect();
    let ids: Vec<u32> = (0..n as u32).collect();
    let row0 = &l.facility_rows_sorted[0];
    let (ref_ids, ref_costs) = kernels::retain_unmarked_reference(&ids, row0, &marked);
    let mut ids_buf = ids.clone();
    let mut costs_buf = row0.clone();
    let live = kernels::retain_unmarked(&mut ids_buf, &mut costs_buf, &marked);
    assert_eq!(&ids_buf[..live], &ref_ids[..]);
    assert_eq!(&costs_buf[..live], &ref_costs[..]);
    out.push(KernelTiming {
        name: "retain_unmarked",
        fast_ns: per_call(
            time_best(reps, || {
                ids_buf.copy_from_slice(&ids);
                costs_buf.copy_from_slice(row0);
                kernels::retain_unmarked(&mut ids_buf, &mut costs_buf, &marked)
            }),
            1,
        ),
        reference_ns: per_call(
            time_best(reps, || kernels::retain_unmarked_reference(&ids, row0, &marked)),
            1,
        ),
    });

    // assign_sum family over n-length cache lanes (the local-search
    // candidate pricing). best/second from the instance's two cheapest
    // links; the add column scatters one facility row over +inf.
    let best: Vec<f64> = l.client_rows.iter().map(|r| kernels::min_argmin(r).unwrap().1).collect();
    let second: Vec<f64> = l
        .client_rows
        .iter()
        .zip(&best)
        .map(|(r, &b)| {
            r.iter().copied().filter(|&c| c > b).fold(f64::INFINITY, f64::min).min(b + 1.0)
        })
        .collect();
    let fac: Vec<u32> = (0..n as u32).map(|j| j % 100).collect();
    let add_min: Vec<f64> =
        (0..n).map(|j| if j % 4 == 0 { f64::INFINITY } else { best[j] * 0.5 }).collect();
    assert_eq!(
        kernels::assign_sum(&best).to_bits(),
        kernels::assign_sum_reference(&best).to_bits()
    );
    assert_eq!(
        kernels::assign_sum_drop(&best, &fac, &second, 7).to_bits(),
        kernels::assign_sum_drop_reference(&best, &fac, &second, 7).to_bits()
    );
    assert_eq!(
        kernels::assign_sum_add(&best, &add_min).to_bits(),
        kernels::assign_sum_add_reference(&best, &add_min).to_bits()
    );
    assert_eq!(
        kernels::assign_sum_swap(&best, &fac, &second, 7, &add_min).to_bits(),
        kernels::assign_sum_swap_reference(&best, &fac, &second, 7, &add_min).to_bits()
    );
    out.push(KernelTiming {
        name: "assign_sum",
        fast_ns: per_call(time_best(reps, || kernels::assign_sum(&best)), 1),
        reference_ns: per_call(time_best(reps, || kernels::assign_sum_reference(&best)), 1),
    });
    out.push(KernelTiming {
        name: "assign_sum_drop",
        fast_ns: per_call(time_best(reps, || kernels::assign_sum_drop(&best, &fac, &second, 7)), 1),
        reference_ns: per_call(
            time_best(reps, || kernels::assign_sum_drop_reference(&best, &fac, &second, 7)),
            1,
        ),
    });
    out.push(KernelTiming {
        name: "assign_sum_add",
        fast_ns: per_call(time_best(reps, || kernels::assign_sum_add(&best, &add_min)), 1),
        reference_ns: per_call(
            time_best(reps, || kernels::assign_sum_add_reference(&best, &add_min)),
            1,
        ),
    });
    out.push(KernelTiming {
        name: "assign_sum_swap",
        fast_ns: per_call(
            time_best(reps, || kernels::assign_sum_swap(&best, &fac, &second, 7, &add_min)),
            1,
        ),
        reference_ns: per_call(
            time_best(reps, || {
                kernels::assign_sum_swap_reference(&best, &fac, &second, 7, &add_min)
            }),
            1,
        ),
    });

    out
}

/// The bitwise-equivalence smoke pass over awkward lane shapes: empty,
/// every length 1..=9 (chunk remainders), one chunk-boundary length per
/// chunked width, all-equal ties, subnormal and huge values.
fn smoke() -> bool {
    let mut ok = true;
    let mut check = |name: &str, cond: bool| {
        if !cond {
            eprintln!("smoke FAILED: {name}");
            ok = false;
        }
    };
    let shapes: Vec<Vec<f64>> = {
        let mut v: Vec<Vec<f64>> = Vec::new();
        for len in 0..=9usize {
            v.push((0..len).map(|k| ((k * 7919) % 100) as f64).collect());
        }
        for len in [8usize, 16, 32, 33] {
            v.push((0..len).map(|k| ((k * 104729) % 1000) as f64 / 8.0).collect());
        }
        v.push(vec![2.5; 17]); // all-equal: ties must break at index 0
        v.push(vec![5e-324; 9]);
        v.push(vec![1e300, 1e300, 5e-324, 0.0, f64::INFINITY, 1.0, 1.0]);
        v
    };
    for lane in &shapes {
        check("min_argmin", kernels::min_argmin(lane) == kernels::min_argmin_reference(lane));
        for t in [0.0, 1.0, 50.0, f64::INFINITY] {
            check(
                "prefix_threshold_count",
                kernels::prefix_threshold_count(lane, t)
                    == kernels::prefix_threshold_count_reference(lane, t),
            );
        }
        let mut sorted = lane.clone();
        sorted.sort_by(f64::total_cmp);
        for residual in [0.0, 3.75] {
            let fast = kernels::fused_ratio_accumulate(&sorted, residual);
            let slow = kernels::fused_ratio_accumulate_reference(&sorted, residual);
            check(
                "fused_ratio_accumulate",
                (fast.0.to_bits(), fast.1) == (slow.0.to_bits(), slow.1),
            );
        }
        let ids: Vec<u32> = (0..lane.len() as u32).collect();
        let marked: Vec<bool> = (0..lane.len()).map(|k| k % 2 == 0).collect();
        let (ref_ids, ref_costs) = kernels::retain_unmarked_reference(&ids, lane, &marked);
        let mut ids_buf = ids.clone();
        let mut costs_buf = lane.clone();
        let live = kernels::retain_unmarked(&mut ids_buf, &mut costs_buf, &marked);
        check(
            "retain_unmarked",
            ids_buf[..live] == ref_ids[..] && costs_buf[..live] == ref_costs[..],
        );
        let fac: Vec<u32> = (0..lane.len() as u32).map(|k| k % 3).collect();
        let second: Vec<f64> = lane.iter().map(|c| c + 1.0).collect();
        let add_min: Vec<f64> = lane
            .iter()
            .enumerate()
            .map(|(k, &c)| if k % 2 == 0 { f64::INFINITY } else { c })
            .collect();
        check(
            "assign_sum",
            kernels::assign_sum(lane).to_bits() == kernels::assign_sum_reference(lane).to_bits(),
        );
        check(
            "assign_sum_drop",
            kernels::assign_sum_drop(lane, &fac, &second, 1).to_bits()
                == kernels::assign_sum_drop_reference(lane, &fac, &second, 1).to_bits(),
        );
        check(
            "assign_sum_add",
            kernels::assign_sum_add(lane, &add_min).to_bits()
                == kernels::assign_sum_add_reference(lane, &add_min).to_bits(),
        );
        check(
            "assign_sum_swap",
            kernels::assign_sum_swap(lane, &fac, &second, 1, &add_min).to_bits()
                == kernels::assign_sum_swap_reference(lane, &fac, &second, 1, &add_min).to_bits(),
        );
    }
    ok
}

/// Reads `fast_ms` of one solver on one instance row out of a
/// bench_solvers JSON document by flat scan (the document is written by
/// in-tree code, so the shape is reliable).
fn read_bench2_fast_ms(path: &str, instance: &str, solver: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let row = text.find(&format!("\"instance\": \"{instance}\""))?;
    let sect = text[row..].find(&format!("\"{solver}\":"))? + row;
    let key = "\"fast_ms\": ";
    let at = text[sect..].find(key)? + sect + key.len();
    let rest = &text[at..];
    let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut smoke_mode = false;
    let mut out_path = "BENCH_7.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_kernels [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    if smoke_mode {
        if smoke() {
            eprintln!("bench_kernels smoke: all kernels bitwise-equal to references");
        } else {
            std::process::exit(1);
        }
        return;
    }

    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    // The capb OR-Library shape: the largest row of the BENCH_2 baseline.
    let inst = UniformRandom::new(100, 1000).unwrap().generate(5).unwrap();
    let l = lanes(&inst);
    let reps = 5usize;

    let kernel_rows = bench_kernels(&l, reps);
    let mut entries = Vec::new();
    for k in &kernel_rows {
        eprintln!(
            "{:<24} fast {:>9.1} ns  reference {:>9.1} ns  {:>6.2}x",
            k.name,
            k.fast_ns,
            k.reference_ns,
            k.speedup()
        );
        entries.push(format!(
            "    {{\"kernel\": \"{}\", \"fast_ns\": {:.1}, \"reference_ns\": {:.1}, \
             \"speedup\": {:.3}}}",
            k.name,
            k.fast_ns,
            k.reference_ns,
            k.speedup()
        ));
    }

    // Solver fast paths on the same instance, against the committed
    // BENCH_2.json row (the pre-SoA fast paths).
    let (start, _) = greedy::solve(&inst);
    let solver_rows = [
        ("greedy", time_best(reps, || greedy::solve_detailed(&inst))),
        ("local_search", time_best(reps, || localsearch::optimize(&inst, &start, LS_MOVES))),
        ("jv_dual_ascent", time_best(reps, || jv::dual_ascent(&inst))),
    ];
    let mut solver_entries = Vec::new();
    for (name, ms) in solver_rows {
        let before = read_bench2_fast_ms("BENCH_2.json", "capb_shaped_100x1000", name);
        let vs = before.map(|b| b / ms);
        eprintln!(
            "{name:<24} now {ms:>8.3} ms  BENCH_2 {}  {}",
            before.map_or("n/a".into(), |b| format!("{b:>8.3} ms")),
            vs.map_or("n/a".into(), |v| format!("{v:>6.2}x")),
        );
        solver_entries.push(format!(
            "    {{\"solver\": \"{name}\", \"fast_ms\": {ms:.3}, \
             \"bench2_fast_ms\": {}, \"speedup_vs_bench2\": {}}}",
            before.map_or("null".into(), |b| format!("{b:.3}")),
            vs.map_or("null".into(), |v| format!("{v:.3}")),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"soa_kernels\",\n  \
         \"instance\": \"capb_shaped_100x1000\",\n  \
         \"baseline\": \"scalar reference twins (kernels) and the committed \
         BENCH_2.json fast paths (solvers, pre-SoA AoS layout)\",\n  \
         \"kernels\": [\n{}\n  ],\n  \"solvers\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        solver_entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
