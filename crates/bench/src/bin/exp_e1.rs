//! Experiment E1 binary; see `distfl_bench::experiments::e1_tradeoff`.
//! Pass `--quick` for a reduced sweep.

fn main() {
    let tables = distfl_bench::experiments::e1_tradeoff::run(distfl_bench::quick_mode());
    distfl_bench::emit(&tables);
}
