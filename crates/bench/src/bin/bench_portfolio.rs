//! Machine-readable benchmark for the solver portfolio and its
//! auto-routing classifier.
//!
//! Runs every addressable [`SolverKind`] — the sequential baselines, the
//! distributed PayDual and MetricBall protocols, the robust outliers
//! variant, and classifier-driven `auto` — over a matrix of metric and
//! non-metric generator families. Small facility counts keep the *exact*
//! optimum computable by subset enumeration, so the document reports true
//! approximation ratios, not ratios against another heuristic.
//!
//! Every row also asserts the portfolio's correctness contracts, so a
//! number reported here is a number on a *verified* run:
//!
//! * the distributed MetricBall solution is bit-identical to its
//!   sequential reference replay (`metricball::solve_reference`), and the
//!   outliers pipeline to `outliers::solve_reference`;
//! * `auto` resolves metric families to `metricball` and non-metric
//!   families away from it, and its solution equals the routed kind's;
//! * the classifier's allocations per link stay under a budget measured
//!   with the counting global allocator (the same pattern as
//!   `bench_solvers`), so profiling an instance stays cheap enough to run
//!   on every `auto` request.
//!
//! `--smoke` re-runs the assertions and the allocation gate on small
//! instances and exits non-zero on any violation — including a
//! MetricBall approximation ratio above the budget recorded in
//! BENCH_10.json — which is the portfolio regression gate CI runs on
//! every push.
//!
//! Usage: `bench_portfolio [--quick] [--smoke] [--out PATH]`
//! (default `BENCH_10.json`).

// The counting global allocator below is the one place this binary needs
// `unsafe`: GlobalAlloc is an unsafe trait by definition.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use distfl_core::{metricball, outliers, SolverKind};
use distfl_instance::classify;
use distfl_instance::generators::{
    Clustered, Euclidean, InstanceGenerator, Metricized, PowerLaw, UniformRandom,
};
use distfl_instance::Instance;

/// Passes through to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations per link one `classify` call may spend (amortized; the
/// exhaustive small-instance path allocates almost nothing, the sampled
/// path a seeded RNG and a handful of buffers). The committed
/// BENCH_10.json records this value and `--smoke` enforces it.
const CLASSIFY_ALLOCS_PER_LINK_BUDGET: f64 = 1.0;

/// Worst acceptable MetricBall approximation ratio on the metric rows
/// (the theory bound is a constant; defaults pin it well under the
/// sequential baselines' worst case). `--smoke` reads the committed
/// value back from BENCH_10.json when present.
const METRICBALL_RATIO_BUDGET: f64 = 6.0;

/// The portfolio under measurement, in report order.
const KINDS: [SolverKind; 7] = [
    SolverKind::Greedy,
    SolverKind::LocalSearch,
    SolverKind::JainVazirani,
    SolverKind::PayDual,
    SolverKind::MetricBall,
    SolverKind::MetricOutliers,
    SolverKind::Auto,
];

/// Fixed solve seed: the document is a deterministic function of the
/// code, so CI diffs are meaningful.
const SEED: u64 = 7;

/// Exact optimum by enumeration over all non-empty facility subsets —
/// viable because the bench keeps `m` small. Subsets that leave a client
/// uncovered are skipped.
fn exact_optimum(instance: &Instance) -> f64 {
    let m = instance.num_facilities();
    assert!(m <= 16, "exact optimum needs a small facility count, got {m}");
    let opening: Vec<f64> =
        instance.facilities().map(|i| instance.opening_cost(i).value()).collect();
    let mut best = f64::INFINITY;
    for mask in 1u32..(1 << m) {
        let mut cost: f64 = (0..m).filter(|&i| mask & (1 << i) != 0).map(|i| opening[i]).sum();
        if cost >= best {
            continue;
        }
        let mut feasible = true;
        for j in instance.clients() {
            let mut cheapest = f64::INFINITY;
            for (i, c) in instance.client_links(j).iter() {
                if mask & (1 << i) != 0 {
                    cheapest = cheapest.min(c);
                }
            }
            if cheapest.is_infinite() {
                feasible = false;
                break;
            }
            cost += cheapest;
            if cost >= best {
                feasible = false;
                break;
            }
        }
        if feasible {
            best = best.min(cost);
        }
    }
    assert!(best.is_finite(), "instance admits no feasible subset");
    best
}

fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        drop(out);
    }
    best
}

/// One benchmark instance: name, payload, and whether the generator
/// family guarantees metric costs (drives the routing assertions).
struct Row {
    name: String,
    instance: Instance,
    metric_family: bool,
}

fn instances(quick: bool) -> Vec<Row> {
    let mut rows = vec![
        Row {
            name: "euclidean_6x40".into(),
            instance: Euclidean::new(6, 40).unwrap().generate(1).unwrap(),
            metric_family: true,
        },
        Row {
            name: "metricized_uniform_8x60".into(),
            instance: Metricized::new(UniformRandom::new(8, 60).unwrap()).generate(2).unwrap(),
            metric_family: true,
        },
        Row {
            name: "uniform_8x60".into(),
            instance: UniformRandom::new(8, 60).unwrap().generate(3).unwrap(),
            metric_family: false,
        },
        Row {
            name: "powerlaw_6x40".into(),
            instance: PowerLaw::new(6, 40, 1e3).unwrap().generate(4).unwrap(),
            metric_family: false,
        },
    ];
    if !quick {
        rows.push(Row {
            name: "metricized_clustered_10x150".into(),
            instance: Metricized::new(Clustered::new(3, 10, 150).unwrap()).generate(5).unwrap(),
            metric_family: true,
        });
        rows.push(Row {
            name: "uniform_12x300".into(),
            instance: UniformRandom::new(12, 300).unwrap().generate(6).unwrap(),
            metric_family: false,
        });
    }
    rows
}

/// Pulls one committed budget back out of a BENCH_10.json document (no
/// JSON dependency in-tree; the keys are written by this same binary, so
/// a flat scan is reliable).
fn read_key(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = format!("\"{key}\":");
    let at = text.find(&key)? + key.len();
    let rest = text[at..].trim_start();
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Verifies the PR-2 contracts on one instance: distributed solutions
/// bit-identical to their sequential reference replays, and `auto` equal
/// to the kind it routed to.
fn verify_contracts(instance: &Instance) {
    let ball = SolverKind::MetricBall.solve(instance, SEED).expect("metricball solves");
    let reference = metricball::solve_reference(instance, 6, SEED).expect("reference solves");
    assert_eq!(ball.solution, reference, "metricball diverged from its reference replay");

    let robust = SolverKind::MetricOutliers.solve(instance, SEED).expect("outliers solves");
    let reference =
        outliers::solve_reference(instance, Default::default(), SEED).expect("reference solves");
    assert_eq!(robust.solution, reference, "outliers diverged from reference");

    let routed = SolverKind::Auto.resolve(instance);
    let auto = SolverKind::Auto.solve(instance, SEED).expect("auto solves");
    let direct = routed.solve(instance, SEED).expect("routed kind solves");
    assert_eq!(auto.solution, direct.solution, "auto diverged from its route");
}

fn main() {
    let mut quick = false;
    let mut smoke = false;
    let mut out_path = "BENCH_10.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--smoke" => {
                quick = true;
                smoke = true;
            }
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument '{other}'");
                eprintln!("usage: bench_portfolio [--quick] [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }
    // Fail on an unwritable output path *before* the measurement.
    if let Err(e) = std::fs::write(&out_path, "{}\n") {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }

    let (alloc_budget, ratio_budget) = if smoke {
        (
            read_key("BENCH_10.json", "classify_allocs_per_link_budget")
                .unwrap_or(CLASSIFY_ALLOCS_PER_LINK_BUDGET),
            read_key("BENCH_10.json", "metricball_ratio_budget").unwrap_or(METRICBALL_RATIO_BUDGET),
        )
    } else {
        (CLASSIFY_ALLOCS_PER_LINK_BUDGET, METRICBALL_RATIO_BUDGET)
    };

    let reps = if quick { 2usize } else { 3 };
    let mut entries = Vec::new();
    let mut worst_classify_allocs = 0.0f64;
    let mut worst_metric_ratio = 0.0f64;
    let mut failed = false;
    for Row { name, instance, metric_family } in instances(quick) {
        verify_contracts(&instance);

        let before = allocations();
        let profile = classify::classify(&instance);
        let classify_allocs = allocations() - before;
        let allocs_per_link = classify_allocs as f64 / instance.num_links().max(1) as f64;
        worst_classify_allocs = worst_classify_allocs.max(allocs_per_link);
        let classify_ms = time_best(reps, || classify::classify(&instance));

        // Routing assertions: the classifier must send every
        // metric-family row to the metric specialist and keep every
        // non-metric row away from it.
        let routed = SolverKind::Auto.resolve(&instance);
        if metric_family && routed != SolverKind::MetricBall {
            eprintln!("error: {name} is a metric family but auto routed to {routed}");
            failed = true;
        }
        if !metric_family && routed == SolverKind::MetricBall {
            eprintln!("error: {name} is non-metric but auto routed to metricball");
            failed = true;
        }

        let optimum = exact_optimum(&instance);
        let dropped = outliers::select_outliers(&instance, 0.1);
        let mut kind_entries = Vec::new();
        for kind in KINDS {
            let solve_ms = time_best(reps, || kind.solve(&instance, SEED).unwrap());
            let outcome = kind.solve(&instance, SEED).unwrap();
            let cost = outcome.solution.cost(&instance).value();
            let ratio = cost / optimum;
            if metric_family && kind == SolverKind::MetricBall {
                worst_metric_ratio = worst_metric_ratio.max(ratio);
            }
            let rounds = outcome
                .transcript
                .as_ref()
                .map_or("null".to_owned(), |t| t.num_rounds().to_string());
            // The robust objective of the outliers kind: what it pays on
            // the clients it chose to keep.
            let robust = if kind == SolverKind::MetricOutliers {
                format!("{:.4}", outliers::robust_cost(&instance, &outcome.solution, &dropped))
            } else {
                "null".to_owned()
            };
            kind_entries.push(format!(
                "      {{\"kind\": \"{}\", \"cost\": {cost:.4}, \"ratio\": {ratio:.4}, \
                 \"rounds\": {rounds}, \"robust_cost\": {robust}, \"ms\": {solve_ms:.3}}}",
                kind.name(),
            ));
        }
        eprintln!(
            "{name:<28} {} links, metricity {:?}, auto -> {}, opt {optimum:.3}, \
             classify {allocs_per_link:.2} allocs/link",
            instance.num_links(),
            profile.metricity,
            routed.name(),
        );
        entries.push(format!(
            "    {{\"instance\": \"{name}\", \"facilities\": {}, \"clients\": {}, \
             \"links\": {},\n     \"metric_family\": {metric_family}, \
             \"metricity\": \"{:?}\", \"observed_defect\": {:.6}, \
             \"routed\": \"{}\",\n     \"classify_ms\": {classify_ms:.3}, \
             \"classify_allocs_per_link\": {allocs_per_link:.3},\n     \
             \"exact_optimum\": {optimum:.4},\n     \"kinds\": [\n{}\n    ]}}",
            instance.num_facilities(),
            instance.num_clients(),
            instance.num_links(),
            profile.metricity,
            profile.observed_defect,
            routed.name(),
            kind_entries.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"solver_portfolio\",\n  \"mode\": \"{}\",\n  \
         \"seed\": {SEED},\n  \
         \"baseline\": \"exact optimum by facility-subset enumeration; distributed \
         kinds verified bit-identical to their sequential reference replays\",\n  \
         \"classify_allocs_per_link_budget\": {CLASSIFY_ALLOCS_PER_LINK_BUDGET},\n  \
         \"metricball_ratio_budget\": {METRICBALL_RATIO_BUDGET},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        if smoke {
            "smoke"
        } else if quick {
            "quick"
        } else {
            "full"
        },
        entries.join(",\n")
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");

    if smoke {
        for (what, worst, budget) in [
            ("classify allocations per link", worst_classify_allocs, alloc_budget),
            ("metricball ratio on metric instances", worst_metric_ratio, ratio_budget),
        ] {
            if worst > budget {
                eprintln!("error: {what} {worst:.3} exceed the budget {budget}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
