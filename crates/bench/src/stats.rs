//! Small statistics helpers for averaged experiment cells.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn std_dev_basic() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(std_dev(&[2.0, 2.0, 2.0]), 0.0);
        let s = std_dev(&[1.0, 3.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
