//! Aligned-text and CSV table rendering.

/// An experiment result table: an id (the CSV file stem), a human title,
/// column headers, and string rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "tables need at least one column");
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The CSV file stem.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Index of a named column.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn column_index(&self, name: &str) -> usize {
        self.columns
            .iter()
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("table {} has no column '{name}'", self.id))
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch in table {}", self.id);
        self.rows.push(cells);
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ({}) ==\n", self.title, self.id));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows; cells containing commas
    /// are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// The canonical marker for a missing or not-applicable cell.
///
/// Every table writes this single marker — never a raw `NaN`/`inf` from
/// float formatting — so downstream CSV consumers need exactly one rule.
/// The figure renderer parses it back to `NaN` and drops the point.
pub const MISSING: &str = "-";

/// Formats a float with a fixed number of decimals (experiment cells).
///
/// Non-finite values render as [`MISSING`]: a `NaN` ratio (for example a
/// `0/0` against a degenerate lower bound) is a missing measurement, and
/// leaking `"NaN"` into a CSV would fork the missing-value encoding.
pub fn num(value: f64, decimals: usize) -> String {
    if value.is_finite() {
        format!("{value:.decimals$}")
    } else {
        MISSING.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "Sample", &["a", "long-column", "c"]);
        t.push(vec!["1".into(), "2".into(), "3".into()]);
        t.push(vec!["10".into(), "20".into(), "30".into()]);
        t
    }

    #[test]
    fn render_is_aligned() {
        let text = sample().render();
        assert!(text.contains("Sample"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and rows have the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t2", "X", &["a"]);
        t.push(vec!["hello, world".into()]);
        t.push(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = sample();
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(10.0, 0), "10");
    }

    #[test]
    fn non_finite_cells_use_the_canonical_missing_marker() {
        assert_eq!(num(f64::NAN, 3), MISSING);
        assert_eq!(num(f64::INFINITY, 3), MISSING);
        assert_eq!(num(f64::NEG_INFINITY, 1), MISSING);
    }

    #[test]
    fn missing_cells_round_trip_through_csv() {
        let mut t = Table::new("t3", "Missing", &["x", "y"]);
        t.push(vec!["1".into(), num(f64::NAN, 3)]);
        t.push(vec!["2".into(), num(4.5, 3)]);
        let csv = t.to_csv();
        // The marker survives rendering verbatim — no NaN/inf text leaks.
        assert!(csv.contains(&format!("1,{MISSING}\n")), "{csv}");
        assert!(!csv.to_lowercase().contains("nan"), "{csv}");
        assert!(!csv.contains("inf"), "{csv}");
        // Reading the CSV back, the marker parses as non-numeric (NaN) the
        // way the figure renderer consumes it, and real cells stay exact.
        let rows: Vec<Vec<&str>> = csv.lines().skip(1).map(|l| l.split(',').collect()).collect();
        assert!(rows[0][1].parse::<f64>().is_err(), "marker must not parse as a float");
        assert_eq!(rows[1][1].parse::<f64>().unwrap(), 4.5);
    }
}
