//! **E6 — CONGEST compliance and message complexity (paper "Figure 3").**
//!
//! Claim: the algorithm is a genuine CONGEST algorithm — at most one
//! message per directed edge per round, messages of a constant number of
//! `O(log(Nρ))`-bit scalars — so its total communication is `O(k·|E|)`
//! messages for a `k`-round budget.
//!
//! Report, per topology: edges, rounds, delivered messages, the
//! utilization `messages / (rounds·2|E|)` (must be ≤ 1), the largest
//! message, and the per-edge maximum (must be 1).

use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::{topology_of, FlAlgorithm};
use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};
use distfl_instance::Instance;

use crate::table::num;
use crate::Table;

/// Runs E6.
pub fn run(quick: bool) -> Vec<Table> {
    let phases = 8;
    let dense: &[(usize, usize)] = if quick { &[(8, 40)] } else { &[(8, 40), (16, 80), (32, 160)] };
    let sparse: &[(usize, usize, usize)] =
        if quick { &[(12, 10, 60)] } else { &[(12, 10, 60), (24, 20, 240)] };

    let mut table = Table::new(
        "e6_congestion",
        "E6: CONGEST discipline and message complexity (PayDual, 8 phases)",
        &[
            "family",
            "nodes",
            "edges",
            "rounds",
            "messages",
            "utilization",
            "max_msg_bits",
            "max_per_edge",
            "compliant",
        ],
    );
    // Row specs in serial order; each pool task generates its instance
    // from the fixed seed and returns a finished row.
    enum Spec {
        Dense { m: usize, n: usize },
        Grid { side: usize, m: usize, n: usize },
    }
    let mut specs: Vec<Spec> = Vec::new();
    specs.extend(dense.iter().map(|&(m, n)| Spec::Dense { m, n }));
    specs.extend(sparse.iter().map(|&(side, m, n)| Spec::Grid { side, m, n }));

    let row_for = |family: &str, inst: &Instance| -> Vec<String> {
        let edges = topology_of(inst).expect("topology").num_edges() as u64;
        let out =
            PayDual::new(PayDualParams::with_phases(phases)).run(inst, 1).expect("paydual run");
        let t = out.transcript.expect("distributed run");
        let capacity = u64::from(t.num_rounds()) * 2 * edges;
        vec![
            family.to_owned(),
            (inst.num_facilities() + inst.num_clients()).to_string(),
            edges.to_string(),
            t.num_rounds().to_string(),
            t.total_messages().to_string(),
            num(t.total_messages() as f64 / capacity as f64, 3),
            t.max_message_bits().to_string(),
            t.max_messages_per_edge().to_string(),
            t.congest_compliant(72).to_string(),
        ]
    };
    let pool = crate::sweep_pool();
    let rows: Vec<Vec<String>> = pool.map_indexed(specs.len(), |i| {
        let _cell = distfl_obs::span_arg("exp", "e6.cell", i as u64);
        match specs[i] {
            Spec::Dense { m, n } => {
                let inst = UniformRandom::new(m, n).unwrap().generate(600).unwrap();
                row_for("dense", &inst)
            }
            Spec::Grid { side, m, n } => {
                let inst = GridNetwork::new(side, side, m, n).unwrap().generate(600).unwrap();
                row_for("grid", &inst)
            }
        }
    });
    for row in rows {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_compliant_with_bounded_utilization() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let utilization: f64 = cells[5].parse().unwrap();
            assert!(utilization <= 1.0 + 1e-9, "utilization {utilization} above capacity");
            assert_eq!(cells[7], "1", "per-edge maximum must be one");
            assert_eq!(cells[8], "true");
            let bits: u64 = cells[6].parse().unwrap();
            assert!(bits <= 72);
        }
    }
}
