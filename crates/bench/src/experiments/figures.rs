//! Builds the standard figures from experiment tables.
//!
//! Every "figure"-type claim (E1, E3, E5, E7) gets a rendered SVG curve in
//! addition to its CSV: the trade-off curve with its theory envelopes, the
//! spread sensitivity, the rounding success curve, and the ablation grid.

use crate::figure::Figure;
use crate::table::Table;

/// Parses a numeric cell (returns `NaN` for non-numeric placeholders so
/// the figure renderer drops the point).
fn cell(row: &[String], index: usize) -> f64 {
    row.get(index).and_then(|c| c.parse().ok()).unwrap_or(f64::NAN)
}

/// Groups `(key, x, y)` triples into per-key series, preserving order.
fn group_series(rows: impl Iterator<Item = (String, f64, f64)>) -> Vec<(String, Vec<(f64, f64)>)> {
    let mut out: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for (key, x, y) in rows {
        match out.iter_mut().find(|(k, _)| *k == key) {
            Some((_, points)) => points.push((x, y)),
            None => out.push((key, vec![(x, y)])),
        }
    }
    out
}

/// Builds the figures matching the known table ids in `tables`.
pub fn standard_figures(tables: &[Table]) -> Vec<Figure> {
    let mut figures = Vec::new();
    for table in tables {
        match table.id() {
            "e1_tradeoff" => {
                let fam = table.column_index("family");
                let rounds = table.column_index("rounds");
                let ratio = table.column_index("ratio");
                let mut fig = Figure::new(
                    "fig_e1_tradeoff",
                    "E1: measured ratio vs round budget",
                    "CONGEST rounds",
                    "approximation ratio (vs certified LB)",
                );
                for (label, points) in group_series(
                    table.rows().iter().map(|r| (r[fam].clone(), cell(r, rounds), cell(r, ratio))),
                ) {
                    fig = fig.with_series(label, points);
                }
                figures.push(fig);
            }
            "e3_rho" => {
                let rho = table.column_index("rho");
                let phases = table.column_index("phases");
                let ratio = table.column_index("ratio");
                let needed = table.column_index("phases_for_gamma1.5");
                let mut fig = Figure::new(
                    "fig_e3_rho",
                    "E3: spread sensitivity (ratio per budget; phases needed)",
                    "coefficient spread rho",
                    "ratio / phases",
                );
                fig.log_x = true;
                for (label, points) in group_series(table.rows().iter().map(|r| {
                    (
                        format!("ratio @ s={}", r[phases]),
                        r[rho].parse().unwrap_or(f64::NAN),
                        cell(r, ratio),
                    )
                })) {
                    fig = fig.with_series(label, points);
                }
                // One point per rho for the needed-phases curve (dedup).
                let mut needed_points: Vec<(f64, f64)> = Vec::new();
                for r in table.rows() {
                    let x = r[rho].parse().unwrap_or(f64::NAN);
                    if needed_points.last().is_none_or(|&(px, _)| (px - x).abs() > 1e-12) {
                        needed_points.push((x, cell(r, needed)));
                    }
                }
                fig = fig.with_series("phases for gamma<=1.5", needed_points);
                figures.push(fig);
            }
            "e5_rounding" => {
                let trials = table.column_index("trials");
                let fallback = table.column_index("fallback_frac");
                let cost = table.column_index("cost_over_lp");
                let seq = table.column_index("seq_cost_over_lp");
                let fig = Figure::new(
                    "fig_e5_rounding",
                    "E5: rounding-stage trial budget",
                    "randomized trials T",
                    "fraction / cost factor",
                )
                .with_series(
                    "fallback fraction",
                    table.rows().iter().map(|r| (cell(r, trials), cell(r, fallback))).collect(),
                )
                .with_series(
                    "cost / LP (distributed)",
                    table.rows().iter().map(|r| (cell(r, trials), cell(r, cost))).collect(),
                )
                .with_series(
                    "cost / LP (sequential)",
                    table.rows().iter().map(|r| (cell(r, trials), cell(r, seq))).collect(),
                );
                figures.push(fig);
            }
            "e7_bucket_ablation" => {
                let outer = table.column_index("outer");
                let inner = table.column_index("inner");
                let ratio = table.column_index("ratio");
                let mut fig = Figure::new(
                    "fig_e7_ablation",
                    "E7: GreedyBucket nesting ablation",
                    "inner iterations",
                    "approximation ratio",
                );
                for (label, points) in group_series(
                    table
                        .rows()
                        .iter()
                        .map(|r| (format!("outer={}", r[outer]), cell(r, inner), cell(r, ratio))),
                ) {
                    fig = fig.with_series(label, points);
                }
                figures.push(fig);
            }
            _ => {}
        }
    }
    figures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_figures_for_known_tables() {
        let tables = crate::experiments::e1_tradeoff::run(true);
        let figs = standard_figures(&tables);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].id, "fig_e1_tradeoff");
        assert_eq!(figs[0].series.len(), 2, "one series per family");
        let svg = figs[0].render_svg();
        assert!(svg.contains("uniform") && svg.contains("clustered"));
    }

    #[test]
    fn unknown_tables_are_ignored() {
        let t = Table::new("mystery", "m", &["a"]);
        assert!(standard_figures(&[t]).is_empty());
    }

    #[test]
    fn e5_produces_three_series() {
        let tables = crate::experiments::e5_rounding::run(true);
        let figs = standard_figures(&tables);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), 3);
    }

    #[test]
    fn e7_produces_one_series_per_outer_value() {
        let tables = crate::experiments::e7_bucket_ablation::run(true);
        let figs = standard_figures(&tables);
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].series.len(), 2, "quick grid has two outer values");
    }
}
