//! **E2 — locality (paper "Table 2").**
//!
//! Claim: the algorithm's round count is `O(k)` — a function of its
//! parameter only, independent of the network size — whereas the
//! straw-man simulation of the sequential greedy needs rounds that grow
//! with the input (one global aggregation per picked star).
//!
//! Sweep the instance size at a fixed phase budget and report both round
//! counts side by side, plus message totals and measured quality.

use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::seqdist;
use distfl_core::seqsim::SimulatedSeqGreedy;
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{GridNetwork, InstanceGenerator, LineCity, UniformRandom};
use distfl_instance::Instance;

use crate::table::{num, MISSING};
use crate::Table;

use super::lower_bound_for;

/// Runs E2.
pub fn run(quick: bool) -> Vec<Table> {
    let phases = 8;
    let dense_sizes: &[(usize, usize)] = if quick {
        &[(5, 100), (10, 200)]
    } else {
        &[(5, 100), (10, 200), (20, 400), (40, 800), (80, 1600)]
    };
    let grid_sizes: &[(usize, usize, usize)] =
        if quick { &[(20, 8, 150)] } else { &[(20, 8, 150), (40, 16, 600), (60, 32, 2400)] };
    // Line-metric sizes get *exact* denominators at any scale via the
    // polynomial DP oracle.
    let line_sizes: &[(usize, usize)] =
        if quick { &[(10, 200)] } else { &[(10, 200), (40, 1600), (80, 6400)] };

    let mut table = Table::new(
        "e2_locality",
        "E2: rounds vs input size at a fixed budget (PayDual vs straw-man)",
        &[
            "family",
            "m",
            "n",
            "pd_rounds",
            "pd_msgs",
            "strawman_model",
            "strawman_real",
            "ratio_vs_lb",
        ],
    );

    // Each row is an independent trial described by a spec; the instance is
    // generated *inside* the task from the fixed seed, so the rows are the
    // same at any worker count. Specs are listed in the serial row order
    // and results collected by index.
    enum Spec {
        Uniform { m: usize, n: usize },
        Grid { side: usize, m: usize, n: usize },
        Line { m: usize, n: usize },
    }
    let mut specs: Vec<Spec> = Vec::new();
    specs.extend(dense_sizes.iter().map(|&(m, n)| Spec::Uniform { m, n }));
    specs.extend(grid_sizes.iter().map(|&(side, m, n)| Spec::Grid { side, m, n }));
    specs.extend(line_sizes.iter().map(|&(m, n)| Spec::Line { m, n }));

    let metric_row = |family: &str, inst: &Instance| -> Vec<String> {
        let out =
            PayDual::new(PayDualParams::with_phases(phases)).run(inst, 1).expect("paydual run");
        let t = out.transcript.expect("distributed run");
        let strawman_out = SimulatedSeqGreedy::new().run(inst, 1).expect("strawman run");
        let strawman = strawman_out.modeled_rounds.expect("strawman models rounds");
        // Beyond the exact limit the certified bound combines every dual
        // certificate available (both runs produce one).
        let lb = lower_bound_for(inst).max(
            distfl_lp::bounds::certified_lower_bound(
                inst,
                &[
                    out.dual.as_ref().expect("paydual emits a dual"),
                    strawman_out.dual.as_ref().expect("greedy emits a dual"),
                ],
                super::EXACT_LIMIT,
            )
            .value,
        );
        // The faithful straw-man protocol is executed where affordable
        // (its simulation cost is what makes it a straw-man).
        let real = if inst.num_clients() <= 400 {
            seqdist::run_protocol(inst)
                .map(|(_, t)| t.num_rounds().to_string())
                .unwrap_or_else(|_| MISSING.to_owned())
        } else {
            MISSING.to_owned()
        };
        vec![
            family.to_owned(),
            inst.num_facilities().to_string(),
            inst.num_clients().to_string(),
            t.num_rounds().to_string(),
            t.total_messages().to_string(),
            strawman.to_string(),
            real,
            num(out.solution.cost(inst).value() / lb, 3),
        ]
    };

    let pool = crate::sweep_pool();
    let rows: Vec<Vec<String>> = pool.map_indexed(specs.len(), |i| {
        let _cell = distfl_obs::span_arg("exp", "e2.cell", i as u64);
        match specs[i] {
            Spec::Uniform { m, n } => {
                let inst = UniformRandom::new(m, n).unwrap().generate(200).unwrap();
                metric_row("uniform", &inst)
            }
            Spec::Grid { side, m, n } => {
                let inst = GridNetwork::new(side, side, m, n).unwrap().generate(200).unwrap();
                metric_row("grid", &inst)
            }
            // Line rows: same protocol, exact DP denominator.
            Spec::Line { m, n } => {
                let gen = LineCity::new(m, n).unwrap();
                let layout = gen.layout(200);
                let inst = gen.generate(200).unwrap();
                let out = PayDual::new(PayDualParams::with_phases(phases))
                    .run(&inst, 1)
                    .expect("paydual run");
                let t = out.transcript.expect("distributed run");
                let strawman = SimulatedSeqGreedy::new()
                    .run(&inst, 1)
                    .expect("strawman run")
                    .modeled_rounds
                    .expect("strawman models rounds");
                let opt = distfl_lp::line::solve_line(
                    &layout.facility_pos,
                    &layout.opening,
                    &layout.client_pos,
                );
                vec![
                    "line (exact)".to_owned(),
                    m.to_string(),
                    n.to_string(),
                    t.num_rounds().to_string(),
                    t.total_messages().to_string(),
                    strawman.to_string(),
                    MISSING.to_owned(),
                    num(out.solution.cost(&inst).value() / opt.cost, 3),
                ]
            }
        }
    });
    for row in rows {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paydual_rounds_are_constant_and_strawman_grows() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_owned).collect()).collect();
        let uniform: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "uniform").collect();
        assert!(uniform.len() >= 2);
        let pd: Vec<u32> = uniform.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(pd.windows(2).all(|w| w[0] == w[1]), "paydual rounds vary: {pd:?}");
        let straw: Vec<u32> = uniform.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(straw.last().unwrap() > straw.first().unwrap(), "strawman rounds flat: {straw:?}");
    }
}
