//! **E8 — ablating PayDual's design choices** (this reproduction's own
//! ablation, called for by DESIGN.md: reconstruction decisions must be
//! measured, not assumed).
//!
//! Two knobs:
//!
//! * **connect rule** — max-slack (keeps the dual-fitting accounting
//!   tight: a client connects where it pays the most) vs
//!   cheapest-eligible (myopic),
//! * **final polish** — the free local re-assignment to the cheapest
//!   kept-open facility, on vs off.
//!
//! Reported per (family, budget): the measured ratio of all four
//! combinations.

use distfl_core::paydual::{ConnectRule, PayDual, PayDualParams};
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{Clustered, InstanceGenerator, PowerLaw, UniformRandom};
use distfl_instance::Instance;

use crate::table::num;
use crate::Table;

use super::lower_bound_for;

/// Runs E8.
pub fn run(quick: bool) -> Vec<Table> {
    let budgets: &[u32] = if quick { &[4] } else { &[2, 8, 24] };
    let (m, n) = if quick { (10, 60) } else { (16, 120) };

    let families: Vec<(&str, Instance)> = vec![
        ("uniform", UniformRandom::new(m, n).unwrap().generate(800).unwrap()),
        ("clustered", Clustered::new(3, m, n).unwrap().generate(800).unwrap()),
        ("powerlaw", PowerLaw::new(m, n, 1e4).unwrap().generate(800).unwrap()),
    ];

    let mut table = Table::new(
        "e8_paydual_ablation",
        "E8: PayDual design-choice ablation (ratio per variant)",
        &["family", "phases", "slack+polish", "slack", "cheap+polish", "cheap"],
    );
    // One pool task per (family, phases) row; each task evaluates its four
    // variants and returns a finished row.
    let pool = crate::sweep_pool();
    let lbs: Vec<f64> = pool.map_indexed(families.len(), |f| lower_bound_for(&families[f].1));
    let cells: Vec<(usize, u32)> =
        (0..families.len()).flat_map(|f| budgets.iter().map(move |&phases| (f, phases))).collect();
    let rows: Vec<Vec<String>> = pool.map_indexed(cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e8.cell", c as u64);
        let (f, phases) = cells[c];
        let (family, inst) = &families[f];
        let lb = lbs[f];
        let ratio = |rule: ConnectRule, polish: bool| -> f64 {
            let params =
                PayDualParams { connect_rule: rule, polish, ..PayDualParams::with_phases(phases) };
            PayDual::new(params).run(inst, 1).expect("paydual run").solution.cost(inst).value() / lb
        };
        vec![
            (*family).to_owned(),
            phases.to_string(),
            num(ratio(ConnectRule::MaxSlack, true), 3),
            num(ratio(ConnectRule::MaxSlack, false), 3),
            num(ratio(ConnectRule::CheapestEligible, true), 3),
            num(ratio(ConnectRule::CheapestEligible, false), 3),
        ]
    });
    for row in rows {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polish_never_hurts() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let slack_polished: f64 = cells[2].parse().unwrap();
            let slack_raw: f64 = cells[3].parse().unwrap();
            let cheap_polished: f64 = cells[4].parse().unwrap();
            let cheap_raw: f64 = cells[5].parse().unwrap();
            assert!(slack_polished <= slack_raw + 1e-9, "{row}");
            assert!(cheap_polished <= cheap_raw + 1e-9, "{row}");
        }
    }
}
