//! **E5 — the rounding stage (paper "Figure 2").**
//!
//! Claim: distributed randomized rounding turns a feasible fractional
//! solution into an integral one at an `O(log(m+n))` cost factor, serving
//! all clients w.h.p. within `Θ(log)` trials; a deterministic fallback
//! guarantees feasibility regardless.
//!
//! Sweep the trial budget `T` on a fixed fractional input and report the
//! fallback fraction, the integral/fractional cost ratio, and the gap to
//! the sequential rounding oracle.

use distfl_core::fraclp::spread_fractional;
use distfl_core::round::{distributed_round, rounding_rounds, DistRoundParams};
use distfl_instance::generators::{InstanceGenerator, UniformRandom};
use distfl_lp::rounding::{round as seq_round, RoundingConfig};

use crate::table::num;
use crate::{mean, Table};

/// Runs E5.
pub fn run(quick: bool) -> Vec<Table> {
    let trials_grid: &[u32] = if quick { &[0, 2, 6] } else { &[0, 1, 2, 3, 4, 6, 8, 12] };
    let seeds: u64 = if quick { 3 } else { 8 };
    let (m, n) = if quick { (10, 60) } else { (20, 150) };

    let inst = UniformRandom::new(m, n).unwrap().generate(500).unwrap();
    let frac = spread_fractional(&inst, 4);
    frac.check_feasible(&inst, 1e-9).expect("spread fractional is feasible");
    let lp_objective = frac.objective(&inst);

    let mut table = Table::new(
        "e5_rounding",
        "E5: rounding-stage trial budget vs success and cost",
        &["trials", "rounds", "fallback_frac", "cost_over_lp", "seq_cost_over_lp", "dist_over_seq"],
    );
    // Flat (trials, seed) fan-out: each task returns its (fallback,
    // dist_cost, seq_cost) triple; rows fold the triples back per trial
    // budget in index order.
    let pool = crate::sweep_pool();
    let cells: Vec<(u32, u64)> =
        trials_grid.iter().flat_map(|&trials| (0..seeds).map(move |s| (trials, s))).collect();
    let triples: Vec<(f64, f64, f64)> = pool.map_indexed(cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e5.cell", c as u64);
        let (trials, s) = cells[c];
        let params = DistRoundParams { boost: 2.0, trials, threads: None, fault: None };
        let out = distributed_round(&inst, &frac, params, s).expect("rounding run");
        out.solution.check_feasible(&inst).expect("rounded solution feasible");
        let seq = seq_round(&inst, &frac, RoundingConfig { boost: 2.0, trials }, s);
        (
            out.fallback_clients as f64 / n as f64,
            out.solution.cost(&inst).value(),
            seq.solution.cost(&inst).value(),
        )
    });
    for (t, &trials) in trials_grid.iter().enumerate() {
        let per_seed = &triples[t * seeds as usize..(t + 1) * seeds as usize];
        let fallback: Vec<f64> = per_seed.iter().map(|x| x.0).collect();
        let dist_cost: Vec<f64> = per_seed.iter().map(|x| x.1).collect();
        let seq_cost: Vec<f64> = per_seed.iter().map(|x| x.2).collect();
        table.push(vec![
            trials.to_string(),
            rounding_rounds(trials).to_string(),
            num(mean(&fallback), 3),
            num(mean(&dist_cost) / lp_objective, 3),
            num(mean(&seq_cost) / lp_objective, 3),
            num(mean(&dist_cost) / mean(&seq_cost), 3),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_fraction_shrinks_with_trials_and_oracle_agrees() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_owned).collect()).collect();
        let fallback: Vec<f64> = rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(fallback[0], 1.0, "zero trials means all fallback");
        assert!(
            fallback.last().unwrap() < &0.2,
            "enough trials should serve most clients: {fallback:?}"
        );
        // Distributed and sequential rounding live in the same cost regime.
        let gap: Vec<f64> = rows.iter().map(|r| r[5].parse().unwrap()).collect();
        for g in gap {
            assert!((0.4..2.5).contains(&g), "dist/seq gap {g} out of family");
        }
    }
}
