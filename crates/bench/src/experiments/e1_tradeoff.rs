//! **E1 — the headline trade-off (paper "Table 1").**
//!
//! Claim: for every round budget `k` the algorithm achieves an
//! `O(√k·(mρ)^{1/√k}·log(m+n))`-approximation in `O(k)` rounds; more
//! rounds buy a strictly better guarantee with diminishing returns.
//!
//! Sweep the PayDual phase budget on fixed instances and report the
//! measured ratio against a certified lower bound, next to the per-phase
//! factor `γ`, this reproduction's bound `γ·(1+ln(m+n))`, and the paper's
//! bound formula evaluated at the same round count.

use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::{theory, FlAlgorithm};
use distfl_instance::generators::{Clustered, InstanceGenerator, UniformRandom};
use distfl_instance::{spread, Instance};

use crate::table::num;
use crate::{mean, std_dev, Table};

use super::lower_bound_for;

/// Runs E1.
pub fn run(quick: bool) -> Vec<Table> {
    let phase_grid: &[u32] = if quick { &[1, 4, 16] } else { &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32] };
    let seeds: u64 = if quick { 2 } else { 4 };
    let (m, n) = if quick { (10, 60) } else { (16, 120) };

    let workloads: Vec<(&str, Instance)> = vec![
        ("uniform", UniformRandom::new(m, n).unwrap().generate(100).unwrap()),
        ("clustered", Clustered::new(3, m, n).unwrap().generate(100).unwrap()),
    ];

    let mut table = Table::new(
        "e1_tradeoff",
        "E1: approximation ratio vs round budget (PayDual)",
        &["family", "phases", "rounds", "gamma", "ratio", "ratio_sd", "bound_repro", "bound_paper"],
    );
    // Every (workload, phases) cell is an independent trial bundle: fan the
    // cells out on the pool and assemble rows in index order, so the table
    // is identical to the serial double loop.
    let pool = crate::sweep_pool();
    let lbs: Vec<f64> = pool.map_indexed(workloads.len(), |w| lower_bound_for(&workloads[w].1));
    let cells: Vec<(usize, u32)> = (0..workloads.len())
        .flat_map(|w| phase_grid.iter().map(move |&phases| (w, phases)))
        .collect();
    let cell_ratios: Vec<Vec<f64>> = pool.map_indexed(cells.len(), |c| {
        let (w, phases) = cells[c];
        let inst = &workloads[w].1;
        (0..seeds)
            .map(|s| {
                let _trial = distfl_obs::span_arg("exp", "e1.trial", s);
                PayDual::new(PayDualParams::with_phases(phases))
                    .run(inst, s)
                    .expect("paydual run")
                    .solution
                    .cost(inst)
                    .value()
                    / lbs[w]
            })
            .collect()
    });
    for (&(w, phases), ratios) in cells.iter().zip(&cell_ratios) {
        let (family, inst) = &workloads[w];
        let rounds = theory::paydual_rounds(phases);
        table.push(vec![
            (*family).to_owned(),
            phases.to_string(),
            rounds.to_string(),
            num(spread::phase_factor(inst, phases), 3),
            num(mean(ratios), 3),
            num(std_dev(ratios), 3),
            num(theory::paydual_bound(inst, phases), 1),
            num(
                theory::paper_bound(
                    rounds,
                    inst.num_facilities(),
                    inst.num_clients(),
                    spread::coefficient_spread(inst),
                ),
                1,
            ),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_monotone_tail() {
        let tables = run(true);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.num_rows(), 2 * 3);
        // The measured ratio at the largest budget should be no worse than
        // at the smallest, for each family (averaged, deterministic here).
        let csv = t.to_csv();
        let rows: Vec<Vec<&str>> = csv.lines().skip(1).map(|l| l.split(',').collect()).collect();
        for family in ["uniform", "clustered"] {
            let fam: Vec<&Vec<&str>> = rows.iter().filter(|r| r[0] == family).collect();
            let first: f64 = fam.first().unwrap()[4].parse().unwrap();
            let last: f64 = fam.last().unwrap()[4].parse().unwrap();
            assert!(last <= first + 0.15, "{family}: {last} vs {first}");
        }
    }
}
