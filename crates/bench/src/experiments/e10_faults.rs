//! **E10 — graceful degradation under faults** (this reproduction's own
//! addition).
//!
//! The PODC 2005 model is synchronous and fault-free; a library shipping
//! the algorithm should still say what happens when the network is not.
//! PayDual's *safety* is unconditional (clients recover through local
//! fallbacks, so the output is always feasible); this experiment measures
//! the *quality* price of message loss: ratio and facility count as the
//! drop probability rises, plus the crash-stop case of losing a fraction
//! of facilities at round 0.

use distfl_congest::{FaultPlan, NodeId};
use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{InstanceGenerator, UniformRandom};

use crate::table::num;
use crate::{mean, Table};

use super::lower_bound_for;

/// Runs E10.
pub fn run(quick: bool) -> Vec<Table> {
    let drops: &[f64] = if quick { &[0.0, 0.3] } else { &[0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8] };
    let seeds: u64 = if quick { 3 } else { 6 };
    let (m, n) = if quick { (10, 50) } else { (16, 120) };

    let inst = UniformRandom::new(m, n).unwrap().generate(1000).unwrap();
    let lb = lower_bound_for(&inst);

    let mut table = Table::new(
        "e10_faults",
        "E10: PayDual quality under message loss (feasibility is unconditional)",
        &["drop_prob", "ratio", "ratio_sd", "open", "dropped_frac"],
    );
    // Flat (drop_prob, seed) fan-out; triples fold back per row in order.
    let pool = crate::sweep_pool();
    let drop_cells: Vec<(f64, u64)> =
        drops.iter().flat_map(|&p| (0..seeds).map(move |s| (p, s))).collect();
    let drop_trials: Vec<(f64, f64, f64)> = pool.map_indexed(drop_cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e10.drop_cell", c as u64);
        let (p, s) = drop_cells[c];
        let fault = (p > 0.0).then(|| FaultPlan::drop_with_probability(p, 2000 + s));
        let params = PayDualParams { fault, ..PayDualParams::with_phases(10) };
        let out = PayDual::new(params).run(&inst, s).expect("paydual run");
        out.solution.check_feasible(&inst).expect("safety is unconditional");
        let t = out.transcript.expect("distributed run");
        let total = t.total_messages() + t.total_dropped();
        (
            out.solution.cost(&inst).value() / lb,
            out.solution.num_open() as f64,
            if total == 0 { 0.0 } else { t.total_dropped() as f64 / total as f64 },
        )
    });
    for (row, per_seed) in drop_trials.chunks(seeds as usize).enumerate() {
        let p = drops[row];
        let ratios: Vec<f64> = per_seed.iter().map(|x| x.0).collect();
        let opens: Vec<f64> = per_seed.iter().map(|x| x.1).collect();
        let dropped: Vec<f64> = per_seed.iter().map(|x| x.2).collect();
        table.push(vec![
            num(p, 2),
            num(mean(&ratios), 3),
            num(crate::std_dev(&ratios), 3),
            num(mean(&opens), 1),
            num(mean(&dropped), 3),
        ]);
    }

    // Crash-stop rows: lose the first k facilities at round 0.
    let mut crash_table = Table::new(
        "e10_crashes",
        "E10b: PayDual quality with crashed facilities (crash-stop at round 0)",
        &["crashed_facilities", "ratio"],
    );
    let crash_counts: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 4, 8] };
    let crash_cells: Vec<(usize, u64)> =
        crash_counts.iter().flat_map(|&k| (0..seeds).map(move |s| (k, s))).collect();
    let crash_ratios: Vec<f64> = pool.map_indexed(crash_cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e10.crash_cell", c as u64);
        let (k, s) = crash_cells[c];
        run_with_crashes(&inst, k, s) / lb
    });
    for (row, per_seed) in crash_ratios.chunks(seeds as usize).enumerate() {
        crash_table.push(vec![crash_counts[row].to_string(), num(mean(per_seed), 3)]);
    }
    vec![table, crash_table]
}

/// Runs PayDual with the first `k` facilities crashed at round 0 and
/// returns the recovered solution's cost.
fn run_with_crashes(instance: &distfl_instance::Instance, k: usize, seed: u64) -> f64 {
    use distfl_congest::{CongestConfig, Network};
    use distfl_core::paydual::node as pd;
    use distfl_core::{node_role, topology_of, Role};

    let phases = 10;
    let topo = topology_of(instance).expect("topology");
    let nodes = pd::build_nodes(instance, phases, Default::default());
    let config = CongestConfig {
        crashes: (0..k).map(|i| (NodeId::new(i as u32), 0)).collect(),
        ..CongestConfig::default()
    };
    let mut net = Network::with_config(topo, nodes, seed, config).expect("network");
    net.run(distfl_core::theory::paydual_rounds(phases)).expect("run");
    let m = instance.num_facilities();
    let assignment: Vec<distfl_instance::FacilityId> = net
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(index, node)| match (node_role(m, NodeId::new(index as u32)), node) {
            (Role::Client(_), pd::PayDualNode::Client(c)) => Some(
                c.connected_facility()
                    .or_else(|| c.fallback_facility())
                    .expect("clients always have a recovery target"),
            ),
            _ => None,
        })
        .collect();
    let solution = distfl_instance::Solution::from_assignment(instance, assignment)
        .expect("recovered assignment is feasible");
    solution.cost(instance).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_anchors_the_table_and_loss_never_helps() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_owned).collect()).collect();
        let clean: f64 = rows[0][1].parse().unwrap();
        let lossy: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(clean >= 1.0 - 1e-9);
        // Loss can genuinely *help* on small instances (dropped CONNECT
        // offers mean fewer facilities open, occasionally at lower cost),
        // so no directional claim — just that both stay in a sane envelope
        // above the lower bound.
        assert!(lossy >= 1.0 - 1e-9, "ratio below the lower bound: {lossy}");
        assert!(lossy < 10.0, "lossy ratio {lossy} out of any reasonable envelope");
        // Dropped fraction tracks the configured probability.
        let frac: f64 = rows.last().unwrap()[4].parse().unwrap();
        let p: f64 = rows.last().unwrap()[0].parse().unwrap();
        assert!((frac - p).abs() < 0.1, "dropped {frac} vs configured {p}");
    }

    #[test]
    fn crashes_degrade_but_never_break() {
        let tables = run(true);
        let csv = tables[1].to_csv();
        for row in csv.lines().skip(1) {
            let ratio: f64 = row.split(',').nth(1).unwrap().parse().unwrap();
            assert!(ratio >= 1.0 - 1e-9);
            assert!(ratio < 30.0, "crash ratio {ratio} out of any envelope");
        }
    }
}
