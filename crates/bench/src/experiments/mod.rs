//! The experiment implementations (one module per claim; see crate docs).

pub mod e10_faults;
pub mod e1_tradeoff;
pub mod e2_locality;
pub mod e3_rho;
pub mod e4_comparison;
pub mod e5_rounding;
pub mod e6_congestion;
pub mod e7_bucket_ablation;
pub mod e8_paydual_ablation;
pub mod e9_benchmark;
pub mod figures;

use distfl_core::greedy::StarGreedy;
use distfl_core::FlAlgorithm;
use distfl_instance::Instance;
use distfl_lp::bounds;

/// The facility-count limit below which experiments use the exact optimum
/// as the ratio denominator.
pub const EXACT_LIMIT: usize = 22;

/// The best certified lower bound available for an experiment instance:
/// exact optimum for small facility counts, otherwise the better of the
/// trivial bound and the greedy run's dual-fitting certificate.
pub fn lower_bound_for(instance: &Instance) -> f64 {
    let greedy_dual = StarGreedy::new()
        .run(instance, 0)
        .expect("greedy cannot fail")
        .dual
        .expect("greedy emits a dual certificate");
    bounds::certified_lower_bound(instance, &[&greedy_dual], EXACT_LIMIT).value
}

/// Runs every experiment (the `exp_all` binary).
///
/// The ten experiments are independent, so they fan out as tasks on the
/// shared [`crate::sweep_pool`]; results come back in index order, which
/// keeps the table sequence (and thus every CSV and figure) identical to
/// a serial run.
pub fn run_all(quick: bool) -> Vec<crate::Table> {
    type ExperimentFn = fn(bool) -> Vec<crate::Table>;
    let exps: &[(&'static str, ExperimentFn)] = &[
        ("e1_tradeoff", e1_tradeoff::run),
        ("e2_locality", e2_locality::run),
        ("e3_rho", e3_rho::run),
        ("e4_comparison", e4_comparison::run),
        ("e5_rounding", e5_rounding::run),
        ("e6_congestion", e6_congestion::run),
        ("e7_bucket_ablation", e7_bucket_ablation::run),
        ("e8_paydual_ablation", e8_paydual_ablation::run),
        ("e9_benchmark", e9_benchmark::run),
        ("e10_faults", e10_faults::run),
    ];
    let pool = crate::sweep_pool();
    pool.map_indexed(exps.len(), |i| {
        let (name, run) = exps[i];
        let _span = distfl_obs::span("exp", name);
        run(quick)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distfl_instance::generators::{InstanceGenerator, UniformRandom};

    #[test]
    fn lower_bound_is_positive_and_conservative() {
        let inst = UniformRandom::new(6, 15).unwrap().generate(0).unwrap();
        let lb = lower_bound_for(&inst);
        let opt = distfl_lp::exact::solve(&inst).unwrap().cost.value();
        assert!(lb > 0.0);
        assert!((lb - opt).abs() < 1e-9, "small instances use the exact bound");
    }

    #[test]
    fn lower_bound_falls_back_beyond_the_exact_limit() {
        let inst = UniformRandom::new(30, 40).unwrap().generate(0).unwrap();
        let lb = lower_bound_for(&inst);
        assert!(lb > 0.0);
    }
}
