//! **E7 — ablating the two-level nesting (paper "Table 4").**
//!
//! Claim shape: the `√k × √k` split matters. Outer phases control the
//! geometric bucket width (quality of the greedy ordering); inner
//! iterations control how completely a bucket is swept before the
//! threshold advances (they matter up to `Θ(log(m+n))`, then saturate).
//!
//! Grid sweep of `(s_out, s_in)` for GreedyBucket on a clustered workload,
//! reporting measured ratio and round cost per cell.

use distfl_core::bucket::{bucket_rounds, BucketParams, GreedyBucket};
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{Clustered, InstanceGenerator};

use crate::table::num;
use crate::{mean, Table};

use super::lower_bound_for;

/// Runs E7.
pub fn run(quick: bool) -> Vec<Table> {
    let grid: &[u32] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let seeds: u64 = if quick { 3 } else { 6 };
    let (m, n) = if quick { (10, 60) } else { (16, 120) };

    let inst = Clustered::new(3, m, n).unwrap().generate(700).unwrap();
    let lb = lower_bound_for(&inst);

    let mut table = Table::new(
        "e7_bucket_ablation",
        "E7: GreedyBucket nesting ablation (ratio per outer x inner cell)",
        &["outer", "inner", "rounds", "ratio", "round_cost_per_quality"],
    );
    // One pool task per (outer, inner) cell, rows in grid order.
    let pool = crate::sweep_pool();
    let cells: Vec<(u32, u32)> =
        grid.iter().flat_map(|&outer| grid.iter().map(move |&inner| (outer, inner))).collect();
    let rows: Vec<Vec<String>> = pool.map_indexed(cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e7.cell", c as u64);
        let (outer, inner) = cells[c];
        let params = BucketParams::new(outer, inner);
        let ratios: Vec<f64> = (0..seeds)
            .map(|s| {
                GreedyBucket::new(params)
                    .run(&inst, s)
                    .expect("bucket run")
                    .solution
                    .cost(&inst)
                    .value()
                    / lb
            })
            .collect();
        let rounds = bucket_rounds(params);
        let ratio = mean(&ratios);
        vec![
            outer.to_string(),
            inner.to_string(),
            rounds.to_string(),
            num(ratio, 3),
            num(f64::from(rounds) * ratio, 1),
        ]
    });
    for row in rows {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepest_cell_beats_the_shallowest() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_owned).collect()).collect();
        let ratio = |outer: &str, inner: &str| -> f64 {
            rows.iter().find(|r| r[0] == outer && r[1] == inner).unwrap()[3].parse().unwrap()
        };
        let shallow = ratio("1", "1");
        let deep = ratio("4", "4");
        assert!(
            deep <= shallow + 0.05,
            "deep nesting ({deep}) should not lose to shallow ({shallow})"
        );
    }
}
