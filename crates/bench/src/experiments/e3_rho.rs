//! **E3 — dependence on the coefficient spread ρ (paper "Figure 1").**
//!
//! Claim: the approximation bound carries a `(mρ)^{1/√k}` term, so at a
//! fixed budget the *guarantee* degrades with ρ, and reaching a fixed
//! per-phase factor requires `Θ(log ρ)` phases.
//!
//! Sweep ρ on the pinned-spread family and report, per (ρ, budget): the
//! realized per-phase factor γ, the measured ratio against the exact
//! optimum, the theory bound, and the phase budget needed for γ ≤ 1.5.
//! (Measured ratios on *random* log-uniform instances stay benign even at
//! high ρ — the bound's growth reflects worst-case overshoot, which the
//! adversarial row at the bottom exhibits.)

use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::{theory, FlAlgorithm};
use distfl_instance::generators::{InstanceGenerator, PowerLaw};
use distfl_instance::spread;

use crate::table::num;
use crate::{mean, Table};

use super::lower_bound_for;

/// Runs E3.
pub fn run(quick: bool) -> Vec<Table> {
    let rhos: &[f64] = if quick { &[1e1, 1e3, 1e6] } else { &[1e1, 1e2, 1e3, 1e4, 1e5, 1e6] };
    let budgets: &[u32] = if quick { &[2, 16] } else { &[2, 8, 32] };
    let seeds: u64 = if quick { 2 } else { 4 };
    let (m, n) = if quick { (10, 60) } else { (16, 120) };

    let mut table = Table::new(
        "e3_rho",
        "E3: spread sensitivity at fixed budgets (PayDual on pinned-spread instances)",
        &["rho", "phases", "gamma", "ratio", "bound_repro", "phases_for_gamma1.5"],
    );
    // One pool task per ρ level (each shares its generated instance and
    // lower bound across the budget sweep); rows come back in ρ order.
    let pool = crate::sweep_pool();
    let rho_rows: Vec<Vec<Vec<String>>> = pool.map_indexed(rhos.len(), |r| {
        let _cell = distfl_obs::span_arg("exp", "e3.cell", r as u64);
        let rho = rhos[r];
        let inst = PowerLaw::new(m, n, rho).unwrap().generate(300).unwrap();
        let lb = lower_bound_for(&inst);
        let needed = spread::phases_for_factor(&inst, 1.5);
        budgets
            .iter()
            .map(|&phases| {
                let ratios: Vec<f64> = (0..seeds)
                    .map(|s| {
                        PayDual::new(PayDualParams::with_phases(phases))
                            .run(&inst, s)
                            .expect("paydual run")
                            .solution
                            .cost(&inst)
                            .value()
                            / lb
                    })
                    .collect();
                vec![
                    format!("{rho:.0e}"),
                    phases.to_string(),
                    num(spread::phase_factor(&inst, phases), 3),
                    num(mean(&ratios), 3),
                    num(theory::paydual_bound(&inst, phases), 1),
                    needed.to_string(),
                ]
            })
            .collect()
    });
    for row in rho_rows.into_iter().flatten() {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_needed_grow_with_rho_and_gamma_shrinks_with_budget() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> =
            csv.lines().skip(1).map(|l| l.split(',').map(str::to_owned).collect()).collect();
        // phases_for_gamma1.5 strictly grows along the rho sweep.
        let needed: Vec<u32> = rows.iter().step_by(2).map(|r| r[5].parse().unwrap()).collect();
        assert!(needed.windows(2).all(|w| w[1] > w[0]), "needed phases: {needed:?}");
        // Within each rho, gamma shrinks as the budget grows.
        for pair in rows.chunks(2) {
            let g_small: f64 = pair[0][2].parse().unwrap();
            let g_large: f64 = pair[1][2].parse().unwrap();
            assert!(g_large < g_small);
        }
    }
}
