//! **E4 — the algorithm zoo across workloads (paper "Table 3").**
//!
//! Claim shape: on non-metric inputs the distributed algorithms are within
//! the `O(γ·log)` envelope of the optimum while the metric constant-factor
//! baselines are inapplicable; on metric inputs the baselines win on
//! quality but need global/sequential coordination; the straw-man matches
//! greedy's quality at a round cost that grows with the input.
//!
//! Every workload family × every applicable algorithm, ratios against the
//! exact optimum (all instances sized under the exact limit).

use distfl_core::bucket::{BucketParams, GreedyBucket};
use distfl_core::greedy::StarGreedy;
use distfl_core::jv::JainVazirani;
use distfl_core::mp::MettuPlaxton;
use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::seqdist::DistSeqGreedy;
use distfl_core::seqsim::SimulatedSeqGreedy;
use distfl_core::{CoreError, FlAlgorithm};
use distfl_instance::generators::{
    AdversarialGreedy, CdnTrace, Clustered, Euclidean, GridNetwork, InstanceGenerator, PowerLaw,
    UniformRandom,
};
use distfl_instance::Instance;

use crate::table::{num, MISSING};
use crate::{mean, Table};

use super::lower_bound_for;

/// Runs E4.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: u64 = if quick { 2 } else { 4 };
    let (m, n) = if quick { (10, 50) } else { (16, 120) };

    let families: Vec<(&str, Instance)> = {
        let mut v = vec![
            ("uniform", UniformRandom::new(m, n).unwrap().generate(400).unwrap()),
            ("euclidean", Euclidean::new(m, n).unwrap().generate(400).unwrap()),
            ("clustered", Clustered::new(3, m, n).unwrap().generate(400).unwrap()),
            ("grid", GridNetwork::new(12, 12, m, n).unwrap().generate(400).unwrap()),
            ("powerlaw", PowerLaw::new(m, n, 1e4).unwrap().generate(400).unwrap()),
            ("cdn", CdnTrace::new(m, n).unwrap().generate(400).unwrap()),
        ];
        if !quick {
            v.push(("adversarial", AdversarialGreedy::new(20).unwrap().generate(0).unwrap()));
        }
        v
    };

    // Algorithms as non-capturing constructors so every pool task builds
    // its own instance (the trait objects need not be `Sync`).
    let algorithms: Vec<fn() -> Box<dyn FlAlgorithm>> = vec![
        || Box::new(PayDual::new(PayDualParams::with_phases(4))),
        || Box::new(PayDual::new(PayDualParams::with_phases(16))),
        || Box::new(GreedyBucket::new(BucketParams::new(4, 4))),
        || Box::new(StarGreedy::new()),
        || Box::new(SimulatedSeqGreedy::new()),
        || Box::new(DistSeqGreedy::new()),
        || Box::new(JainVazirani::new()),
        || Box::new(MettuPlaxton::new()),
    ];

    let mut table = Table::new(
        "e4_comparison",
        "E4: algorithm comparison across workload families (ratio vs certified LB)",
        &["family", "algorithm", "ratio", "rounds", "messages"],
    );
    // One pool task per (family, algorithm) cell; the seed loop stays
    // inside the task because its early exit on `RequiresMetric` is part
    // of the cell's semantics. Rows are assembled in index order.
    let pool = crate::sweep_pool();
    let lbs: Vec<f64> = pool.map_indexed(families.len(), |f| lower_bound_for(&families[f].1));
    let cells: Vec<(usize, usize)> =
        (0..families.len()).flat_map(|f| (0..algorithms.len()).map(move |a| (f, a))).collect();
    let rows: Vec<Vec<String>> = pool.map_indexed(cells.len(), |c| {
        let _cell = distfl_obs::span_arg("exp", "e4.cell", c as u64);
        let (f, a) = cells[c];
        let (family, inst) = &families[f];
        let lb = lbs[f];
        let algo = algorithms[a]();
        let mut ratios = Vec::new();
        let mut rounds_cell = MISSING.to_owned();
        let mut msgs_cell = MISSING.to_owned();
        let mut applicable = true;
        for s in 0..seeds {
            match algo.run(inst, s) {
                Ok(out) => {
                    ratios.push(out.solution.cost(inst).value() / lb);
                    if let Some(t) = &out.transcript {
                        rounds_cell = t.num_rounds().to_string();
                        msgs_cell = t.total_messages().to_string();
                    } else if let Some(r) = out.modeled_rounds {
                        rounds_cell = format!("~{r}");
                    }
                }
                Err(CoreError::RequiresMetric { .. }) => {
                    applicable = false;
                    break;
                }
                Err(e) => panic!("{} on {family}: {e}", algo.name()),
            }
        }
        let ratio_cell =
            if applicable { num(mean(&ratios), 3) } else { "n/a (non-metric)".to_owned() };
        vec![
            (*family).to_owned(),
            algo.name(),
            ratio_cell,
            if applicable { rounds_cell } else { MISSING.to_owned() },
            if applicable { msgs_cell } else { MISSING.to_owned() },
        ]
    });
    for row in rows {
        table.push(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_baselines_marked_inapplicable_on_nonmetric_families() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| {
                // Cells may be quoted (contain commas); a simple split
                // suffices because ratio cells with commas are quoted.
                l.split(',').map(str::to_owned).collect()
            })
            .collect();
        // On uniform (non-metric) jv must be n/a; on euclidean it must
        // produce a ratio.
        let cell = |family: &str, algo: &str| -> String {
            rows.iter()
                .find(|r| r[0] == family && r[1] == algo)
                .map(|r| r[2..].join(","))
                .unwrap_or_default()
        };
        assert!(cell("uniform", "jain-vazirani").contains("n/a"));
        assert!(!cell("euclidean", "jain-vazirani").contains("n/a"));
        // Greedy ratio is parseable and >= 1 everywhere.
        let g: f64 = rows.iter().find(|r| r[0] == "uniform" && r[1] == "greedy").unwrap()[2]
            .parse()
            .unwrap();
        assert!(g >= 1.0 - 1e-9);
    }
}
