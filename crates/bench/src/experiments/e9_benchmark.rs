//! **E9 — benchmark-shaped instances** (this reproduction's own addition).
//!
//! The facility-location literature reports on Beasley's OR-Library suite
//! (`cap71`–`cap104`: 16–50 facilities × 50 clients, uniform-ish costs).
//! This experiment runs the full pipeline on synthetic instances of those
//! shapes — including the *deployment pipeline*: the distributed PayDual
//! placement polished by sequential local search — so the library's
//! numbers are directly comparable in spirit to published UFL tables.
//! Cells follow the benchmark convention: the *gap to the best known*
//! solution across the compared methods (1.000 = best), since the larger
//! shapes exceed the exact solver's reach. (The actual OR-Library files
//! load through `distfl_instance::orlib` and the CLI; this experiment
//! keeps the repository self-contained.)

use distfl_core::localsearch;
use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::FlAlgorithm;
use distfl_instance::generators::{Euclidean, InstanceGenerator, UniformRandom};
use distfl_instance::Instance;

use crate::table::num;
use crate::{mean, Table};

/// Runs E9.
pub fn run(quick: bool) -> Vec<Table> {
    let shapes: &[(usize, usize, &str)] = if quick {
        &[(16, 50, "cap7x-shape")]
    } else {
        &[(16, 50, "cap7x-shape"), (25, 50, "cap10x-shape"), (50, 50, "cap13x-shape")]
    };
    let seeds: u64 = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "e9_benchmark",
        "E9: benchmark-shaped instances (OR-Library sizes), full pipeline",
        &["shape", "family", "greedy_gap", "paydual16_gap", "pd+ls_gap", "ls_moves"],
    );
    // Flat (shape, family, seed) fan-out: each task generates its instance
    // deterministically, runs the full pipeline, and returns the raw
    // per-seed costs. The best-known anchoring is a per-row fold over the
    // collected triples, so rows are identical to the serial nested loops.
    let families: &[&str] = &["uniform", "euclidean"];
    let make = |m: usize, n: usize, family: &str, s: u64| -> Instance {
        match family {
            "uniform" => UniformRandom::new(m, n).unwrap().generate(s).unwrap(),
            _ => Euclidean::new(m, n).unwrap().generate(s).unwrap(),
        }
    };
    let cells: Vec<(usize, usize, u64)> = (0..shapes.len())
        .flat_map(|sh| (0..families.len()).flat_map(move |f| (0..seeds).map(move |s| (sh, f, s))))
        .collect();
    let pool = crate::sweep_pool();
    let trials: Vec<(f64, f64, f64, f64)> = pool.map_indexed(cells.len(), |c| {
        let (sh, f, s) = cells[c];
        let _trial = distfl_obs::span_arg("exp", "e9.trial", s);
        let (m, n, _) = shapes[sh];
        let inst = make(m, n, families[f], 900 + s);
        let (g, _) = distfl_core::greedy::solve(&inst);
        let greedy_cost = g.cost(&inst).value();
        let pd = PayDual::new(PayDualParams::with_phases(16)).run(&inst, s).expect("paydual run");
        let pd_cost = pd.solution.cost(&inst).value();
        let ls = localsearch::optimize(&inst, &pd.solution, 200);
        (greedy_cost, pd_cost, ls.final_cost, f64::from(ls.moves))
    });
    for (row, per_seed) in trials.chunks(seeds as usize).enumerate() {
        let (sh, f, _) = cells[row * seeds as usize];
        let (_, _, shape) = shapes[sh];
        let mut greedy_ratios = Vec::new();
        let mut pd_ratios = Vec::new();
        let mut polished_ratios = Vec::new();
        let mut moves = Vec::new();
        for &(greedy_cost, pd_cost, ls_cost, ls_moves) in per_seed {
            // Benchmark convention: gap to the best known among the
            // compared methods.
            let best = greedy_cost.min(pd_cost).min(ls_cost);
            greedy_ratios.push(greedy_cost / best);
            pd_ratios.push(pd_cost / best);
            polished_ratios.push(ls_cost / best);
            moves.push(ls_moves);
        }
        table.push(vec![
            shape.to_owned(),
            families[f].to_owned(),
            num(mean(&greedy_ratios), 3),
            num(mean(&pd_ratios), 3),
            num(mean(&polished_ratios), 3),
            num(mean(&moves), 1),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polish_dominates_raw_paydual() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let pd: f64 = cells[3].parse().unwrap();
            let polished: f64 = cells[4].parse().unwrap();
            assert!(polished <= pd + 1e-9, "{row}");
            assert!(polished >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn gaps_are_anchored_at_the_best_known() {
        let tables = run(true);
        let csv = tables[0].to_csv();
        for row in csv.lines().skip(1) {
            let cells: Vec<&str> = row.split(',').collect();
            let gaps: Vec<f64> = cells[2..5].iter().map(|c| c.parse().unwrap()).collect();
            let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
            assert!((min - 1.0).abs() < 0.02, "best-known anchor drifted: {row}");
            assert!(gaps.iter().all(|&g| g < 2.0), "gap out of band: {row}");
        }
    }
}
