//! # distfl-bench
//!
//! The experiment harness of the `distfl` reproduction. The PODC 2005
//! paper is purely analytical, so its "tables and figures" are its
//! claims; each experiment here turns one claim into a measurable sweep
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md` for the index):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | round/approximation trade-off | [`experiments::e1_tradeoff`] |
//! | E2 | locality: rounds independent of input size | [`experiments::e2_locality`] |
//! | E3 | dependence on the coefficient spread `ρ` | [`experiments::e3_rho`] |
//! | E4 | algorithm comparison across workloads | [`experiments::e4_comparison`] |
//! | E5 | rounding stage: `log(m+n)` loss and success prob | [`experiments::e5_rounding`] |
//! | E6 | CONGEST compliance and message complexity | [`experiments::e6_congestion`] |
//! | E7 | ablation of the two-level phase nesting | [`experiments::e7_bucket_ablation`] |
//!
//! Every experiment is a library function returning [`Table`]s, so the
//! binaries (`exp_e1` … `exp_e7`, `exp_all`) are thin wrappers and the
//! harness itself is unit-tested. Tables are printed aligned and written
//! as CSV under `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod figure;
mod stats;
mod table;

pub use figure::{emit_figures, Figure, Series};
pub use stats::{mean, std_dev};
pub use table::Table;

use std::path::PathBuf;

/// Where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Prints tables and writes their CSVs; the uniform tail of every
/// experiment binary.
pub fn emit(tables: &[Table]) {
    let dir = results_dir();
    for table in tables {
        println!("{}", table.render());
        let path = dir.join(format!("{}.csv", table.id()));
        std::fs::write(&path, table.to_csv()).expect("write experiment csv");
        println!("[written: {}]\n", path.display());
    }
}

/// Whether quick mode is requested (smaller sweeps), via `--quick` or the
/// `DISTFL_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("DISTFL_QUICK").is_some()
}
