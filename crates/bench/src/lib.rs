//! # distfl-bench
//!
//! The experiment harness of the `distfl` reproduction. The PODC 2005
//! paper is purely analytical, so its "tables and figures" are its
//! claims; each experiment here turns one claim into a measurable sweep
//! (see `DESIGN.md` §4 and `EXPERIMENTS.md` for the index):
//!
//! | id | claim | module |
//! |----|-------|--------|
//! | E1 | round/approximation trade-off | [`experiments::e1_tradeoff`] |
//! | E2 | locality: rounds independent of input size | [`experiments::e2_locality`] |
//! | E3 | dependence on the coefficient spread `ρ` | [`experiments::e3_rho`] |
//! | E4 | algorithm comparison across workloads | [`experiments::e4_comparison`] |
//! | E5 | rounding stage: `log(m+n)` loss and success prob | [`experiments::e5_rounding`] |
//! | E6 | CONGEST compliance and message complexity | [`experiments::e6_congestion`] |
//! | E7 | ablation of the two-level phase nesting | [`experiments::e7_bucket_ablation`] |
//! | E8 | PayDual design ablation (rules × polish) | [`experiments::e8_paydual_ablation`] |
//! | E9 | cross-algorithm benchmark on shaped families | [`experiments::e9_benchmark`] |
//! | E10 | graceful degradation under faults | [`experiments::e10_faults`] |
//!
//! Every experiment is a library function returning [`Table`]s, so the
//! binaries (`exp_e1` … `exp_e10`, `exp_all`) are thin wrappers and the
//! harness itself is unit-tested. Tables are printed aligned and written
//! as CSV under `target/experiments/`.
//!
//! ## Concurrency
//!
//! Sweeps fan their independent trials out on the shared
//! [`distfl_pool::WorkerPool`] via [`sweep_pool`]. Every trial derives its
//! RNG seed from the row indices alone and results are collected in index
//! order, so the emitted CSVs are byte-identical to a serial run at any
//! worker count (`--serial`, `--threads N`, or `DISTFL_THREADS`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod figure;
mod stats;
mod table;

pub use figure::{emit_figures, Figure, Series};
pub use stats::{mean, std_dev};
pub use table::Table;

use std::path::PathBuf;

/// Where experiment CSVs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Prints tables and writes their CSVs; the uniform tail of every
/// experiment binary.
pub fn emit(tables: &[Table]) {
    let dir = results_dir();
    for table in tables {
        println!("{}", table.render());
        let path = dir.join(format!("{}.csv", table.id()));
        std::fs::write(&path, table.to_csv()).expect("write experiment csv");
        println!("[written: {}]\n", path.display());
    }
}

/// Whether quick mode is requested (smaller sweeps), via `--quick` or the
/// `DISTFL_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("DISTFL_QUICK").is_some()
}

use distfl_pool::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel meaning "not set explicitly — resolve from the environment".
const SWEEP_AUTO: usize = usize::MAX;

static SWEEP_WORKERS: AtomicUsize = AtomicUsize::new(SWEEP_AUTO);

/// Pins the number of pool workers used by experiment sweeps.
///
/// `0` forces fully serial execution (trials run inline on the caller, in
/// spawn order). Binaries call this for `--serial` / `--threads N`; it
/// overrides the `DISTFL_THREADS` environment variable.
pub fn set_sweep_workers(workers: usize) {
    SWEEP_WORKERS.store(workers, Ordering::Relaxed);
}

/// Number of pool workers experiment sweeps will use.
///
/// Resolution order: [`set_sweep_workers`], then `DISTFL_THREADS` (total
/// concurrency, so `workers = threads - 1` because the caller also runs
/// trials), then `available_parallelism() - 1`.
pub fn sweep_workers() -> usize {
    let pinned = SWEEP_WORKERS.load(Ordering::Relaxed);
    if pinned != SWEEP_AUTO {
        return pinned;
    }
    if let Some(v) = std::env::var_os("DISTFL_THREADS") {
        if let Ok(n) = v.to_string_lossy().parse::<usize>() {
            return n.saturating_sub(1);
        }
    }
    std::thread::available_parallelism().map_or(0, |n| n.get().saturating_sub(1))
}

/// The shared worker pool experiment sweeps fan out on.
///
/// With zero workers every task runs inline in spawn order, which is the
/// reference serial schedule; results are always collected in index order,
/// so output is identical either way.
pub fn sweep_pool() -> Arc<WorkerPool> {
    WorkerPool::shared(sweep_workers())
}
