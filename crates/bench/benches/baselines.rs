//! Criterion: sequential baselines and the exact solver.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use distfl_core::{greedy, jv, localsearch, mp};
use distfl_instance::generators::{Euclidean, InstanceGenerator, LineCity, UniformRandom};
use distfl_lp::{exact, line};

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    for &(m, n) in &[(10usize, 100usize), (30, 500)] {
        let inst = UniformRandom::new(m, n).unwrap().generate(1).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| greedy::solve(inst)),
        );
    }
    group.finish();
}

fn bench_metric_baselines(c: &mut Criterion) {
    let inst = Euclidean::new(20, 200).unwrap().generate(2).unwrap();
    c.bench_function("jain_vazirani_20x200", |b| b.iter(|| jv::solve(&inst)));
    c.bench_function("mettu_plaxton_20x200", |b| b.iter(|| mp::solve(&inst)));
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_bnb");
    group.sample_size(20);
    for &m in &[12usize, 16, 20] {
        let inst = UniformRandom::new(m, 60).unwrap().generate(3).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(m), &inst, |b, inst| {
            b.iter(|| exact::solve(inst).unwrap())
        });
    }
    group.finish();
}

fn bench_line_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_dp");
    for &(m, n) in &[(50usize, 1000usize), (200, 5000)] {
        let gen = LineCity::new(m, n).unwrap();
        let layout = gen.layout(3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &layout,
            |b, layout| {
                b.iter(|| {
                    line::solve_line(&layout.facility_pos, &layout.opening, &layout.client_pos)
                })
            },
        );
    }
    group.finish();
}

fn bench_localsearch(c: &mut Criterion) {
    let inst = Euclidean::new(15, 100).unwrap().generate(4).unwrap();
    let (start, _) = greedy::solve(&inst);
    c.bench_function("localsearch_15x100", |b| b.iter(|| localsearch::optimize(&inst, &start, 50)));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_greedy,
    bench_metric_baselines,
    bench_exact,
    bench_line_dp,
    bench_localsearch
}
criterion_main!(benches);
