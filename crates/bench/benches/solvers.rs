//! Criterion: sequential solver hot paths against their retained naive
//! references — the micro-benchmark view of `bench_solvers` / BENCH_2.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use distfl_core::{greedy, jv, localsearch};
use distfl_instance::generators::{InstanceGenerator, LineCity, UniformRandom};

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers_greedy");
    for &(m, n) in &[(10usize, 50usize), (20, 200), (40, 800)] {
        let inst = UniformRandom::new(m, n).unwrap().generate(1).unwrap();
        group.bench_with_input(
            BenchmarkId::new("lazy_heap", format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| greedy::solve_detailed(inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| greedy::solve_detailed_reference(inst)),
        );
    }
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers_local_search");
    for &(m, n) in &[(10usize, 50usize), (20, 200)] {
        let inst = UniformRandom::new(m, n).unwrap().generate(2).unwrap();
        let (start, _) = greedy::solve(&inst);
        group.bench_with_input(
            BenchmarkId::new("cached", format!("{m}x{n}")),
            &(&inst, &start),
            |b, (inst, start)| b.iter(|| localsearch::optimize(inst, start, 4)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{m}x{n}")),
            &(&inst, &start),
            |b, (inst, start)| b.iter(|| localsearch::optimize_reference(inst, start, 4)),
        );
    }
    group.finish();
}

fn bench_jv_ascent(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers_jv_ascent");
    for &(m, n) in &[(10usize, 60usize), (30, 300)] {
        let inst = LineCity::new(m, n).unwrap().generate(3).unwrap();
        group.bench_with_input(
            BenchmarkId::new("event_driven", format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| jv::dual_ascent(inst)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", format!("{m}x{n}")),
            &inst,
            |b, inst| b.iter(|| jv::dual_ascent_reference(inst)),
        );
    }
    group.finish();
}

criterion_group!(solvers, bench_greedy, bench_local_search, bench_jv_ascent);
criterion_main!(solvers);
