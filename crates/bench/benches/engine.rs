//! Criterion: raw simulator round throughput (the substrate's hot path).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use distfl_congest::{Network, NodeLogic, StepCtx, Topology};

/// A node that floods a counter to its neighbors every round.
struct Flood {
    rounds: u32,
    done: bool,
}

impl NodeLogic for Flood {
    type Msg = u64;
    fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
        if ctx.round() < self.rounds {
            ctx.broadcast(u64::from(ctx.round()));
        } else {
            self.done = true;
        }
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_flood");
    for &n in &[100usize, 1000, 5000] {
        let rounds = 10;
        group.throughput(Throughput::Elements((n * 2 * rounds as usize) as u64));
        group.bench_with_input(BenchmarkId::new("ring", n), &n, |b, &n| {
            b.iter(|| {
                let topo = Topology::ring(n).unwrap();
                let nodes = (0..n).map(|_| Flood { rounds, done: false }).collect();
                let mut net = Network::new(topo, nodes, 7).unwrap();
                net.run(rounds + 1).unwrap();
                net.into_transcript()
            });
        });
    }
    for &(l, r) in &[(20usize, 200usize), (50, 500)] {
        let rounds = 5;
        group.throughput(Throughput::Elements((l * r * 2 * rounds as usize) as u64));
        group.bench_with_input(
            BenchmarkId::new("bipartite", format!("{l}x{r}")),
            &(l, r),
            |b, &(l, r)| {
                b.iter(|| {
                    let topo = Topology::complete_bipartite(l, r).unwrap();
                    let nodes = (0..l + r).map(|_| Flood { rounds, done: false }).collect();
                    let mut net = Network::new(topo, nodes, 7).unwrap();
                    net.run(rounds + 1).unwrap();
                    net.into_transcript()
                });
            },
        );
    }
    group.finish();
}

/// Isolates the delivery stage: long runs on a dense bipartite graph where
/// nearly all time is spent moving messages, so sharded delivery, buffer
/// pooling, and sort elision dominate the measurement.
fn bench_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_delivery");
    let (l, r) = (60usize, 400usize);
    let rounds = 20u32;
    let msgs = (l * r * 2) as u64 * u64::from(rounds);
    group.throughput(Throughput::Elements(msgs));
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("dense_bipartite", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let topo = Topology::complete_bipartite(l, r).unwrap();
                    let nodes = (0..l + r).map(|_| Flood { rounds, done: false }).collect();
                    let config = distfl_congest::CongestConfig {
                        threads: (threads > 1).then_some(threads),
                        ..Default::default()
                    };
                    let mut net = Network::with_config(topo, nodes, 7, config).unwrap();
                    net.run(rounds + 1).unwrap();
                    net.transcript().total_messages()
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_threads");
    let n = 4000;
    let rounds = 8;
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::new("grid_flood", threads), &threads, |b, &threads| {
            b.iter(|| {
                let topo = Topology::grid(n / 50, 50).unwrap();
                let nodes = (0..n).map(|_| Flood { rounds, done: false }).collect();
                let config = distfl_congest::CongestConfig {
                    threads: (threads > 1).then_some(threads),
                    ..Default::default()
                };
                let mut net = Network::with_config(topo, nodes, 7, config).unwrap();
                net.run(rounds + 1).unwrap();
                net.into_transcript()
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_flood, bench_parallel_vs_serial, bench_delivery
}
criterion_main!(benches);
