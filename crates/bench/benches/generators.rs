//! Criterion: instance generation throughput (the workload substrate).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use distfl_instance::generators::{
    CdnTrace, Clustered, Euclidean, GridNetwork, InstanceGenerator, PowerLaw, UniformRandom,
};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_20x200");
    let gens: Vec<(&str, Box<dyn InstanceGenerator>)> = vec![
        ("uniform", Box::new(UniformRandom::new(20, 200).unwrap())),
        ("euclidean", Box::new(Euclidean::new(20, 200).unwrap())),
        ("clustered", Box::new(Clustered::new(4, 20, 200).unwrap())),
        ("grid", Box::new(GridNetwork::new(20, 20, 20, 200).unwrap())),
        ("powerlaw", Box::new(PowerLaw::new(20, 200, 1e4).unwrap())),
        ("cdn", Box::new(CdnTrace::new(20, 200).unwrap())),
    ];
    for (name, gen) in &gens {
        group.bench_with_input(BenchmarkId::from_parameter(name), gen, |b, gen| {
            b.iter(|| gen.generate(7).unwrap())
        });
    }
    group.finish();
}

fn bench_text_io(c: &mut Criterion) {
    let inst = UniformRandom::new(20, 200).unwrap().generate(9).unwrap();
    let text = distfl_instance::textio::to_string(&inst);
    c.bench_function("textio_serialize_20x200", |b| {
        b.iter(|| distfl_instance::textio::to_string(&inst))
    });
    c.bench_function("textio_parse_20x200", |b| {
        b.iter(|| distfl_instance::textio::from_str(&text).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_generators, bench_text_io
}
criterion_main!(benches);
