//! Criterion: the distributed algorithms end-to-end (simulation included),
//! across sizes and phase budgets — the cost of regenerating E1's rows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use distfl_core::bucket::{BucketParams, GreedyBucket};
use distfl_core::paydual::{PayDual, PayDualParams};
use distfl_core::round::{distributed_round, DistRoundParams};
use distfl_core::{fraclp, FlAlgorithm};
use distfl_instance::generators::{GridNetwork, InstanceGenerator, UniformRandom};

fn bench_paydual_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("paydual_size");
    for &(m, n) in &[(10usize, 50usize), (20, 200), (40, 800)] {
        let inst = UniformRandom::new(m, n).unwrap().generate(1).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &inst,
            |b, inst| {
                let algo = PayDual::new(PayDualParams::with_phases(8));
                b.iter(|| algo.run(inst, 3).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_paydual_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("paydual_phases");
    let inst = UniformRandom::new(16, 200).unwrap().generate(2).unwrap();
    for &phases in &[2u32, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(phases), &phases, |b, &phases| {
            let algo = PayDual::new(PayDualParams::with_phases(phases));
            b.iter(|| algo.run(&inst, 3).unwrap());
        });
    }
    group.finish();
}

fn bench_bucket(c: &mut Criterion) {
    let inst = UniformRandom::new(16, 200).unwrap().generate(3).unwrap();
    c.bench_function("bucket_6x4_16x200", |b| {
        let algo = GreedyBucket::new(BucketParams::new(6, 4));
        b.iter(|| algo.run(&inst, 3).unwrap());
    });
}

fn bench_rounding(c: &mut Criterion) {
    let inst = GridNetwork::new(16, 16, 12, 150).unwrap().generate(4).unwrap();
    let frac = fraclp::spread_fractional(&inst, 3);
    c.bench_function("distround_grid_12x150", |b| {
        let params = DistRoundParams::for_instance(&inst);
        b.iter(|| distributed_round(&inst, &frac, params, 5).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench_paydual_sizes, bench_paydual_phases, bench_bucket, bench_rounding
}
criterion_main!(benches);
