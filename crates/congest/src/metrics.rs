//! Round and run statistics.
//!
//! The simulator's whole purpose is to *measure* the CONGEST quantities the
//! paper reasons about: number of rounds, number of messages, message sizes,
//! and per-edge congestion. A [`Transcript`] accumulates one [`RoundStats`]
//! per executed round.
//!
//! Engine *performance* telemetry lives in a separate [`EngineProfile`]
//! (one [`StageTimings`] per round): wall-clock stage timings and pool
//! scheduling counters are machine- and timing-dependent, so they must
//! never enter the [`Transcript`], which tests compare for bit-identity
//! across worker counts.

use serde::{Deserialize, Serialize};

/// Statistics for a single executed round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round number (0-based).
    pub round: u32,
    /// Messages successfully delivered this round.
    pub messages: u64,
    /// Messages dropped by fault injection this round.
    pub dropped: u64,
    /// Total delivered bits this round.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Maximum number of messages sent over a single directed edge.
    /// Values above 1 are CONGEST violations (recorded when the duplicate
    /// policy is `Record`).
    pub max_messages_per_edge: u64,
}

/// Aggregated statistics of a complete run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transcript {
    rounds: Vec<RoundStats>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Appends statistics of one executed round.
    pub(crate) fn push(&mut self, stats: RoundStats) {
        self.rounds.push(stats);
    }

    /// Per-round statistics, in execution order.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Number of executed rounds.
    pub fn num_rounds(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Total delivered messages.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Total dropped messages.
    pub fn total_dropped(&self) -> u64 {
        self.rounds.iter().map(|r| r.dropped).sum()
    }

    /// Total delivered bits.
    pub fn total_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.bits).sum()
    }

    /// Largest single message observed, in bits.
    pub fn max_message_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.max_message_bits).max().unwrap_or(0)
    }

    /// Largest per-directed-edge message count observed in any round.
    pub fn max_messages_per_edge(&self) -> u64 {
        self.rounds.iter().map(|r| r.max_messages_per_edge).max().unwrap_or(0)
    }

    /// Whether every round respected the CONGEST discipline: at most one
    /// message per directed edge and every message at most `bit_limit` bits.
    pub fn congest_compliant(&self, bit_limit: u64) -> bool {
        self.max_messages_per_edge() <= 1 && self.max_message_bits() <= bit_limit
    }
}

/// Wall-clock stage timings and pool scheduling counters for one round.
///
/// Collected by the engine on every round and exposed via
/// `Network::profile`. Deliberately **not** part of [`RoundStats`]: two
/// runs that differ only in worker count must produce equal transcripts,
/// and timings/steal counts are nondeterministic by nature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Round number (0-based).
    pub round: u32,
    /// Whether the round took the fused serial fast path (in which case
    /// the whole round is attributed to `step_nanos` and no pool tasks
    /// were dispatched).
    pub fused: bool,
    /// Wall-clock nanoseconds spent in the step stage.
    pub step_nanos: u64,
    /// Wall-clock nanoseconds spent in the delivery stage.
    pub deliver_nanos: u64,
    /// Pool tasks dispatched this round (step chunks + delivery shards).
    pub pool_tasks: u64,
    /// Pool tasks executed by a worker other than the one whose deque
    /// they were pushed to (work stealing in action).
    pub stolen_tasks: u64,
    /// Whether the round failed with an error before completing. Aborted
    /// rows keep whatever stage timings were measured up to the failure
    /// point (a step-stage error leaves `deliver_nanos` at 0 because the
    /// delivery stage never ran, *not* because delivery was free); the
    /// [`EngineProfile`] aggregates skip them.
    pub aborted: bool,
}

/// Per-round engine performance telemetry for one run: one
/// [`StageTimings`] entry per *attempted* round, in execution order.
/// Rounds that failed mid-pipeline are present with
/// [`StageTimings::aborted`] set; the aggregate accessors ignore them so
/// an errored round can never masquerade as a zero-cost delivery.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EngineProfile {
    rounds: Vec<StageTimings>,
}

impl EngineProfile {
    /// Appends one round's timings.
    pub(crate) fn push(&mut self, timings: StageTimings) {
        self.rounds.push(timings);
    }

    /// Per-round timings, in execution order (aborted rounds included).
    pub fn rounds(&self) -> &[StageTimings] {
        &self.rounds
    }

    /// Timings of rounds that ran the full pipeline.
    fn completed(&self) -> impl Iterator<Item = &StageTimings> {
        self.rounds.iter().filter(|t| !t.aborted)
    }

    /// Total wall-clock nanoseconds spent in step stages (fused rounds
    /// count entirely as step time; aborted rounds are excluded).
    pub fn total_step_nanos(&self) -> u64 {
        self.completed().map(|t| t.step_nanos).sum()
    }

    /// Total wall-clock nanoseconds spent in delivery stages (aborted
    /// rounds are excluded).
    pub fn total_deliver_nanos(&self) -> u64 {
        self.completed().map(|t| t.deliver_nanos).sum()
    }

    /// Total pool tasks dispatched across all completed rounds.
    pub fn total_pool_tasks(&self) -> u64 {
        self.completed().map(|t| t.pool_tasks).sum()
    }

    /// Total pool tasks executed by stealing across all completed rounds.
    pub fn total_stolen_tasks(&self) -> u64 {
        self.completed().map(|t| t.stolen_tasks).sum()
    }

    /// Number of completed rounds that took the fused serial fast path.
    pub fn fused_rounds(&self) -> u32 {
        self.completed().filter(|t| t.fused).count() as u32
    }

    /// Number of rounds that failed before completing their pipeline.
    pub fn aborted_rounds(&self) -> u32 {
        self.rounds.iter().filter(|t| t.aborted).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(round: u32, messages: u64, bits: u64, max_msg: u64, per_edge: u64) -> RoundStats {
        RoundStats {
            round,
            messages,
            dropped: 0,
            bits,
            max_message_bits: max_msg,
            max_messages_per_edge: per_edge,
        }
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert_eq!(t.num_rounds(), 0);
        assert_eq!(t.total_messages(), 0);
        assert_eq!(t.total_bits(), 0);
        assert_eq!(t.max_message_bits(), 0);
        assert!(t.congest_compliant(64));
    }

    #[test]
    fn aggregation() {
        let mut t = Transcript::new();
        t.push(stats(0, 10, 640, 64, 1));
        t.push(stats(1, 5, 200, 128, 1));
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(t.total_messages(), 15);
        assert_eq!(t.total_bits(), 840);
        assert_eq!(t.max_message_bits(), 128);
        assert_eq!(t.max_messages_per_edge(), 1);
        assert!(t.congest_compliant(128));
        assert!(!t.congest_compliant(64));
    }

    #[test]
    fn profile_aggregates_per_round_telemetry() {
        let mut p = EngineProfile::default();
        p.push(StageTimings { round: 0, fused: true, step_nanos: 100, ..Default::default() });
        p.push(StageTimings {
            round: 1,
            fused: false,
            step_nanos: 40,
            deliver_nanos: 60,
            pool_tasks: 8,
            stolen_tasks: 3,
            aborted: false,
        });
        assert_eq!(p.rounds().len(), 2);
        assert_eq!(p.total_step_nanos(), 140);
        assert_eq!(p.total_deliver_nanos(), 60);
        assert_eq!(p.total_pool_tasks(), 8);
        assert_eq!(p.total_stolen_tasks(), 3);
        assert_eq!(p.fused_rounds(), 1);
        assert_eq!(p.aborted_rounds(), 0);
    }

    #[test]
    fn aborted_rounds_are_visible_but_excluded_from_aggregates() {
        let mut p = EngineProfile::default();
        p.push(StageTimings { round: 0, fused: true, step_nanos: 100, ..Default::default() });
        p.push(StageTimings {
            round: 1,
            fused: false,
            step_nanos: 50,
            aborted: true,
            ..Default::default()
        });
        assert_eq!(p.rounds().len(), 2, "aborted rows stay in the per-round view");
        assert_eq!(p.aborted_rounds(), 1);
        assert_eq!(p.total_step_nanos(), 100, "aborted step time must not pollute totals");
        assert_eq!(p.total_deliver_nanos(), 0);
        assert_eq!(p.fused_rounds(), 1);
    }

    #[test]
    fn congestion_violation_detected() {
        let mut t = Transcript::new();
        t.push(stats(0, 4, 64, 16, 2));
        assert!(!t.congest_compliant(1024));
        assert_eq!(t.max_messages_per_edge(), 2);
    }
}
