//! Node identity and the per-node protocol logic trait.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::engine::StepCtx;
use crate::message::Payload;

/// Identifier of a node in a [`crate::Network`].
///
/// Ids are dense indices `0..N`; they double as the `O(log N)`-bit unique
/// identifiers the CONGEST model hands to nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Protocol logic executed by one node.
///
/// The engine drives every node once per round via [`NodeLogic::step`]. A
/// node reads its inbox (messages sent to it in the *previous* round),
/// updates local state, and queues outgoing messages through the
/// [`StepCtx`]. When every node reports [`NodeLogic::is_done`], the run
/// stops.
///
/// Implementations must be deterministic given the inbox contents and the
/// context's [`crate::NodeRng`]; the engine guarantees the inbox is sorted
/// by sender id so serial and parallel execution agree bit-for-bit.
pub trait NodeLogic: Send {
    /// Message type exchanged by this protocol.
    type Msg: Payload;

    /// Executes one synchronous round.
    fn step(&mut self, ctx: &mut StepCtx<'_, Self::Msg>);

    /// Whether this node has terminated. Once `true`, [`NodeLogic::step`] is
    /// no longer invoked and the node sends nothing.
    fn is_done(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.raw(), 17);
        assert_eq!(NodeId::from(17u32), id);
        assert_eq!(format!("{id}"), "n17");
        assert_eq!(format!("{id:?}"), "NodeId(17)");
    }

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(5), NodeId::new(5));
    }
}
