//! Message payloads and size accounting.

use bytes::{BufMut, Bytes, BytesMut};

/// A message payload with an accountable wire size.
///
/// The CONGEST model restricts messages to `O(log N)` bits. The simulator
/// does not serialize messages on the hot path (they move by `Clone`), but
/// it *charges* every message its declared [`Payload::size_bits`] and
/// reports the maximum observed size so experiments can verify the model's
/// discipline. Numeric fields of fixed precision are conventionally charged
/// one 64-bit word each, matching the paper's convention that message size
/// scales with the logarithm of the largest coefficient.
pub trait Payload: Clone + Send + Sync + std::fmt::Debug {
    /// Size of this message on the wire, in bits.
    fn size_bits(&self) -> u64;

    /// Optional canonical byte encoding, used by wire-format tests to check
    /// that `size_bits` is an upper bound on an actual encoding.
    ///
    /// The default encoding is empty; protocols that want the cross-check
    /// override this.
    fn encode(&self) -> Bytes {
        Bytes::new()
    }
}

impl Payload for u64 {
    fn size_bits(&self) -> u64 {
        64
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_u64(*self);
        b.freeze()
    }
}

impl Payload for u32 {
    fn size_bits(&self) -> u64 {
        32
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(4);
        b.put_u32(*self);
        b.freeze()
    }
}

impl Payload for f64 {
    fn size_bits(&self) -> u64 {
        64
    }

    fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(8);
        b.put_f64(*self);
        b.freeze()
    }
}

impl Payload for () {
    fn size_bits(&self) -> u64 {
        1
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn size_bits(&self) -> u64 {
        self.0.size_bits() + self.1.size_bits()
    }

    fn encode(&self) -> Bytes {
        let a = self.0.encode();
        let b = self.1.encode();
        let mut out = BytesMut::with_capacity(a.len() + b.len());
        out.put(a);
        out.put(b);
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(7u64.size_bits(), 64);
        assert_eq!(7u32.size_bits(), 32);
        assert_eq!(1.5f64.size_bits(), 64);
        assert_eq!(().size_bits(), 1);
        assert_eq!((1u32, 2u64).size_bits(), 96);
    }

    #[test]
    fn encodings_fit_declared_size() {
        fn check<P: Payload>(p: P) {
            let enc = p.encode();
            assert!((enc.len() as u64) * 8 <= p.size_bits().max(8));
        }
        check(123u64);
        check(123u32);
        check(2.25f64);
        check((9u32, 8u64));
    }

    #[test]
    fn u64_encoding_is_big_endian() {
        let enc = 0x0102_0304_0506_0708u64.encode();
        assert_eq!(&enc[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
