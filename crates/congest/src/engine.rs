//! The synchronous round engine.
//!
//! Each round runs a two-stage pipeline, both stages parallel when
//! [`CongestConfig::threads`] asks for it:
//!
//! 1. **Step** — nodes are partitioned into contiguous index ranges, one
//!    per worker; each worker steps its nodes against their current
//!    inboxes, filling per-node *pooled* outboxes (recycled across rounds,
//!    no allocation in steady state). Outboxes produced in ascending
//!    destination order — the common case, since node logic iterates
//!    `ctx.neighbors()` in order — are detected in `O(len)` and the
//!    per-node sort is elided.
//! 2. **Deliver** — destination ids are partitioned into contiguous
//!    ranges, one per shard; each shard scans *all* outboxes and
//!    delivers exactly the messages addressed into its range, accumulating
//!    a private [`RoundStats`] that is merged deterministically by shard
//!    index. Because every `(src, dst)` pair lands in exactly one shard
//!    and sources are scanned in ascending order, duplicate detection, the
//!    sorted-inbox invariant, fault drops, and crash semantics are
//!    bit-identical to serial execution.
//!
//! Both stages execute on a persistent work-stealing
//! [`WorkerPool`](distfl_pool::WorkerPool) (long-lived workers,
//! per-worker deques with stealing, park/unpark idling — the
//! `distfl-pool` crate), so dispatching a parallel stage costs a queue
//! push and a condvar wake instead of the per-round `std::thread::scope`
//! spawn-and-join the engine used to pay. The worker count is the
//! *minimum* of the requested `threads` and the pool's parallelism (its
//! workers plus the submitting thread, which always helps drain its own
//! scope). Parallelism is additionally gated on the previous round's
//! *message volume*: on sparse topologies (a ring moves one message per
//! node per round) even pooled dispatch exceeds the work being split.
//! Only when the last round moved at least [`PARALLEL_MIN_VOLUME`]
//! messages (delivered + dropped) — or when
//! [`CongestConfig::parallel_min_volume`] overrides that default — does
//! the engine fan out. When the effective worker count is 1 the
//! engine takes a **fused** fast path instead: each node's outbox is
//! delivered immediately after the node steps, while it is still hot in
//! cache, and messages are *moved* (not cloned) into the inboxes. The
//! fused path visits sources in the same ascending order as the staged
//! pipeline, so inbox contents, statistics, error selection, and the
//! recorded event stream are all bit-identical.
//!
//! Inboxes are double-buffered (`inboxes`/`next_inboxes`) and all buffer
//! sets keep their capacity across rounds, so a steady-state round
//! performs no heap allocation. When [`CongestConfig::record_events`] is
//! set, delivery keeps the serial `(src, dst)` event order (fused path,
//! or a single shard under threads); the recorder is consulted once per
//! round, never per message.
//!
//! Per-round wall-clock stage timings and pool steal counts are collected
//! in an [`EngineProfile`] ([`Network::profile`]) — deliberately *outside*
//! the [`Transcript`], which must stay bit-identical across worker counts.

use crate::error::CongestError;
use crate::fault::FaultPlan;
use crate::message::Payload;
use crate::metrics::{EngineProfile, RoundStats, StageTimings, Transcript};
use crate::node::{NodeId, NodeLogic};
use crate::rng::NodeRng;
use crate::topology::Topology;
use crate::trace::{Event, EventKind, Recorder};
use distfl_pool::{ScopeStats, WorkerPool};
use std::sync::Arc;
use std::time::Instant;

/// What to do when a node sends two messages over the same directed edge in
/// one round (a CONGEST violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Fail the run with [`CongestError::EdgeCongestion`] (the default:
    /// correct algorithms never violate the discipline).
    #[default]
    Reject,
    /// Deliver everything but record the violation in the transcript's
    /// `max_messages_per_edge`, so experiments can report it.
    Record,
}

/// Default minimum number of messages the previous round must have moved
/// (delivered + dropped) for the staged parallel pipeline to engage.
///
/// Below this volume stage-dispatch overhead outweighs the split work and
/// the fused serial path is faster. The threshold was 16 384 while the
/// engine spawned scoped threads every round; with the persistent
/// [`WorkerPool`] a stage dispatch is a queue push plus a condvar wake —
/// the BENCH_3.json dispatch microbench measures a fork/join batch at
/// 25–33x cheaper than a scoped spawn-and-join (about 0.8–2.8 µs vs
/// 20–92 µs for 2–8 tasks) — so the break-even volume drops accordingly
/// and medium-traffic rounds (for example sparse PayDual phases at a few
/// thousand messages) now fan out.
/// The very first round always runs fused — no volume is known yet.
/// [`CongestConfig::parallel_min_volume`] overrides this default;
/// [`CongestConfig::force_shards`] bypasses the gate entirely, keeping
/// the staged path deterministically testable.
pub const PARALLEL_MIN_VOLUME: u64 = 2_048;

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct CongestConfig {
    /// Handling of one-message-per-edge violations.
    pub duplicate_policy: DuplicatePolicy,
    /// Number of worker threads for parallel stepping *and* sharded
    /// delivery; `None` or `Some(1)` runs serially. Results are
    /// bit-identical either way. The effective worker count is capped at
    /// the worker pool's parallelism (its workers plus the submitting
    /// thread); small networks (under `2 * threads` nodes) and
    /// low-traffic rounds (previous round moved fewer than
    /// [`PARALLEL_MIN_VOLUME`] messages) run serially regardless.
    pub threads: Option<usize>,
    /// The worker pool both pipeline stages dispatch to. `None` uses the
    /// process-wide [`WorkerPool::global`] pool (sized from
    /// `DISTFL_POOL_THREADS` or the machine's parallelism). Supplying a
    /// pool explicitly lets tests and benches exercise any worker count
    /// on any machine; results are bit-identical for every choice.
    pub pool: Option<Arc<WorkerPool>>,
    /// Overrides the [`PARALLEL_MIN_VOLUME`] message-volume gate.
    /// `Some(0)` parallelizes every round regardless of traffic (tests);
    /// `Some(u64::MAX)` pins the engine to the fused serial path.
    pub parallel_min_volume: Option<u64>,
    /// Overrides the delivery shard count independently of the worker
    /// count; shards beyond the available workers execute inline. Results
    /// are bit-identical for any value. Exists so the sharded merge path
    /// can be exercised deterministically on any machine (tests); leave
    /// `None` to derive shards from `threads`.
    pub force_shards: Option<usize>,
    /// Optional deterministic message-drop plan.
    pub fault: Option<FaultPlan>,
    /// Crash-stop schedule: `(node, round)` pairs; from `round` on, the
    /// node neither steps nor sends (crash-stop failures). Crashed nodes
    /// count as done for termination purposes.
    pub crashes: Vec<(NodeId, u32)>,
    /// Optional hard per-message bit budget; a message declaring more
    /// bits fails the run with [`CongestError::MessageTooLarge`]. `None`
    /// records sizes in the transcript without enforcing.
    pub max_message_bits: Option<u64>,
    /// Whether to record per-message [`Event`]s (slow; for debugging;
    /// forces single-shard delivery so events keep their serial order).
    pub record_events: bool,
}

/// Per-round context handed to [`NodeLogic::step`].
///
/// Provides the node's identity, neighbors, inbox, a deterministic random
/// stream, and the send interface.
#[derive(Debug)]
pub struct StepCtx<'a, M: Payload> {
    id: NodeId,
    round: u32,
    neighbors: &'a [NodeId],
    inbox: &'a [(NodeId, M)],
    rng: NodeRng,
    outbox: &'a mut Vec<(NodeId, M)>,
    send_error: Option<CongestError>,
}

impl<'a, M: Payload> StepCtx<'a, M> {
    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// This node's sorted neighbor list.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }

    /// This node's degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages received this round as `(sender, message)` pairs, sorted by
    /// sender id.
    #[inline]
    pub fn inbox(&self) -> &'a [(NodeId, M)] {
        self.inbox
    }

    /// The message from `src` this round, if any (and if unique).
    pub fn from(&self, src: NodeId) -> Option<&'a M> {
        let pos = self.inbox.partition_point(|(s, _)| *s < src);
        match self.inbox.get(pos) {
            Some((s, m)) if *s == src => Some(m),
            _ => None,
        }
    }

    /// This node's deterministic random stream for this round.
    ///
    /// Streams are derived from `(master seed, node id, round)`, so parallel
    /// and serial execution observe identical randomness.
    #[inline]
    pub fn rng(&mut self) -> &mut NodeRng {
        &mut self.rng
    }

    /// Queues `msg` for delivery to neighbor `dst` next round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NotNeighbor`] if `dst` is not adjacent; the
    /// violation is also latched so the engine fails the round even if the
    /// caller ignores the error.
    pub fn send(&mut self, dst: NodeId, msg: M) -> Result<(), CongestError> {
        if self.neighbors.binary_search(&dst).is_err() {
            let err = CongestError::NotNeighbor { from: self.id, to: dst };
            self.send_error.get_or_insert(err.clone());
            return Err(err);
        }
        self.outbox.push((dst, msg));
        Ok(())
    }

    /// Sends a clone of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M) {
        for &nb in self.neighbors {
            self.outbox.push((nb, msg.clone()));
        }
    }
}

/// Partial statistics and first error of one delivery shard.
#[derive(Debug, Default)]
struct ShardOutcome {
    stats: RoundStats,
    /// First error in this shard's scan order, with its `(src, position)`
    /// coordinate in the serial scan so shards merge deterministically.
    error: Option<(u32, usize, CongestError)>,
}

/// Where per-message trace events go; monomorphized so the disabled case
/// costs nothing inside the delivery loop.
trait DeliverySink {
    fn dropped(&mut self, round: u32, src: NodeId, dst: NodeId);
    fn delivered(&mut self, round: u32, src: NodeId, dst: NodeId);
}

/// Sink that records nothing (the fast path).
struct NoTrace;

impl DeliverySink for NoTrace {
    #[inline]
    fn dropped(&mut self, _round: u32, _src: NodeId, _dst: NodeId) {}
    #[inline]
    fn delivered(&mut self, _round: u32, _src: NodeId, _dst: NodeId) {}
}

/// Sink that appends [`Event`]s to the recorder's buffer.
struct TraceInto<'a>(&'a mut Vec<Event>);

impl DeliverySink for TraceInto<'_> {
    fn dropped(&mut self, round: u32, src: NodeId, dst: NodeId) {
        self.0.push(Event { round, kind: EventKind::Drop, src, dst });
    }
    fn delivered(&mut self, round: u32, src: NodeId, dst: NodeId) {
        self.0.push(Event { round, kind: EventKind::Deliver, src, dst });
    }
}

/// A synchronous CONGEST network executing one [`NodeLogic`] per node.
///
/// See the [crate documentation](crate) for a complete example.
pub struct Network<L: NodeLogic> {
    topo: Topology,
    nodes: Vec<L>,
    config: CongestConfig,
    master_seed: u64,
    round: u32,
    /// Inboxes read by the current round's step stage.
    inboxes: Vec<Vec<(NodeId, L::Msg)>>,
    /// Inboxes written by the current round's delivery stage; swapped with
    /// `inboxes` at the end of the round (double buffering).
    next_inboxes: Vec<Vec<(NodeId, L::Msg)>>,
    /// Per-node outboxes, pooled across rounds.
    outboxes: Vec<Vec<(NodeId, L::Msg)>>,
    /// Per-node send-error slots, pooled across rounds.
    step_errors: Vec<Option<CongestError>>,
    /// Round from which each node is crashed (`u32::MAX` = never).
    crash_round: Vec<u32>,
    /// The persistent worker pool both stages dispatch to.
    pool: Arc<WorkerPool>,
    /// The pool's parallelism (workers + submitting thread), cached at
    /// construction; caps the effective worker count.
    parallelism: usize,
    /// Messages moved (delivered + dropped) by the previous round; gates
    /// the parallel pipeline so sparse topologies stay fused.
    prev_messages: u64,
    transcript: Transcript,
    profile: EngineProfile,
    recorder: Recorder,
}

impl<L: NodeLogic> std::fmt::Debug for Network<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("num_nodes", &self.nodes.len())
            .field("round", &self.round)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<L: NodeLogic> Network<L> {
    /// Creates a network with default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCountMismatch`] if `nodes.len()` differs
    /// from the topology's node count.
    pub fn new(topo: Topology, nodes: Vec<L>, master_seed: u64) -> Result<Self, CongestError> {
        Self::with_config(topo, nodes, master_seed, CongestConfig::default())
    }

    /// Creates a network with an explicit [`CongestConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCountMismatch`] if `nodes.len()` differs
    /// from the topology's node count.
    pub fn with_config(
        topo: Topology,
        nodes: Vec<L>,
        master_seed: u64,
        config: CongestConfig,
    ) -> Result<Self, CongestError> {
        if topo.num_nodes() != nodes.len() {
            return Err(CongestError::NodeCountMismatch {
                topology: topo.num_nodes(),
                logics: nodes.len(),
            });
        }
        let n = nodes.len();
        let mut crash_round = vec![u32::MAX; n];
        for &(id, r) in &config.crashes {
            if let Some(slot) = crash_round.get_mut(id.index()) {
                *slot = (*slot).min(r);
            }
        }
        let recorder =
            if config.record_events { Recorder::enabled() } else { Recorder::disabled() };
        let pool = config.pool.clone().unwrap_or_else(WorkerPool::global);
        let parallelism = pool.parallelism();
        Ok(Network {
            topo,
            nodes,
            config,
            master_seed,
            round: 0,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            next_inboxes: (0..n).map(|_| Vec::new()).collect(),
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            step_errors: (0..n).map(|_| None).collect(),
            crash_round,
            pool,
            parallelism,
            prev_messages: 0,
            transcript: Transcript::new(),
            profile: EngineProfile::default(),
            recorder,
        })
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All node logics, indexed by node id.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// The logic of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &L {
        &self.nodes[id.index()]
    }

    /// Consumes the network, returning the node logics.
    pub fn into_nodes(self) -> Vec<L> {
        self.nodes
    }

    /// The statistics accumulated so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Consumes the network, returning the accumulated transcript.
    pub fn into_transcript(self) -> Transcript {
        self.transcript
    }

    /// Consumes the network, returning node logics and transcript together
    /// (for callers that need to keep both without cloning either).
    pub fn into_parts(self) -> (Vec<L>, Transcript) {
        (self.nodes, self.transcript)
    }

    /// The event recorder (empty unless `record_events` was set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Per-round stage timings and pool scheduling counters accumulated so
    /// far. Observational only: timings are machine-dependent and steal
    /// counts are racy by nature, which is exactly why they live here and
    /// not in the (bit-identical, equality-compared) [`Transcript`].
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// The next round to execute (0-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether node `index` has crashed by round `round`.
    #[inline]
    fn is_crashed(&self, index: usize, round: u32) -> bool {
        self.crash_round[index] <= round
    }

    /// Whether every node reports done (crashed nodes count as done).
    pub fn all_done(&self) -> bool {
        let round = self.round;
        self.nodes.iter().enumerate().all(|(i, l)| l.is_done() || self.is_crashed(i, round))
    }

    /// The number of concurrent lanes both pipeline stages use this round:
    /// the requested thread count capped at the pool's parallelism, and
    /// forced to 1 when the previous round's message volume is too small
    /// to amortize even pooled stage dispatch (BENCH_1.json showed sparse
    /// rings *losing* throughput under per-round spawns; BENCH_3.json
    /// re-measures the break-even for the persistent pool).
    fn worker_count(&self) -> usize {
        let threads = self.config.threads.unwrap_or(1).max(1).min(self.parallelism);
        let gate = self.config.parallel_min_volume.unwrap_or(PARALLEL_MIN_VOLUME);
        if threads <= 1 || self.nodes.len() < 2 * threads || self.prev_messages < gate {
            1
        } else {
            threads
        }
    }

    /// Executes one synchronous round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NotNeighbor`] if any node addressed a
    /// non-neighbor, or [`CongestError::EdgeCongestion`] under
    /// [`DuplicatePolicy::Reject`]. After an error the network's message
    /// buffers are in an unspecified (but memory-safe) state; discard it.
    pub fn step(&mut self) -> Result<RoundStats, CongestError> {
        let round = self.round;
        let workers = self.worker_count();
        let shards = self.config.force_shards.unwrap_or(workers).max(1);
        // One relaxed atomic load per round is the entire disabled-tracing
        // cost; the span emission below reuses the stage timings the
        // profile measures anyway and never touches algorithm state.
        let round_started = distfl_obs::enabled().then(Instant::now);

        let stats = if workers <= 1 && shards <= 1 {
            let started = Instant::now();
            let stats = self.step_round_fused(round);
            self.profile.push(StageTimings {
                round,
                fused: true,
                step_nanos: started.elapsed().as_nanos() as u64,
                deliver_nanos: 0,
                pool_tasks: 0,
                stolen_tasks: 0,
                aborted: stats.is_err(),
            });
            stats
        } else {
            self.step_round_staged(round, workers, shards)
        };
        let stats = match stats {
            Ok(stats) => stats,
            Err(err) => {
                // Leave no half-delivered messages behind.
                for ib in &mut self.next_inboxes {
                    ib.clear();
                }
                return Err(err);
            }
        };

        std::mem::swap(&mut self.inboxes, &mut self.next_inboxes);
        for ib in &mut self.next_inboxes {
            ib.clear();
        }

        self.prev_messages = stats.messages + stats.dropped;
        self.transcript.push(stats);
        self.round += 1;
        if let Some(started) = round_started {
            self.record_round_span(round, started, &stats);
        }
        Ok(stats)
    }

    /// Emits the round's trace spans and bumps the engine counters from
    /// the stage timings already collected in the profile. Only called
    /// when tracing was enabled at the top of the round; kept out of
    /// `step`'s instruction stream so the disabled path stays lean.
    #[cold]
    #[inline(never)]
    fn record_round_span(&self, round: u32, started: Instant, stats: &RoundStats) {
        let counters = engine_counters();
        counters.rounds.incr();
        counters.messages.add(stats.messages);
        counters.dropped.add(stats.dropped);
        let arg = Some(u64::from(round));
        distfl_obs::complete("engine", "round", started, started.elapsed().as_nanos() as u64, arg);
        if let Some(t) = self.profile.rounds().last().filter(|t| t.round == round) {
            counters.pool_tasks.add(t.pool_tasks);
            counters.stolen_tasks.add(t.stolen_tasks);
            if t.fused {
                distfl_obs::complete("engine", "stage.fused", started, t.step_nanos, arg);
            } else {
                distfl_obs::complete("engine", "stage.step", started, t.step_nanos, arg);
                let deliver_started = started
                    .checked_add(std::time::Duration::from_nanos(t.step_nanos))
                    .unwrap_or(started);
                distfl_obs::complete(
                    "engine",
                    "stage.deliver",
                    deliver_started,
                    t.deliver_nanos,
                    arg,
                );
            }
        }
    }

    /// The staged pipeline: step every node, surface the first step error
    /// by node index, then deliver in shards.
    fn step_round_staged(
        &mut self,
        round: u32,
        workers: usize,
        shards: usize,
    ) -> Result<RoundStats, CongestError> {
        let started = Instant::now();
        let step_scope = self.step_stage(round, workers);
        let mut timings = StageTimings {
            round,
            fused: false,
            step_nanos: started.elapsed().as_nanos() as u64,
            deliver_nanos: 0,
            pool_tasks: step_scope.tasks,
            stolen_tasks: step_scope.stolen,
            aborted: false,
        };
        for slot in &mut self.step_errors {
            if let Some(err) = slot.take() {
                // The delivery stage never ran: record the row as aborted
                // so its zeroed `deliver_nanos` cannot read as a measured
                // zero-cost delivery.
                timings.aborted = true;
                self.profile.push(timings);
                return Err(err);
            }
        }
        let started = Instant::now();
        let delivered = self.deliver_stage(round, shards, workers);
        timings.deliver_nanos = started.elapsed().as_nanos() as u64;
        let result = delivered.map(|(stats, deliver_scope)| {
            timings.pool_tasks += deliver_scope.tasks;
            timings.stolen_tasks += deliver_scope.stolen;
            stats
        });
        timings.aborted = result.is_err();
        self.profile.push(timings);
        result
    }

    /// The fused serial fast path: each node's outbox is delivered right
    /// after the node steps, while it is hot in cache, and messages are
    /// moved (not cloned) into the inboxes. Sources are visited in the
    /// same ascending order as the staged pipeline, so inbox contents,
    /// stats, error selection (step errors by node index first, then the
    /// first delivery error in scan order), and the event stream are
    /// bit-identical to staged execution.
    fn step_round_fused(&mut self, round: u32) -> Result<RoundStats, CongestError> {
        // The recorder branch is resolved here, once per round; the inner
        // loops are monomorphized on the sink.
        if let Recorder::On(events) = &mut self.recorder {
            fused_round(
                &self.topo,
                &mut self.nodes,
                &self.inboxes,
                &mut self.next_inboxes,
                &mut self.outboxes,
                &self.crash_round,
                self.master_seed,
                round,
                &self.config,
                &mut TraceInto(events),
            )
        } else {
            fused_round(
                &self.topo,
                &mut self.nodes,
                &self.inboxes,
                &mut self.next_inboxes,
                &mut self.outboxes,
                &self.crash_round,
                self.master_seed,
                round,
                &self.config,
                &mut NoTrace,
            )
        }
    }

    /// Stage 1: steps every live node, filling the pooled outboxes (sorted
    /// by destination) and the per-node error slots. Parallel execution
    /// dispatches one task per contiguous node chunk to the worker pool.
    fn step_stage(&mut self, round: u32, workers: usize) -> ScopeStats {
        let n = self.nodes.len();
        let topo = &self.topo;
        let seed = self.master_seed;
        let crash_round = &self.crash_round;
        if workers <= 1 {
            for (index, node) in self.nodes.iter_mut().enumerate() {
                step_into(
                    topo,
                    node,
                    index,
                    &self.inboxes[index],
                    &mut self.outboxes[index],
                    &mut self.step_errors[index],
                    crash_round[index] <= round,
                    round,
                    seed,
                );
            }
            return ScopeStats::default();
        }
        let chunk = n.div_ceil(workers);
        let node_chunks = self.nodes.chunks_mut(chunk);
        let inbox_chunks = self.inboxes.chunks(chunk);
        let outbox_chunks = self.outboxes.chunks_mut(chunk);
        let error_chunks = self.step_errors.chunks_mut(chunk);
        self.pool.scope(|scope| {
            for (chunk_index, (((nodes, inboxes), outboxes), errors)) in
                node_chunks.zip(inbox_chunks).zip(outbox_chunks).zip(error_chunks).enumerate()
            {
                let base = chunk_index * chunk;
                scope.spawn(move || {
                    for (offset, node) in nodes.iter_mut().enumerate() {
                        let index = base + offset;
                        step_into(
                            topo,
                            node,
                            index,
                            &inboxes[offset],
                            &mut outboxes[offset],
                            &mut errors[offset],
                            crash_round[index] <= round,
                            round,
                            seed,
                        );
                    }
                });
            }
        })
    }

    /// Stage 2: delivers every outbox message into `next_inboxes`,
    /// sharded by destination range. Shards run as pool tasks when more
    /// than one worker is available, inline otherwise.
    fn deliver_stage(
        &mut self,
        round: u32,
        shards: usize,
        workers: usize,
    ) -> Result<(RoundStats, ScopeStats), CongestError> {
        let n = self.nodes.len();
        let policy = self.config.duplicate_policy;
        let fault = self.config.fault;
        let max_bits = self.config.max_message_bits;
        let outboxes = &self.outboxes;

        // Recording forces a single shard so events keep serial order; the
        // recorder branch is taken once per round, not per message.
        if let Recorder::On(events) = &mut self.recorder {
            let outcome = deliver_shard(
                outboxes,
                &mut self.next_inboxes,
                0,
                round,
                policy,
                fault.as_ref(),
                max_bits,
                &mut TraceInto(events),
            );
            let stats = merge_outcomes(std::iter::once(outcome), round)?;
            return Ok((stats, ScopeStats::default()));
        }

        let chunk = n.div_ceil(shards.min(n).max(1));
        if workers <= 1 {
            // A single lane pays nothing for dispatch: run the shards
            // inline. Same shard partition, same merge, no pool.
            let outcomes =
                self.next_inboxes.chunks_mut(chunk).enumerate().map(|(shard, inbox_chunk)| {
                    deliver_shard(
                        outboxes,
                        inbox_chunk,
                        shard * chunk,
                        round,
                        policy,
                        fault.as_ref(),
                        max_bits,
                        &mut NoTrace,
                    )
                });
            let stats = merge_outcomes(outcomes, round)?;
            return Ok((stats, ScopeStats::default()));
        }

        // One pool task per shard; every task writes its own pre-assigned
        // slot, so the merge below visits outcomes in shard order no
        // matter which worker ran (or stole) which shard.
        let (outcomes, scope_stats) =
            self.pool.map_chunks(&mut self.next_inboxes, chunk, |shard, inbox_chunk| {
                deliver_shard(
                    outboxes,
                    inbox_chunk,
                    shard * chunk,
                    round,
                    policy,
                    fault.as_ref(),
                    max_bits,
                    &mut NoTrace,
                )
            });
        let stats = merge_outcomes(outcomes.into_iter(), round)?;
        Ok((stats, scope_stats))
    }

    /// Runs rounds until every node is done or `max_rounds` is reached.
    ///
    /// Returns a reference to the accumulated transcript on success; use
    /// [`Network::transcript`], [`Network::into_transcript`], or
    /// [`Network::into_parts`] to keep it around without an O(rounds) copy.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors and returns
    /// [`CongestError::RoundLimit`] if the protocol does not terminate in
    /// `max_rounds` rounds.
    pub fn run(&mut self, max_rounds: u32) -> Result<&Transcript, CongestError> {
        while !self.all_done() {
            if self.round >= max_rounds {
                let pending = self.nodes.iter().filter(|l| !l.is_done()).count();
                return Err(CongestError::RoundLimit { limit: max_rounds, pending });
            }
            self.step()?;
        }
        Ok(&self.transcript)
    }
}

/// One fused round: step node, deliver its outbox immediately (moving
/// messages), repeat in ascending node order. See
/// [`Network::step_round_fused`] for the equivalence argument.
#[allow(clippy::too_many_arguments)]
fn fused_round<L: NodeLogic>(
    topo: &Topology,
    nodes: &mut [L],
    inboxes: &[Vec<(NodeId, L::Msg)>],
    next_inboxes: &mut [Vec<(NodeId, L::Msg)>],
    outboxes: &mut [Vec<(NodeId, L::Msg)>],
    crash_round: &[u32],
    master_seed: u64,
    round: u32,
    config: &CongestConfig,
    sink: &mut impl DeliverySink,
) -> Result<RoundStats, CongestError> {
    let policy = config.duplicate_policy;
    let fault = config.fault.as_ref();
    let max_bits = config.max_message_bits;
    let mut stats = RoundStats { round, ..RoundStats::default() };
    let mut step_error: Option<CongestError> = None;
    let mut deliver_error: Option<CongestError> = None;

    for (index, node) in nodes.iter_mut().enumerate() {
        let mut slot = None;
        step_into(
            topo,
            node,
            index,
            &inboxes[index],
            &mut outboxes[index],
            &mut slot,
            crash_round[index] <= round,
            round,
            master_seed,
        );
        if let Some(err) = slot {
            // Keep stepping the remaining nodes (the staged pipeline steps
            // everyone before failing the round), but deliver nothing more.
            step_error.get_or_insert(err);
            continue;
        }
        if step_error.is_some() || deliver_error.is_some() {
            continue;
        }
        let src = NodeId::new(index as u32);
        let mut run_dst: Option<NodeId> = None;
        let mut run_len: u64 = 0;
        for (dst, msg) in outboxes[index].drain(..) {
            if run_dst == Some(dst) {
                run_len += 1;
            } else {
                run_dst = Some(dst);
                run_len = 1;
            }
            if run_len > 1 && policy == DuplicatePolicy::Reject {
                deliver_error = Some(CongestError::EdgeCongestion { from: src, to: dst, round });
                break;
            }
            stats.max_messages_per_edge = stats.max_messages_per_edge.max(run_len);
            if fault.is_some_and(|f| f.drops(round, src, dst)) {
                stats.dropped += 1;
                sink.dropped(round, src, dst);
                continue;
            }
            let bits = msg.size_bits();
            if let Some(limit) = max_bits {
                if bits > limit {
                    deliver_error =
                        Some(CongestError::MessageTooLarge { from: src, to: dst, bits, limit });
                    break;
                }
            }
            stats.messages += 1;
            stats.bits += bits;
            stats.max_message_bits = stats.max_message_bits.max(bits);
            sink.delivered(round, src, dst);
            next_inboxes[dst.index()].push((src, msg));
        }
    }
    if let Some(err) = step_error {
        return Err(err);
    }
    if let Some(err) = deliver_error {
        return Err(err);
    }
    debug_assert!(next_inboxes.iter().all(|ib| ib.is_sorted_by_key(|(s, _)| *s)));
    Ok(stats)
}

/// Cached handles into the obs metrics registry; looked up once per
/// process so the per-round cost is a handful of relaxed adds.
struct EngineCounters {
    rounds: distfl_obs::Counter,
    messages: distfl_obs::Counter,
    dropped: distfl_obs::Counter,
    pool_tasks: distfl_obs::Counter,
    stolen_tasks: distfl_obs::Counter,
}

fn engine_counters() -> &'static EngineCounters {
    static COUNTERS: std::sync::OnceLock<EngineCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| EngineCounters {
        rounds: distfl_obs::counter("engine.rounds"),
        messages: distfl_obs::counter("engine.messages"),
        dropped: distfl_obs::counter("engine.dropped_messages"),
        pool_tasks: distfl_obs::counter("engine.pool_tasks"),
        stolen_tasks: distfl_obs::counter("engine.stolen_tasks"),
    })
}

/// Steps one node into its pooled outbox, leaving the outbox sorted by
/// destination. Crashed and done nodes produce an empty outbox.
///
/// Crate-visible: the discrete-event simulator ([`crate::sim`]) steps
/// nodes through this exact function, so local computation — RNG stream,
/// outbox order, error latching — is bit-identical to the engine by
/// construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_into<L: NodeLogic>(
    topo: &Topology,
    node: &mut L,
    index: usize,
    inbox: &[(NodeId, L::Msg)],
    outbox: &mut Vec<(NodeId, L::Msg)>,
    error: &mut Option<CongestError>,
    crashed: bool,
    round: u32,
    master_seed: u64,
) {
    outbox.clear();
    *error = None;
    if crashed || node.is_done() {
        return;
    }
    let id = NodeId::new(index as u32);
    let mut ctx = StepCtx {
        id,
        round,
        neighbors: topo.neighbors(id),
        inbox,
        rng: NodeRng::derive(master_seed, id.raw(), round),
        outbox,
        send_error: None,
    };
    node.step(&mut ctx);
    *error = ctx.send_error;
    // Sort elision: node logic usually sends in neighbor order, so the
    // outbox is already ascending; detect that in O(len) and skip the
    // (stable) sort that delivery relies on.
    if !outbox.is_sorted_by_key(|(dst, _)| *dst) {
        outbox.sort_by_key(|(dst, _)| *dst);
    }
}

/// Delivers all messages addressed to ids `[lo, lo + inbox_chunk.len())`,
/// scanning every outbox in ascending source order.
///
/// Accounting (duplicate runs, fault drops, size budget) replicates the
/// serial scan exactly: every `(src, dst)` pair lands in exactly one shard
/// and outboxes are sorted by destination, so duplicate runs never
/// straddle shard boundaries, and the first error in `(src, position)`
/// order within a shard is that shard's minimum.
#[allow(clippy::too_many_arguments)]
fn deliver_shard<M: Payload>(
    outboxes: &[Vec<(NodeId, M)>],
    inbox_chunk: &mut [Vec<(NodeId, M)>],
    lo: usize,
    round: u32,
    policy: DuplicatePolicy,
    fault: Option<&FaultPlan>,
    max_bits: Option<u64>,
    sink: &mut impl DeliverySink,
) -> ShardOutcome {
    let hi = lo + inbox_chunk.len();
    let covers_tail = hi >= outboxes.len();
    let mut outcome = ShardOutcome::default();
    let stats = &mut outcome.stats;
    for (src_index, outbox) in outboxes.iter().enumerate() {
        if outbox.is_empty() {
            continue;
        }
        let src = NodeId::new(src_index as u32);
        // Two binary searches bound the exact in-range subslice, keeping
        // the per-message loop free of range checks.
        let start = outbox.partition_point(|(dst, _)| dst.index() < lo);
        let end = if covers_tail {
            outbox.len()
        } else {
            start + outbox[start..].partition_point(|(dst, _)| dst.index() < hi)
        };
        let mut run_dst: Option<NodeId> = None;
        let mut run_len: u64 = 0;
        for (pos, (dst, msg)) in outbox[..end].iter().enumerate().skip(start) {
            let dst = *dst;
            if run_dst == Some(dst) {
                run_len += 1;
            } else {
                run_dst = Some(dst);
                run_len = 1;
            }
            if run_len > 1 && policy == DuplicatePolicy::Reject {
                outcome.error = Some((
                    src.raw(),
                    pos,
                    CongestError::EdgeCongestion { from: src, to: dst, round },
                ));
                return outcome;
            }
            stats.max_messages_per_edge = stats.max_messages_per_edge.max(run_len);
            if fault.is_some_and(|f| f.drops(round, src, dst)) {
                stats.dropped += 1;
                sink.dropped(round, src, dst);
                continue;
            }
            let bits = msg.size_bits();
            if let Some(limit) = max_bits {
                if bits > limit {
                    outcome.error = Some((
                        src.raw(),
                        pos,
                        CongestError::MessageTooLarge { from: src, to: dst, bits, limit },
                    ));
                    return outcome;
                }
            }
            stats.messages += 1;
            stats.bits += bits;
            stats.max_message_bits = stats.max_message_bits.max(bits);
            sink.delivered(round, src, dst);
            inbox_chunk[dst.index() - lo].push((src, msg.clone()));
        }
    }
    debug_assert!(inbox_chunk.iter().all(|ib| ib.is_sorted_by_key(|(s, _)| *s)));
    outcome
}

/// Folds shard outcomes into one [`RoundStats`], surfacing the error the
/// serial scan would have hit first (minimal `(src, position)`).
fn merge_outcomes(
    outcomes: impl Iterator<Item = ShardOutcome>,
    round: u32,
) -> Result<RoundStats, CongestError> {
    let mut stats = RoundStats { round, ..RoundStats::default() };
    let mut first_error: Option<(u32, usize, CongestError)> = None;
    for outcome in outcomes {
        stats.messages += outcome.stats.messages;
        stats.dropped += outcome.stats.dropped;
        stats.bits += outcome.stats.bits;
        stats.max_message_bits = stats.max_message_bits.max(outcome.stats.max_message_bits);
        stats.max_messages_per_edge =
            stats.max_messages_per_edge.max(outcome.stats.max_messages_per_edge);
        if let Some((src, pos, err)) = outcome.error {
            let better = first_error.as_ref().is_none_or(|(s, p, _)| (src, pos) < (*s, *p));
            if better {
                first_error = Some((src, pos, err));
            }
        }
    }
    match first_error {
        Some((_, _, err)) => Err(err),
        None => Ok(stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods the node's id for `ttl` rounds, summing everything heard.
    struct Flood {
        ttl: u32,
        heard: u64,
        done: bool,
    }

    impl NodeLogic for Flood {
        type Msg = u64;
        fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
            self.heard += ctx.inbox().iter().map(|(_, m)| *m).sum::<u64>();
            if ctx.round() < self.ttl {
                ctx.broadcast(u64::from(ctx.id().raw()) + 1);
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn flood_net(n: usize, ttl: u32, threads: Option<usize>) -> Network<Flood> {
        let topo = Topology::ring(n).unwrap();
        let nodes = (0..n).map(|_| Flood { ttl, heard: 0, done: false }).collect();
        let config = CongestConfig { threads, ..CongestConfig::default() };
        Network::with_config(topo, nodes, 7, config).unwrap()
    }

    #[test]
    fn flood_terminates_and_counts() {
        let mut net = flood_net(6, 2, None);
        net.run(10).unwrap();
        let t = net.transcript();
        assert_eq!(t.num_rounds(), 3);
        // Nodes broadcast in rounds 0 and 1 (2 messages each, 6 nodes).
        assert_eq!(t.total_messages(), 2 * 12);
        assert!(t.congest_compliant(64));
        // Each node heard its two neighbors twice.
        for (i, node) in net.nodes().iter().enumerate() {
            let left = ((i + 5) % 6) as u64 + 1;
            let right = ((i + 1) % 6) as u64 + 1;
            assert_eq!(node.heard, 2 * (left + right), "node {i}");
        }
    }

    /// Tracing must be a pure observer: same seed, same transcript, with
    /// the round/stage spans showing up in the obs snapshot.
    #[test]
    fn tracing_observes_rounds_without_perturbing_the_transcript() {
        let mut plain = flood_net(6, 2, None);
        plain.run(10).unwrap();
        let was_enabled = distfl_obs::enabled();
        distfl_obs::set_enabled(true);
        let mut traced = flood_net(6, 2, None);
        traced.run(10).unwrap();
        distfl_obs::set_enabled(was_enabled);
        assert_eq!(plain.transcript(), traced.transcript());
        let snap = distfl_obs::snapshot();
        let rounds: Vec<_> =
            snap.events.iter().filter(|e| e.cat == "engine" && e.name == "round").collect();
        assert!(rounds.len() >= 3, "expected >= 3 round spans, got {}", rounds.len());
        assert!(rounds.iter().any(|e| e.arg == Some(0)));
        assert!(
            snap.events.iter().any(|e| e.name == "stage.fused" || e.name == "stage.step"),
            "stage spans missing"
        );
    }

    #[test]
    fn parallelism_is_gated_on_message_volume() {
        let mut net = flood_net(64, 3, Some(4));
        net.parallelism = 8; // pretend multi-core, independent of the host
        assert_eq!(net.worker_count(), 1, "round 0 has no known volume: stay fused");
        net.prev_messages = PARALLEL_MIN_VOLUME - 1;
        assert_eq!(net.worker_count(), 1, "sparse rounds stay on the fused path");
        net.prev_messages = PARALLEL_MIN_VOLUME;
        assert_eq!(net.worker_count(), 4, "high-volume rounds fan out");
        // Small networks stay serial even at high volume.
        let mut small = flood_net(6, 3, Some(4));
        small.parallelism = 8;
        small.prev_messages = PARALLEL_MIN_VOLUME;
        assert_eq!(small.worker_count(), 1);
        // The config override replaces the default gate in both directions.
        net.config.parallel_min_volume = Some(0);
        net.prev_messages = 0;
        assert_eq!(net.worker_count(), 4, "zero gate parallelizes every round");
        net.config.parallel_min_volume = Some(u64::MAX);
        net.prev_messages = u64::MAX - 1;
        assert_eq!(net.worker_count(), 1, "maximal gate pins the fused path");
        net.config.parallel_min_volume = None;
        // The gate tracks the transcript: after a real (low-volume) round
        // the recorded volume matches what worker_count consults.
        let stats = net.step().unwrap();
        assert_eq!(net.prev_messages, stats.messages + stats.dropped);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut serial = flood_net(31, 3, None);
        serial.run(10).unwrap();
        let hs: Vec<u64> = serial.nodes().iter().map(|n| n.heard).collect();
        // An explicit 3-worker pool with a zeroed volume gate drives the
        // staged pool path on any machine; forced shard partitioning
        // additionally exercises the sharded merge.
        for force_shards in [None, Some(4)] {
            let topo = Topology::ring(31).unwrap();
            let nodes = (0..31).map(|_| Flood { ttl: 3, heard: 0, done: false }).collect();
            let config = CongestConfig {
                threads: Some(4),
                force_shards,
                pool: Some(WorkerPool::shared(3)),
                parallel_min_volume: Some(0),
                ..CongestConfig::default()
            };
            let mut parallel = Network::with_config(topo, nodes, 7, config).unwrap();
            parallel.run(10).unwrap();
            assert_eq!(serial.transcript(), parallel.transcript());
            let hp: Vec<u64> = parallel.nodes().iter().map(|n| n.heard).collect();
            assert_eq!(hs, hp);
        }
    }

    /// The profile records one entry per round, attributes fused rounds to
    /// the step stage, and counts pool tasks only on staged rounds — while
    /// the transcript stays identical, profile or not.
    #[test]
    fn profile_records_stage_timings_and_pool_tasks() {
        let mut fused = flood_net(31, 3, None);
        fused.run(10).unwrap();
        let profile = fused.profile();
        assert_eq!(profile.rounds().len(), fused.transcript().num_rounds() as usize);
        assert!(profile.rounds().iter().all(|t| t.fused && t.pool_tasks == 0));
        assert_eq!(profile.fused_rounds() as usize, profile.rounds().len());

        let topo = Topology::ring(31).unwrap();
        let nodes = (0..31).map(|_| Flood { ttl: 3, heard: 0, done: false }).collect();
        let config = CongestConfig {
            threads: Some(2),
            pool: Some(WorkerPool::shared(1)),
            parallel_min_volume: Some(0),
            ..CongestConfig::default()
        };
        let mut staged = Network::with_config(topo, nodes, 7, config).unwrap();
        staged.run(10).unwrap();
        assert_eq!(fused.transcript(), staged.transcript());
        let profile = staged.profile();
        assert_eq!(profile.rounds().len(), staged.transcript().num_rounds() as usize);
        // With a zeroed gate even round 0 fans out.
        assert!(profile.rounds().iter().all(|t| !t.fused));
        // 2 step chunks + 2 delivery shards per staged round.
        assert!(profile.rounds().iter().all(|t| t.pool_tasks == 4));
        assert_eq!(profile.total_pool_tasks(), 4 * profile.rounds().len() as u64);
    }

    #[test]
    fn run_returns_borrowed_transcript() {
        let mut net = flood_net(6, 1, None);
        let rounds = net.run(10).unwrap().num_rounds();
        assert_eq!(rounds, 2);
        let (nodes, transcript) = net.into_parts();
        assert_eq!(nodes.len(), 6);
        assert_eq!(transcript.num_rounds(), 2);
    }

    #[test]
    fn round_limit_error() {
        struct Never;
        impl NodeLogic for Never {
            type Msg = ();
            fn step(&mut self, _: &mut StepCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let topo = Topology::ring(3).unwrap();
        let mut net = Network::new(topo, vec![Never, Never, Never], 0).unwrap();
        let err = net.run(5).unwrap_err();
        assert_eq!(err, CongestError::RoundLimit { limit: 5, pending: 3 });
    }

    #[test]
    fn node_count_mismatch() {
        let topo = Topology::ring(3).unwrap();
        let err = Network::new(topo, vec![Flood { ttl: 0, heard: 0, done: false }], 0).unwrap_err();
        assert!(matches!(err, CongestError::NodeCountMismatch { topology: 3, logics: 1 }));
    }

    #[test]
    fn send_to_non_neighbor_fails_round() {
        struct Bad;
        impl NodeLogic for Bad {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                // Node 0 tries to reach node 2 across the ring of 4: not
                // adjacent. The error is latched even though we ignore it.
                if ctx.id() == NodeId::new(0) {
                    let _ = ctx.send(NodeId::new(2), 1);
                }
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let topo = Topology::ring(4).unwrap();
        let mut net = Network::new(topo, vec![Bad, Bad, Bad, Bad], 0).unwrap();
        let err = net.step().unwrap_err();
        assert_eq!(err, CongestError::NotNeighbor { from: NodeId::new(0), to: NodeId::new(2) });
    }

    /// A step error must leave a profile row that is *marked* aborted, on
    /// both pipelines — previously the staged path pushed a normal-looking
    /// row with `deliver_nanos: 0`, indistinguishable from a measured
    /// zero-cost delivery.
    #[test]
    fn step_error_marks_profile_row_aborted() {
        struct Bad;
        impl NodeLogic for Bad {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                if ctx.id() == NodeId::new(0) {
                    let _ = ctx.send(NodeId::new(2), 1);
                }
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        // force_shards pushes the round onto the staged pipeline even with
        // one worker; the default config exercises the fused path.
        for force_shards in [None, Some(2)] {
            let topo = Topology::ring(4).unwrap();
            let config = CongestConfig { force_shards, ..CongestConfig::default() };
            let mut net = Network::with_config(topo, vec![Bad, Bad, Bad, Bad], 0, config).unwrap();
            net.step().unwrap_err();
            let rows = net.profile().rounds();
            assert_eq!(rows.len(), 1, "shards={force_shards:?}");
            assert!(rows[0].aborted, "errored round must be flagged (shards={force_shards:?})");
            assert_eq!(rows[0].deliver_nanos, 0, "delivery never ran");
            assert_eq!(net.profile().aborted_rounds(), 1);
            // Aggregates skip the aborted row entirely.
            assert_eq!(net.profile().total_step_nanos(), 0);
            assert_eq!(net.profile().total_deliver_nanos(), 0);
        }
    }

    #[test]
    fn duplicate_send_rejected_by_default() {
        struct Dup {
            done: bool,
        }
        impl NodeLogic for Dup {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                let nb = ctx.neighbors()[0];
                ctx.send(nb, 1).unwrap();
                ctx.send(nb, 2).unwrap();
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let topo = Topology::ring(3).unwrap();
        let mk = || vec![Dup { done: false }, Dup { done: false }, Dup { done: false }];
        let mut net = Network::new(topo.clone(), mk(), 0).unwrap();
        assert!(matches!(net.step(), Err(CongestError::EdgeCongestion { .. })));

        // Record policy delivers and reports the violation instead.
        let config =
            CongestConfig { duplicate_policy: DuplicatePolicy::Record, ..CongestConfig::default() };
        let mut net = Network::with_config(topo, mk(), 0, config).unwrap();
        let stats = net.step().unwrap();
        assert_eq!(stats.max_messages_per_edge, 2);
        assert_eq!(stats.messages, 6);
    }

    /// Two distinct nodes violate the discipline toward destinations in
    /// different delivery shards; parallel execution must surface the same
    /// error serial execution does (the violation earliest in source
    /// order), not whichever shard finishes first.
    #[test]
    fn duplicate_error_matches_serial_order_across_threads() {
        struct DupAt {
            offender: bool,
            done: bool,
        }
        impl NodeLogic for DupAt {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                if self.offender {
                    let nb = *ctx.neighbors().last().unwrap();
                    ctx.send(nb, 1).unwrap();
                    ctx.send(nb, 2).unwrap();
                }
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let mk = |n: usize| {
            (0..n).map(|i| DupAt { offender: i == 3 || i == 12, done: false }).collect::<Vec<_>>()
        };
        let errs: Vec<CongestError> = [(None, None), (Some(4), None), (Some(4), Some(4))]
            .into_iter()
            .map(|(threads, force_shards)| {
                let topo = Topology::ring(16).unwrap();
                let config = CongestConfig { threads, force_shards, ..CongestConfig::default() };
                let mut net = Network::with_config(topo, mk(16), 0, config).unwrap();
                net.step().unwrap_err()
            })
            .collect();
        assert_eq!(errs[0], errs[1]);
        assert_eq!(errs[0], errs[2]);
        assert!(matches!(errs[0], CongestError::EdgeCongestion { .. }));
    }

    #[test]
    fn fault_plan_drops_messages() {
        let topo = Topology::ring(5).unwrap();
        let nodes = (0..5).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        let config = CongestConfig {
            fault: Some(FaultPlan::drop_with_probability(1.0, 3)),
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, 0, config).unwrap();
        net.run(10).unwrap();
        let t = net.transcript();
        assert_eq!(t.total_messages(), 0);
        // One broadcast round: 5 nodes x 2 neighbors, all dropped.
        assert_eq!(t.total_dropped(), 10);
        assert!(net.nodes().iter().all(|n| n.heard == 0));
    }

    #[test]
    fn message_size_budget_is_enforced_when_configured() {
        let topo = Topology::ring(3).unwrap();
        let mk = || (0..3).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        // 64-bit messages pass a 64-bit budget...
        let config = CongestConfig { max_message_bits: Some(64), ..CongestConfig::default() };
        let mut net = Network::with_config(topo.clone(), mk(), 0, config).unwrap();
        assert!(net.run(5).is_ok());
        // ...and fail a 32-bit one.
        let config = CongestConfig { max_message_bits: Some(32), ..CongestConfig::default() };
        let mut net = Network::with_config(topo, mk(), 0, config).unwrap();
        let err = net.run(5).unwrap_err();
        assert!(matches!(err, CongestError::MessageTooLarge { bits: 64, limit: 32, .. }));
    }

    #[test]
    fn recorder_captures_deliveries() {
        let topo = Topology::ring(3).unwrap();
        let nodes = (0..3).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        let config = CongestConfig { record_events: true, ..CongestConfig::default() };
        let mut net = Network::with_config(topo, nodes, 0, config).unwrap();
        net.run(10).unwrap();
        assert_eq!(net.recorder().events_of(EventKind::Deliver).count(), 6);
    }

    #[test]
    fn inbox_from_lookup() {
        struct Probe {
            saw_left: bool,
            done: bool,
        }
        impl NodeLogic for Probe {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                if ctx.round() == 0 {
                    ctx.broadcast(u64::from(ctx.id().raw()));
                } else {
                    let left = ctx.neighbors()[0];
                    self.saw_left = ctx.from(left).is_some();
                    assert!(ctx.from(ctx.id()).is_none());
                    self.done = true;
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let topo = Topology::ring(4).unwrap();
        let nodes = (0..4).map(|_| Probe { saw_left: false, done: false }).collect();
        let mut net = Network::new(topo, nodes, 0).unwrap();
        net.run(5).unwrap();
        assert!(net.nodes().iter().all(|p| p.saw_left));
    }

    #[test]
    fn deterministic_rng_across_replays() {
        struct Roll {
            value: u64,
            done: bool,
        }
        impl NodeLogic for Roll {
            type Msg = ();
            fn step(&mut self, ctx: &mut StepCtx<'_, ()>) {
                self.value = ctx.rng().below(1_000_000);
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let run = || {
            let topo = Topology::ring(8).unwrap();
            let nodes = (0..8).map(|_| Roll { value: 0, done: false }).collect();
            let mut net = Network::new(topo, nodes, 42).unwrap();
            net.run(2).unwrap();
            net.into_nodes().iter().map(|r| r.value).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Sends out-of-order on purpose so the sort-elision fallback path
    /// (stable sort) is exercised.
    #[test]
    fn unsorted_sends_still_deliver_sorted() {
        struct Reverse {
            inbox_sorted: bool,
            done: bool,
        }
        impl NodeLogic for Reverse {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                if ctx.round() == 0 {
                    let neighbors: Vec<NodeId> = ctx.neighbors().iter().rev().copied().collect();
                    for nb in neighbors {
                        ctx.send(nb, u64::from(ctx.id().raw())).unwrap();
                    }
                } else {
                    self.inbox_sorted = ctx.inbox().windows(2).all(|w| w[0].0 <= w[1].0);
                    assert!(!ctx.inbox().is_empty());
                    self.done = true;
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        for (threads, force_shards) in [(None, None), (Some(4), None), (None, Some(4))] {
            let topo = Topology::complete_bipartite(4, 9).unwrap();
            let nodes = (0..13).map(|_| Reverse { inbox_sorted: false, done: false }).collect();
            let config = CongestConfig { threads, force_shards, ..CongestConfig::default() };
            let mut net = Network::with_config(topo, nodes, 0, config).unwrap();
            net.run(5).unwrap();
            assert!(net.nodes().iter().all(|n| n.inbox_sorted));
        }
    }

    /// Steady-state rounds must not grow any buffer: capacities reached in
    /// round 0 are reused in every later round.
    #[test]
    fn buffers_are_pooled_across_rounds() {
        let mut net = flood_net(16, 6, None);
        net.step().unwrap();
        net.step().unwrap();
        let caps: Vec<usize> = net.outboxes.iter().map(Vec::capacity).collect();
        let icaps: Vec<usize> = net.inboxes.iter().map(Vec::capacity).collect();
        for _ in 0..4 {
            net.step().unwrap();
        }
        assert_eq!(caps, net.outboxes.iter().map(Vec::capacity).collect::<Vec<_>>());
        assert_eq!(icaps, net.inboxes.iter().map(Vec::capacity).collect::<Vec<_>>());
    }
}
