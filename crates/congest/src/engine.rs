//! The synchronous round engine.

use crate::error::CongestError;
use crate::fault::FaultPlan;
use crate::message::Payload;
use crate::metrics::{RoundStats, Transcript};
use crate::node::{NodeId, NodeLogic};
use crate::rng::NodeRng;
use crate::topology::Topology;
use crate::trace::{Event, EventKind, Recorder};

/// What to do when a node sends two messages over the same directed edge in
/// one round (a CONGEST violation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Fail the run with [`CongestError::EdgeCongestion`] (the default:
    /// correct algorithms never violate the discipline).
    #[default]
    Reject,
    /// Deliver everything but record the violation in the transcript's
    /// `max_messages_per_edge`, so experiments can report it.
    Record,
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct CongestConfig {
    /// Handling of one-message-per-edge violations.
    pub duplicate_policy: DuplicatePolicy,
    /// Number of worker threads for parallel stepping; `None` or `Some(1)`
    /// runs serially. Results are identical either way.
    pub threads: Option<usize>,
    /// Optional deterministic message-drop plan.
    pub fault: Option<FaultPlan>,
    /// Crash-stop schedule: `(node, round)` pairs; from `round` on, the
    /// node neither steps nor sends (crash-stop failures). Crashed nodes
    /// count as done for termination purposes.
    pub crashes: Vec<(NodeId, u32)>,
    /// Optional hard per-message bit budget; a message declaring more
    /// bits fails the run with [`CongestError::MessageTooLarge`]. `None`
    /// records sizes in the transcript without enforcing.
    pub max_message_bits: Option<u64>,
    /// Whether to record per-message [`Event`]s (slow; for debugging).
    pub record_events: bool,
}

/// Per-round context handed to [`NodeLogic::step`].
///
/// Provides the node's identity, neighbors, inbox, a deterministic random
/// stream, and the send interface.
#[derive(Debug)]
pub struct StepCtx<'a, M: Payload> {
    id: NodeId,
    round: u32,
    neighbors: &'a [NodeId],
    inbox: &'a [(NodeId, M)],
    rng: NodeRng,
    outbox: Vec<(NodeId, M)>,
    send_error: Option<CongestError>,
}

impl<'a, M: Payload> StepCtx<'a, M> {
    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current round number (0-based).
    #[inline]
    pub fn round(&self) -> u32 {
        self.round
    }

    /// This node's sorted neighbor list.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.neighbors
    }

    /// This node's degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages received this round as `(sender, message)` pairs, sorted by
    /// sender id.
    #[inline]
    pub fn inbox(&self) -> &'a [(NodeId, M)] {
        self.inbox
    }

    /// The message from `src` this round, if any (and if unique).
    pub fn from(&self, src: NodeId) -> Option<&'a M> {
        let pos = self.inbox.partition_point(|(s, _)| *s < src);
        match self.inbox.get(pos) {
            Some((s, m)) if *s == src => Some(m),
            _ => None,
        }
    }

    /// This node's deterministic random stream for this round.
    ///
    /// Streams are derived from `(master seed, node id, round)`, so parallel
    /// and serial execution observe identical randomness.
    #[inline]
    pub fn rng(&mut self) -> &mut NodeRng {
        &mut self.rng
    }

    /// Queues `msg` for delivery to neighbor `dst` next round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NotNeighbor`] if `dst` is not adjacent; the
    /// violation is also latched so the engine fails the round even if the
    /// caller ignores the error.
    pub fn send(&mut self, dst: NodeId, msg: M) -> Result<(), CongestError> {
        if self.neighbors.binary_search(&dst).is_err() {
            let err = CongestError::NotNeighbor { from: self.id, to: dst };
            self.send_error.get_or_insert(err.clone());
            return Err(err);
        }
        self.outbox.push((dst, msg));
        Ok(())
    }

    /// Sends a clone of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M) {
        for &nb in self.neighbors {
            self.outbox.push((nb, msg.clone()));
        }
    }
}

/// Outcome of stepping one node.
struct StepOutcome<M> {
    outbox: Vec<(NodeId, M)>,
    error: Option<CongestError>,
}

/// A synchronous CONGEST network executing one [`NodeLogic`] per node.
///
/// See the [crate documentation](crate) for a complete example.
pub struct Network<L: NodeLogic> {
    topo: Topology,
    nodes: Vec<L>,
    config: CongestConfig,
    master_seed: u64,
    round: u32,
    inboxes: Vec<Vec<(NodeId, L::Msg)>>,
    transcript: Transcript,
    recorder: Recorder,
}

impl<L: NodeLogic> std::fmt::Debug for Network<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("num_nodes", &self.nodes.len())
            .field("round", &self.round)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<L: NodeLogic> Network<L> {
    /// Creates a network with default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCountMismatch`] if `nodes.len()` differs
    /// from the topology's node count.
    pub fn new(topo: Topology, nodes: Vec<L>, master_seed: u64) -> Result<Self, CongestError> {
        Self::with_config(topo, nodes, master_seed, CongestConfig::default())
    }

    /// Creates a network with an explicit [`CongestConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCountMismatch`] if `nodes.len()` differs
    /// from the topology's node count.
    pub fn with_config(
        topo: Topology,
        nodes: Vec<L>,
        master_seed: u64,
        config: CongestConfig,
    ) -> Result<Self, CongestError> {
        if topo.num_nodes() != nodes.len() {
            return Err(CongestError::NodeCountMismatch {
                topology: topo.num_nodes(),
                logics: nodes.len(),
            });
        }
        let n = nodes.len();
        let recorder = if config.record_events { Recorder::enabled() } else { Recorder::disabled() };
        Ok(Network {
            topo,
            nodes,
            config,
            master_seed,
            round: 0,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            transcript: Transcript::new(),
            recorder,
        })
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All node logics, indexed by node id.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// The logic of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &L {
        &self.nodes[id.index()]
    }

    /// Consumes the network, returning the node logics.
    pub fn into_nodes(self) -> Vec<L> {
        self.nodes
    }

    /// The statistics accumulated so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// The event recorder (empty unless `record_events` was set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The next round to execute (0-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether node `index` has crashed by round `round`.
    fn is_crashed(&self, index: usize, round: u32) -> bool {
        self.config
            .crashes
            .iter()
            .any(|&(id, r)| id.index() == index && r <= round)
    }

    /// Whether every node reports done (crashed nodes count as done).
    pub fn all_done(&self) -> bool {
        let round = self.round;
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, l)| l.is_done() || self.is_crashed(i, round))
    }

    /// Executes one synchronous round.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NotNeighbor`] if any node addressed a
    /// non-neighbor, or [`CongestError::EdgeCongestion`] under
    /// [`DuplicatePolicy::Reject`].
    pub fn step(&mut self) -> Result<RoundStats, CongestError> {
        let round = self.round;
        let inboxes = std::mem::take(&mut self.inboxes);
        let outcomes = self.step_all_nodes(&inboxes, round);
        // Reuse the inbox buffers for the next round.
        self.inboxes = inboxes;
        for ib in &mut self.inboxes {
            ib.clear();
        }

        for outcome in &outcomes {
            if let Some(err) = &outcome.error {
                return Err(err.clone());
            }
        }

        let mut stats = RoundStats { round, ..RoundStats::default() };
        for (src_index, outcome) in outcomes.into_iter().enumerate() {
            let src = NodeId::new(src_index as u32);
            // Count per-destination multiplicity for congestion accounting.
            let mut sorted: Vec<(NodeId, L::Msg)> = outcome.outbox;
            sorted.sort_by_key(|(dst, _)| *dst);
            let mut run_dst: Option<NodeId> = None;
            let mut run_len: u64 = 0;
            for (dst, msg) in sorted {
                if run_dst == Some(dst) {
                    run_len += 1;
                } else {
                    run_dst = Some(dst);
                    run_len = 1;
                }
                if run_len > 1 && self.config.duplicate_policy == DuplicatePolicy::Reject {
                    return Err(CongestError::EdgeCongestion { from: src, to: dst, round });
                }
                stats.max_messages_per_edge = stats.max_messages_per_edge.max(run_len);
                let dropped =
                    self.config.fault.as_ref().is_some_and(|f| f.drops(round, src, dst));
                if dropped {
                    stats.dropped += 1;
                    self.recorder.record(Event { round, kind: EventKind::Drop, src, dst });
                    continue;
                }
                let bits = msg.size_bits();
                if let Some(limit) = self.config.max_message_bits {
                    if bits > limit {
                        return Err(CongestError::MessageTooLarge {
                            from: src,
                            to: dst,
                            bits,
                            limit,
                        });
                    }
                }
                stats.messages += 1;
                stats.bits += bits;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                self.recorder.record(Event { round, kind: EventKind::Deliver, src, dst });
                self.inboxes[dst.index()].push((src, msg));
            }
        }
        debug_assert!(self
            .inboxes
            .iter()
            .all(|ib| ib.windows(2).all(|w| w[0].0 <= w[1].0)));

        self.transcript.push(stats);
        self.round += 1;
        Ok(stats)
    }

    /// Steps every non-done node, serially or in parallel per the config.
    fn step_all_nodes(
        &mut self,
        inboxes: &[Vec<(NodeId, L::Msg)>],
        round: u32,
    ) -> Vec<StepOutcome<L::Msg>> {
        let threads = self.config.threads.unwrap_or(1).max(1);
        let n = self.nodes.len();
        let crashed: Vec<bool> = (0..n).map(|i| self.is_crashed(i, round)).collect();
        let mut outcomes: Vec<StepOutcome<L::Msg>> = Vec::with_capacity(n);
        if threads <= 1 || n < 2 * threads {
            for (index, node) in self.nodes.iter_mut().enumerate() {
                if crashed[index] {
                    outcomes.push(StepOutcome { outbox: Vec::new(), error: None });
                } else {
                    outcomes.push(step_one(
                        &self.topo,
                        node,
                        index,
                        &inboxes[index],
                        round,
                        self.master_seed,
                    ));
                }
            }
        } else {
            outcomes.extend((0..n).map(|_| StepOutcome { outbox: Vec::new(), error: None }));
            let chunk = n.div_ceil(threads);
            let topo = &self.topo;
            let seed = self.master_seed;
            let node_chunks = self.nodes.chunks_mut(chunk);
            let inbox_chunks = inboxes.chunks(chunk);
            let outcome_chunks = outcomes.chunks_mut(chunk);
            let crashed_ref = &crashed;
            crossbeam::thread::scope(|scope| {
                for (chunk_index, ((nodes, inbs), outs)) in
                    node_chunks.zip(inbox_chunks).zip(outcome_chunks).enumerate()
                {
                    let base = chunk_index * chunk;
                    scope.spawn(move |_| {
                        for (offset, node) in nodes.iter_mut().enumerate() {
                            let index = base + offset;
                            if crashed_ref[index] {
                                outs[offset] =
                                    StepOutcome { outbox: Vec::new(), error: None };
                            } else {
                                outs[offset] =
                                    step_one(topo, node, index, &inbs[offset], round, seed);
                            }
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
        outcomes
    }

    /// Runs rounds until every node is done or `max_rounds` is reached.
    ///
    /// Returns a clone of the transcript on success.
    ///
    /// # Errors
    ///
    /// Propagates [`Network::step`] errors and returns
    /// [`CongestError::RoundLimit`] if the protocol does not terminate in
    /// `max_rounds` rounds.
    pub fn run(&mut self, max_rounds: u32) -> Result<Transcript, CongestError> {
        while !self.all_done() {
            if self.round >= max_rounds {
                let pending = self.nodes.iter().filter(|l| !l.is_done()).count();
                return Err(CongestError::RoundLimit { limit: max_rounds, pending });
            }
            self.step()?;
        }
        Ok(self.transcript.clone())
    }
}

/// Steps a single node, producing its outbox.
fn step_one<L: NodeLogic>(
    topo: &Topology,
    node: &mut L,
    index: usize,
    inbox: &[(NodeId, L::Msg)],
    round: u32,
    master_seed: u64,
) -> StepOutcome<L::Msg> {
    if node.is_done() {
        return StepOutcome { outbox: Vec::new(), error: None };
    }
    let id = NodeId::new(index as u32);
    let mut ctx = StepCtx {
        id,
        round,
        neighbors: topo.neighbors(id),
        inbox,
        rng: NodeRng::derive(master_seed, id.raw(), round),
        outbox: Vec::new(),
        send_error: None,
    };
    node.step(&mut ctx);
    StepOutcome { outbox: ctx.outbox, error: ctx.send_error }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods the node's id for `ttl` rounds, summing everything heard.
    struct Flood {
        ttl: u32,
        heard: u64,
        done: bool,
    }

    impl NodeLogic for Flood {
        type Msg = u64;
        fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
            self.heard += ctx.inbox().iter().map(|(_, m)| *m).sum::<u64>();
            if ctx.round() < self.ttl {
                ctx.broadcast(u64::from(ctx.id().raw()) + 1);
            } else {
                self.done = true;
            }
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn flood_net(n: usize, ttl: u32, threads: Option<usize>) -> Network<Flood> {
        let topo = Topology::ring(n).unwrap();
        let nodes = (0..n).map(|_| Flood { ttl, heard: 0, done: false }).collect();
        let config = CongestConfig { threads, ..CongestConfig::default() };
        Network::with_config(topo, nodes, 7, config).unwrap()
    }

    #[test]
    fn flood_terminates_and_counts() {
        let mut net = flood_net(6, 2, None);
        let t = net.run(10).unwrap();
        assert_eq!(t.num_rounds(), 3);
        // Nodes broadcast in rounds 0 and 1 (2 messages each, 6 nodes).
        assert_eq!(t.total_messages(), 2 * 12);
        assert!(t.congest_compliant(64));
        // Each node heard its two neighbors twice.
        for (i, node) in net.nodes().iter().enumerate() {
            let left = ((i + 5) % 6) as u64 + 1;
            let right = ((i + 1) % 6) as u64 + 1;
            assert_eq!(node.heard, 2 * (left + right), "node {i}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut serial = flood_net(31, 3, None);
        let mut parallel = flood_net(31, 3, Some(4));
        let ts = serial.run(10).unwrap();
        let tp = parallel.run(10).unwrap();
        assert_eq!(ts, tp);
        let hs: Vec<u64> = serial.nodes().iter().map(|n| n.heard).collect();
        let hp: Vec<u64> = parallel.nodes().iter().map(|n| n.heard).collect();
        assert_eq!(hs, hp);
    }

    #[test]
    fn round_limit_error() {
        struct Never;
        impl NodeLogic for Never {
            type Msg = ();
            fn step(&mut self, _: &mut StepCtx<'_, ()>) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let topo = Topology::ring(3).unwrap();
        let mut net = Network::new(topo, vec![Never, Never, Never], 0).unwrap();
        let err = net.run(5).unwrap_err();
        assert_eq!(err, CongestError::RoundLimit { limit: 5, pending: 3 });
    }

    #[test]
    fn node_count_mismatch() {
        let topo = Topology::ring(3).unwrap();
        let err = Network::new(topo, vec![Flood { ttl: 0, heard: 0, done: false }], 0).unwrap_err();
        assert!(matches!(err, CongestError::NodeCountMismatch { topology: 3, logics: 1 }));
    }

    #[test]
    fn send_to_non_neighbor_fails_round() {
        struct Bad;
        impl NodeLogic for Bad {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                // Node 0 tries to reach node 2 across the ring of 4: not
                // adjacent. The error is latched even though we ignore it.
                if ctx.id() == NodeId::new(0) {
                    let _ = ctx.send(NodeId::new(2), 1);
                }
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let topo = Topology::ring(4).unwrap();
        let mut net = Network::new(topo, vec![Bad, Bad, Bad, Bad], 0).unwrap();
        let err = net.step().unwrap_err();
        assert_eq!(err, CongestError::NotNeighbor { from: NodeId::new(0), to: NodeId::new(2) });
    }

    #[test]
    fn duplicate_send_rejected_by_default() {
        struct Dup { done: bool }
        impl NodeLogic for Dup {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                let nb = ctx.neighbors()[0];
                ctx.send(nb, 1).unwrap();
                ctx.send(nb, 2).unwrap();
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let topo = Topology::ring(3).unwrap();
        let mk = || vec![Dup { done: false }, Dup { done: false }, Dup { done: false }];
        let mut net = Network::new(topo.clone(), mk(), 0).unwrap();
        assert!(matches!(net.step(), Err(CongestError::EdgeCongestion { .. })));

        // Record policy delivers and reports the violation instead.
        let config =
            CongestConfig { duplicate_policy: DuplicatePolicy::Record, ..CongestConfig::default() };
        let mut net = Network::with_config(topo, mk(), 0, config).unwrap();
        let stats = net.step().unwrap();
        assert_eq!(stats.max_messages_per_edge, 2);
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn fault_plan_drops_messages() {
        let topo = Topology::ring(5).unwrap();
        let nodes = (0..5).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        let config = CongestConfig {
            fault: Some(FaultPlan::drop_with_probability(1.0, 3)),
            ..CongestConfig::default()
        };
        let mut net = Network::with_config(topo, nodes, 0, config).unwrap();
        let t = net.run(10).unwrap();
        assert_eq!(t.total_messages(), 0);
        // One broadcast round: 5 nodes x 2 neighbors, all dropped.
        assert_eq!(t.total_dropped(), 10);
        assert!(net.nodes().iter().all(|n| n.heard == 0));
    }

    #[test]
    fn message_size_budget_is_enforced_when_configured() {
        let topo = Topology::ring(3).unwrap();
        let mk = || (0..3).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        // 64-bit messages pass a 64-bit budget...
        let config =
            CongestConfig { max_message_bits: Some(64), ..CongestConfig::default() };
        let mut net = Network::with_config(topo.clone(), mk(), 0, config).unwrap();
        assert!(net.run(5).is_ok());
        // ...and fail a 32-bit one.
        let config =
            CongestConfig { max_message_bits: Some(32), ..CongestConfig::default() };
        let mut net = Network::with_config(topo, mk(), 0, config).unwrap();
        let err = net.run(5).unwrap_err();
        assert!(matches!(err, CongestError::MessageTooLarge { bits: 64, limit: 32, .. }));
    }

    #[test]
    fn recorder_captures_deliveries() {
        let topo = Topology::ring(3).unwrap();
        let nodes = (0..3).map(|_| Flood { ttl: 1, heard: 0, done: false }).collect();
        let config = CongestConfig { record_events: true, ..CongestConfig::default() };
        let mut net = Network::with_config(topo, nodes, 0, config).unwrap();
        net.run(10).unwrap();
        assert_eq!(net.recorder().events_of(EventKind::Deliver).count(), 6);
    }

    #[test]
    fn inbox_from_lookup() {
        struct Probe {
            saw_left: bool,
            done: bool,
        }
        impl NodeLogic for Probe {
            type Msg = u64;
            fn step(&mut self, ctx: &mut StepCtx<'_, u64>) {
                if ctx.round() == 0 {
                    ctx.broadcast(u64::from(ctx.id().raw()));
                } else {
                    let left = ctx.neighbors()[0];
                    self.saw_left = ctx.from(left).is_some();
                    assert!(ctx.from(ctx.id()).is_none());
                    self.done = true;
                }
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let topo = Topology::ring(4).unwrap();
        let nodes = (0..4).map(|_| Probe { saw_left: false, done: false }).collect();
        let mut net = Network::new(topo, nodes, 0).unwrap();
        net.run(5).unwrap();
        assert!(net.nodes().iter().all(|p| p.saw_left));
    }

    #[test]
    fn deterministic_rng_across_replays() {
        struct Roll {
            value: u64,
            done: bool,
        }
        impl NodeLogic for Roll {
            type Msg = ();
            fn step(&mut self, ctx: &mut StepCtx<'_, ()>) {
                self.value = ctx.rng().below(1_000_000);
                self.done = true;
            }
            fn is_done(&self) -> bool {
                self.done
            }
        }
        let run = || {
            let topo = Topology::ring(8).unwrap();
            let nodes = (0..8).map(|_| Roll { value: 0, done: false }).collect();
            let mut net = Network::new(topo, nodes, 42).unwrap();
            net.run(2).unwrap();
            net.into_nodes().iter().map(|r| r.value).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
