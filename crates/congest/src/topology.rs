//! Communication graphs.
//!
//! A [`Topology`] is an immutable simple undirected graph stored in CSR
//! (compressed sparse row) form: adjacency lists are contiguous and sorted,
//! so `neighbors()` is a slice and membership tests are binary searches.

use serde::{Deserialize, Serialize};

use crate::error::CongestError;
use crate::node::NodeId;

/// An immutable simple undirected communication graph.
///
/// Build one with [`Topology::from_edges`] or a shape constructor
/// ([`Topology::ring`], [`Topology::grid`], [`Topology::complete_bipartite`],
/// [`Topology::bipartite`]), then hand it to [`crate::Network::new`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// CSR row offsets, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists.
    adjacency: Vec<NodeId>,
}

impl Topology {
    /// Builds a topology over `num_nodes` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::SelfLoop`], [`CongestError::DuplicateEdge`],
    /// or [`CongestError::NodeOutOfRange`] if the edge list is not a simple
    /// graph over `0..num_nodes`.
    pub fn from_edges(
        num_nodes: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, CongestError> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
        for (a, b) in edges {
            if a == b {
                return Err(CongestError::SelfLoop { id: a });
            }
            for id in [a, b] {
                if id.index() >= num_nodes {
                    return Err(CongestError::NodeOutOfRange { id, num_nodes });
                }
            }
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut adjacency = Vec::new();
        offsets.push(0u32);
        for (i, mut list) in adj.into_iter().enumerate() {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(CongestError::DuplicateEdge { a: NodeId::new(i as u32), b: w[0] });
            }
            adjacency.extend_from_slice(&list);
            offsets.push(adjacency.len() as u32);
        }
        Ok(Topology { offsets, adjacency })
    }

    /// A cycle on `n ≥ 3` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::InvalidTopology`] for `n < 3`.
    pub fn ring(n: usize) -> Result<Self, CongestError> {
        if n < 3 {
            return Err(CongestError::InvalidTopology {
                reason: format!("ring needs at least 3 nodes, got {n}"),
            });
        }
        let edges = (0..n).map(|i| (NodeId::new(i as u32), NodeId::new(((i + 1) % n) as u32)));
        Self::from_edges(n, edges)
    }

    /// A `rows × cols` 4-neighbor grid.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::InvalidTopology`] if either dimension is zero.
    pub fn grid(rows: usize, cols: usize) -> Result<Self, CongestError> {
        if rows == 0 || cols == 0 {
            return Err(CongestError::InvalidTopology {
                reason: format!("grid dimensions must be positive, got {rows}x{cols}"),
            });
        }
        let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Self::from_edges(rows * cols, edges)
    }

    /// Complete bipartite graph: nodes `0..left` on one side,
    /// `left..left+right` on the other, every cross pair adjacent.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::InvalidTopology`] if either side is empty.
    pub fn complete_bipartite(left: usize, right: usize) -> Result<Self, CongestError> {
        if left == 0 || right == 0 {
            return Err(CongestError::InvalidTopology {
                reason: format!(
                    "complete bipartite graph needs both sides non-empty, got {left}/{right}"
                ),
            });
        }
        let mut edges = Vec::with_capacity(left * right);
        for a in 0..left {
            for b in 0..right {
                edges.push((NodeId::new(a as u32), NodeId::new((left + b) as u32)));
            }
        }
        Self::from_edges(left + right, edges)
    }

    /// Bipartite graph from explicit cross pairs `(left_index, right_index)`;
    /// node ids are `left` nodes `0..left` then `right` nodes
    /// `left..left+right`.
    ///
    /// # Errors
    ///
    /// Propagates simple-graph violations from [`Topology::from_edges`] and
    /// rejects out-of-range side indices.
    pub fn bipartite(
        left: usize,
        right: usize,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, CongestError> {
        let num_nodes = left + right;
        let mut edges = Vec::new();
        for (a, b) in pairs {
            if a >= left {
                return Err(CongestError::NodeOutOfRange {
                    id: NodeId::new(a as u32),
                    num_nodes: left,
                });
            }
            if b >= right {
                return Err(CongestError::NodeOutOfRange {
                    id: NodeId::new(b as u32),
                    num_nodes: right,
                });
            }
            edges.push((NodeId::new(a as u32), NodeId::new((left + b) as u32)));
        }
        Self::from_edges(num_nodes, edges)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// The sorted neighbor list of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        let lo = self.offsets[id.index()] as usize;
        let hi = self.offsets[id.index() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn degree(&self, id: NodeId) -> usize {
        self.neighbors(id).len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|i| self.degree(NodeId::new(i as u32))).max().unwrap_or(0)
    }

    /// Whether `a` and `b` are adjacent.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.num_nodes() {
            return false;
        }
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Whether the graph is connected (vacuously true for a single node).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// Iterates over all undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |i| {
            let a = NodeId::new(i as u32);
            self.neighbors(a).iter().copied().filter(move |&b| a < b).map(move |b| (a, b))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(5).unwrap();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.neighbors(NodeId::new(0)), &[NodeId::new(1), NodeId::new(4)]);
        assert!(t.are_neighbors(NodeId::new(2), NodeId::new(3)));
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(2)));
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn ring_too_small() {
        assert!(matches!(Topology::ring(2), Err(CongestError::InvalidTopology { .. })));
    }

    #[test]
    fn grid_structure() {
        let t = Topology::grid(3, 4).unwrap();
        assert_eq!(t.num_nodes(), 12);
        // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
        assert_eq!(t.num_edges(), 17);
        assert_eq!(t.max_degree(), 4);
        // Corner has degree 2.
        assert_eq!(t.degree(NodeId::new(0)), 2);
    }

    #[test]
    fn grid_rejects_zero_dimension() {
        assert!(Topology::grid(0, 3).is_err());
        assert!(Topology::grid(3, 0).is_err());
    }

    #[test]
    fn complete_bipartite_structure() {
        let t = Topology::complete_bipartite(2, 3).unwrap();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.degree(NodeId::new(0)), 3);
        assert_eq!(t.degree(NodeId::new(4)), 2);
        // No edges within a side.
        assert!(!t.are_neighbors(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_neighbors(NodeId::new(2), NodeId::new(3)));
    }

    #[test]
    fn bipartite_with_pairs() {
        let t = Topology::bipartite(2, 2, vec![(0, 0), (1, 1), (0, 1)]).unwrap();
        assert_eq!(t.num_edges(), 3);
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(2)));
        assert!(t.are_neighbors(NodeId::new(0), NodeId::new(3)));
        assert!(t.are_neighbors(NodeId::new(1), NodeId::new(3)));
        assert!(!t.are_neighbors(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn bipartite_rejects_out_of_range() {
        assert!(Topology::bipartite(2, 2, vec![(2, 0)]).is_err());
        assert!(Topology::bipartite(2, 2, vec![(0, 5)]).is_err());
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        assert!(matches!(
            Topology::from_edges(2, vec![(n0, n0)]),
            Err(CongestError::SelfLoop { .. })
        ));
        assert!(matches!(
            Topology::from_edges(2, vec![(n0, n1), (n1, n0)]),
            Err(CongestError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let e = Topology::from_edges(2, vec![(NodeId::new(0), NodeId::new(5))]);
        assert!(matches!(e, Err(CongestError::NodeOutOfRange { .. })));
    }

    #[test]
    fn edges_iterator_covers_each_edge_once() {
        let t = Topology::grid(2, 3).unwrap();
        let edges: Vec<_> = t.edges().collect();
        assert_eq!(edges.len(), t.num_edges());
        for (a, b) in edges {
            assert!(a < b);
            assert!(t.are_neighbors(a, b));
        }
    }

    #[test]
    fn connectivity_detection() {
        assert!(Topology::ring(6).unwrap().is_connected());
        assert!(Topology::grid(3, 4).unwrap().is_connected());
        assert!(Topology::complete_bipartite(2, 3).unwrap().is_connected());
        // Two disjoint edges: disconnected.
        let t = Topology::from_edges(
            4,
            vec![(NodeId::new(0), NodeId::new(1)), (NodeId::new(2), NodeId::new(3))],
        )
        .unwrap();
        assert!(!t.is_connected());
        // Isolated node: disconnected.
        let t = Topology::from_edges(3, vec![(NodeId::new(0), NodeId::new(1))]).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn empty_graph_is_fine() {
        let t = Topology::from_edges(3, Vec::new()).unwrap();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.max_degree(), 0);
    }
}
