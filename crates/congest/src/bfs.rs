//! BFS spanning trees and tree aggregation (convergecast / broadcast).
//!
//! The classic `O(D)`-round building blocks of distributed computing:
//!
//! 1. **Tree construction** — the root floods a `Grow` wave; every node
//!    adopts the first sender as its parent (ties to the lowest id, so the
//!    tree is the canonical BFS tree).
//! 2. **Convergecast** — leaves start an upward wave combining local
//!    values with an associative [`AggregateOp`]; each internal node
//!    forwards once all children reported.
//! 3. **Broadcast** — the root floods the aggregate back down.
//!
//! These are exactly the primitives the *straw-man* distributed greedy
//! needs once per picked star (see `distfl-core::seqsim`), and what a real
//! deployment uses to audit a solution's total cost. The protocol is also
//! a good stress test of the engine: variable-length phases, node-specific
//! termination, and message causality.

use serde::{Deserialize, Serialize};

use crate::engine::{Network, StepCtx};
use crate::error::CongestError;
use crate::message::Payload;
use crate::metrics::Transcript;
use crate::node::{NodeId, NodeLogic};
use crate::topology::Topology;

/// Associative, commutative combination of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateOp {
    /// Sum of all values.
    Sum,
    /// Minimum of all values.
    Min,
    /// Maximum of all values.
    Max,
    /// Minimum over the strictly positive values only; zeros (and
    /// negatives) act as the identity. This is the distributed form of a
    /// *cost floor* — the smallest non-free coefficient of an instance,
    /// the `c_min` in the spread `ρ = c_max / c_min` that sizes the
    /// radius ladder of the metric ball-growing solver. Nodes holding
    /// only zero-cost links simply contribute nothing.
    MinPositive,
}

impl AggregateOp {
    /// Combines two partial aggregates.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            AggregateOp::Sum => a + b,
            AggregateOp::Min => a.min(b),
            AggregateOp::Max => a.max(b),
            AggregateOp::MinPositive => {
                let a = if a > 0.0 { a } else { f64::INFINITY };
                let b = if b > 0.0 { b } else { f64::INFINITY };
                a.min(b)
            }
        }
    }

    /// The identity element.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            AggregateOp::Sum => 0.0,
            AggregateOp::Min | AggregateOp::MinPositive => f64::INFINITY,
            AggregateOp::Max => f64::NEG_INFINITY,
        }
    }
}

/// Messages of the aggregation protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BfsMsg {
    /// Downward tree-construction wave.
    Grow,
    /// "You are my parent" — adoption confirmation; a `Grow` received
    /// from a neighbor instead serves as the rejection (the sender joined
    /// through someone else).
    Child,
    /// Upward partial aggregate.
    Up(f64),
    /// Downward final result.
    Down(f64),
}

impl Payload for BfsMsg {
    fn size_bits(&self) -> u64 {
        match self {
            BfsMsg::Up(_) | BfsMsg::Down(_) => 72,
            _ => 8,
        }
    }

    /// Canonical wire encoding: one tag byte, plus the big-endian partial
    /// aggregate for `Up`/`Down` — exactly the [`BfsMsg::size_bits`]
    /// budget. Used by the wire-format test to keep the declared sizes
    /// honest.
    fn encode(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut b = bytes::BytesMut::with_capacity(9);
        match self {
            BfsMsg::Grow => b.put_u8(0),
            BfsMsg::Child => b.put_u8(1),
            BfsMsg::Up(v) => {
                b.put_u8(2);
                b.put_f64(*v);
            }
            BfsMsg::Down(v) => {
                b.put_u8(3);
                b.put_f64(*v);
            }
        }
        b.freeze()
    }
}

/// Per-node state of the aggregation protocol.
#[derive(Debug, Clone)]
pub struct BfsNode {
    is_root: bool,
    op: AggregateOp,
    parent: Option<NodeId>,
    /// Confirmed children.
    children: Vec<NodeId>,
    /// Neighbors that have answered the adoption question.
    answered: usize,
    /// Number of answers expected (degree, minus one for non-roots).
    answered_target: usize,
    /// Partial aggregate of confirmed child reports plus own value.
    partial: f64,
    reported_children: usize,
    sent_up: bool,
    result: Option<f64>,
    joined_round: Option<u32>,
    done: bool,
}

impl BfsNode {
    /// Creates the state for one node.
    pub fn new(is_root: bool, value: f64, op: AggregateOp) -> Self {
        BfsNode {
            is_root,
            op,
            parent: None,
            children: Vec::new(),
            answered: 0,
            answered_target: usize::MAX,
            partial: value,
            reported_children: 0,
            sent_up: false,
            result: None,
            joined_round: None,
            done: false,
        }
    }

    /// The aggregate, once known (after the downward wave).
    pub fn result(&self) -> Option<f64> {
        self.result
    }

    /// This node's BFS parent (None for the root or unreached nodes).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// This node's BFS depth wave round (0 for the root).
    pub fn joined_round(&self) -> Option<u32> {
        self.joined_round
    }

    /// Whether all children have reported and the upward value can go out.
    fn ready_to_report(&self) -> bool {
        !self.sent_up
            && self.answered == self.answered_target
            && self.reported_children == self.children.len()
    }
}

impl NodeLogic for BfsNode {
    type Msg = BfsMsg;

    fn step(&mut self, ctx: &mut StepCtx<'_, BfsMsg>) {
        let r = ctx.round();
        // Phase A: join the tree.
        if self.joined_round.is_none() {
            if self.is_root {
                self.joined_round = Some(r);
                self.answered_target = ctx.degree();
                ctx.broadcast(BfsMsg::Grow);
                return;
            }
            let grow_from: Option<NodeId> = ctx
                .inbox()
                .iter()
                .filter(|(_, m)| matches!(m, BfsMsg::Grow))
                .map(|&(src, _)| src)
                .min();
            if let Some(parent) = grow_from {
                self.joined_round = Some(r);
                self.parent = Some(parent);
                self.answered_target = ctx.degree() - 1;
                // Simultaneous Grow senders other than the chosen parent
                // already have parents of their own: they count as answers.
                self.answered += ctx
                    .inbox()
                    .iter()
                    .filter(|(src, m)| matches!(m, BfsMsg::Grow) && *src != parent)
                    .count();
                for &nb in ctx.neighbors() {
                    let msg = if nb == parent { BfsMsg::Child } else { BfsMsg::Grow };
                    ctx.send(nb, msg).expect("neighbors are valid targets");
                }
            }
            // Nodes that joined this round still need to process answers in
            // later rounds; fall through is fine.
        } else {
            // Phase B: collect adoption answers, child reports, results.
            for &(src, msg) in ctx.inbox() {
                match msg {
                    BfsMsg::Child => {
                        self.children.push(src);
                        self.answered += 1;
                    }
                    // A Grow from a neighbor that already has another
                    // parent counts as "not my child".
                    BfsMsg::Grow => {
                        self.answered += 1;
                    }
                    BfsMsg::Up(v) => {
                        self.partial = self.op.combine(self.partial, v);
                        self.reported_children += 1;
                    }
                    BfsMsg::Down(v) => {
                        if self.result.is_none() {
                            self.result = Some(v);
                            for &child in &self.children {
                                ctx.send(child, BfsMsg::Down(v)).expect("children are neighbors");
                            }
                            self.done = true;
                        }
                    }
                }
            }
            if self.ready_to_report() {
                self.sent_up = true;
                if self.is_root {
                    let v = self.partial;
                    self.result = Some(v);
                    for &child in &self.children {
                        ctx.send(child, BfsMsg::Down(v)).expect("children are neighbors");
                    }
                    self.done = true;
                } else if let Some(parent) = self.parent {
                    ctx.send(parent, BfsMsg::Up(self.partial)).expect("parent is a neighbor");
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the full aggregate protocol on `topology`: builds a BFS tree from
/// `root`, convergecasts `values` under `op`, and broadcasts the result to
/// every node. Returns the aggregate and the transcript.
///
/// # Errors
///
/// Returns a [`CongestError`] if the topology and value vector disagree,
/// the graph is disconnected (round limit), or the simulation fails.
pub fn aggregate(
    topology: &Topology,
    root: NodeId,
    values: &[f64],
    op: AggregateOp,
) -> Result<(f64, Transcript), CongestError> {
    if values.len() != topology.num_nodes() {
        return Err(CongestError::NodeCountMismatch {
            topology: topology.num_nodes(),
            logics: values.len(),
        });
    }
    let nodes: Vec<BfsNode> = (0..topology.num_nodes())
        .map(|i| BfsNode::new(NodeId::new(i as u32) == root, values[i], op))
        .collect();
    let mut net = Network::new(topology.clone(), nodes, 0)?;
    // 4 * n rounds is a generous bound; disconnected graphs hit it.
    let limit = 4 * topology.num_nodes() as u32 + 8;
    net.run(limit)?;
    // On a fault-free network the root always learns the aggregate before
    // terminating, but a missing result is recoverable (the transcript is
    // still coherent), so it is reported as an error rather than a panic.
    let result = net.nodes()[root.index()]
        .result()
        .ok_or(CongestError::ProtocolIncomplete { what: "bfs aggregate root result" })?;
    Ok((result, net.into_transcript()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i * i % 17) as f64 + 0.5).collect()
    }

    #[test]
    fn wire_encoding_fits_the_declared_budget_and_is_distinct() {
        let msgs = [BfsMsg::Grow, BfsMsg::Child, BfsMsg::Up(1.5), BfsMsg::Down(1.5)];
        let mut encodings = Vec::new();
        for m in msgs {
            let enc = m.encode();
            assert!(
                (enc.len() as u64) * 8 <= m.size_bits(),
                "{m:?} encodes to {} bits but declares {}",
                enc.len() * 8,
                m.size_bits()
            );
            encodings.push(enc);
        }
        // Same aggregate value, different tags: encodings must differ.
        assert_eq!(encodings.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        // The aggregate round-trips through the big-endian bytes.
        let enc = BfsMsg::Up(42.25).encode();
        assert_eq!(f64::from_be_bytes(enc[1..9].try_into().unwrap()), 42.25);
    }

    #[test]
    fn sum_on_a_ring() {
        let topo = Topology::ring(9).unwrap();
        let vals = values(9);
        let (got, t) = aggregate(&topo, NodeId::new(0), &vals, AggregateOp::Sum).unwrap();
        assert!((got - vals.iter().sum::<f64>()).abs() < 1e-9);
        assert!(t.congest_compliant(72));
    }

    #[test]
    fn min_and_max_on_a_grid() {
        let topo = Topology::grid(5, 6).unwrap();
        let vals = values(30);
        let (mn, _) = aggregate(&topo, NodeId::new(7), &vals, AggregateOp::Min).unwrap();
        let (mx, _) = aggregate(&topo, NodeId::new(7), &vals, AggregateOp::Max).unwrap();
        assert_eq!(mn, vals.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(mx, vals.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    #[test]
    fn every_node_learns_the_result() {
        let topo = Topology::complete_bipartite(4, 7).unwrap();
        let vals = values(11);
        let nodes: Vec<BfsNode> =
            (0..11).map(|i| BfsNode::new(i == 2, vals[i], AggregateOp::Sum)).collect();
        let mut net = Network::new(topo, nodes, 0).unwrap();
        net.run(100).unwrap();
        let expected: f64 = vals.iter().sum();
        for (i, node) in net.nodes().iter().enumerate() {
            let got = node.result().unwrap_or_else(|| panic!("node {i} missing result"));
            assert!((got - expected).abs() < 1e-9, "node {i}");
        }
    }

    #[test]
    fn rounds_scale_with_diameter_not_size() {
        // Ring of n: diameter n/2. Complete bipartite: diameter 2.
        let ring = Topology::ring(40).unwrap();
        let (_, t_ring) = aggregate(&ring, NodeId::new(0), &values(40), AggregateOp::Sum).unwrap();
        let dense = Topology::complete_bipartite(20, 20).unwrap();
        let (_, t_dense) =
            aggregate(&dense, NodeId::new(0), &values(40), AggregateOp::Sum).unwrap();
        assert!(
            t_dense.num_rounds() * 3 < t_ring.num_rounds(),
            "dense {} vs ring {}",
            t_dense.num_rounds(),
            t_ring.num_rounds()
        );
    }

    #[test]
    fn bfs_parents_form_a_tree_toward_the_root() {
        let topo = Topology::grid(4, 4).unwrap();
        let nodes: Vec<BfsNode> =
            (0..16).map(|i| BfsNode::new(i == 0, 1.0, AggregateOp::Sum)).collect();
        let mut net = Network::new(topo.clone(), nodes, 0).unwrap();
        net.run(100).unwrap();
        for (i, node) in net.nodes().iter().enumerate() {
            if i == 0 {
                assert_eq!(node.parent(), None);
            } else {
                let p = node.parent().expect("connected graph: everyone joins");
                assert!(topo.are_neighbors(NodeId::new(i as u32), p));
                // Parent joined strictly earlier.
                assert!(
                    net.nodes()[p.index()].joined_round().unwrap() < node.joined_round().unwrap()
                );
            }
        }
    }

    #[test]
    fn rejects_mismatched_values() {
        let topo = Topology::ring(5).unwrap();
        let out = aggregate(&topo, NodeId::new(0), &[1.0, 2.0], AggregateOp::Sum);
        assert!(matches!(out, Err(CongestError::NodeCountMismatch { .. })));
    }

    #[test]
    fn op_identities_and_combination() {
        assert_eq!(AggregateOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(AggregateOp::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(AggregateOp::Max.combine(2.0, 3.0), 3.0);
        assert_eq!(AggregateOp::Sum.identity(), 0.0);
        assert_eq!(AggregateOp::Min.identity(), f64::INFINITY);
        assert_eq!(AggregateOp::Max.identity(), f64::NEG_INFINITY);
        assert_eq!(AggregateOp::MinPositive.identity(), f64::INFINITY);
        // Zeros act as the identity, positives compete.
        assert_eq!(AggregateOp::MinPositive.combine(0.0, 3.0), 3.0);
        assert_eq!(AggregateOp::MinPositive.combine(2.0, 0.0), 2.0);
        assert_eq!(AggregateOp::MinPositive.combine(2.0, 3.0), 2.0);
        assert_eq!(AggregateOp::MinPositive.combine(0.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn min_positive_computes_the_cost_floor_on_a_ring() {
        // The distributed form of `spread::positive_floor`: zero-cost
        // entries must not poison the minimum that sizes a radius ladder.
        let topo = Topology::ring(8).unwrap();
        let vals = [0.0, 4.5, 0.0, 2.25, 9.0, 0.0, 3.0, 0.0];
        let (floor, t) = aggregate(&topo, NodeId::new(3), &vals, AggregateOp::MinPositive).unwrap();
        assert_eq!(floor, 2.25);
        let (plain_min, _) = aggregate(&topo, NodeId::new(3), &vals, AggregateOp::Min).unwrap();
        assert_eq!(plain_min, 0.0, "plain Min would have returned the useless zero");
        assert!(t.congest_compliant(72));
    }
}
