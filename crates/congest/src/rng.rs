//! Deterministic per-node randomness.
//!
//! Every node gets an independent random stream derived from the network's
//! master seed, its node id, and the current round. Because streams are
//! derived rather than shared, serial and parallel execution of the engine
//! produce identical results.

use rand::{Error as RandError, RngCore};

/// SplitMix64: a tiny, high-quality, platform-independent PRNG used to
/// derive per-node streams. Implements [`rand::RngCore`], so node logic can
/// use the full `rand` API on top of it.
#[derive(Debug, Clone)]
pub struct NodeRng {
    state: u64,
}

/// One SplitMix64 output step.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NodeRng {
    /// Creates a stream from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        NodeRng { state: seed }
    }

    /// Derives the stream for `(master_seed, node, round)`.
    ///
    /// Distinct `(node, round)` pairs yield statistically independent
    /// streams; re-deriving with the same triple yields the same stream.
    pub fn derive(master_seed: u64, node: u32, round: u32) -> Self {
        // Mix the coordinates through two SplitMix64 steps so that nearby
        // (node, round) pairs land far apart in state space.
        let mut s = master_seed ^ 0xD6E8_FEB8_6659_FD93;
        let _ = splitmix64(&mut s);
        s ^= (u64::from(node) << 32) | u64::from(round);
        let _ = splitmix64(&mut s);
        NodeRng { state: s }
    }

    /// Derives the stream for `(master_seed, key, round)`, where `key` is a
    /// full 64-bit stream discriminator (e.g. a packed `(src, dst)` edge).
    ///
    /// Unlike folding the key into the seed by XOR at the call site —
    /// where distinct `(seed, key)` pairs with equal `seed ^ key` collide —
    /// the three coordinates are absorbed *sequentially*, each separated by
    /// a SplitMix64 step, so no linear combination of them aliases.
    pub fn derive_keyed(master_seed: u64, key: u64, round: u32) -> Self {
        let mut s = master_seed ^ 0xA076_1D64_78BD_642F;
        let _ = splitmix64(&mut s);
        s ^= key;
        let _ = splitmix64(&mut s);
        s ^= u64::from(round);
        let _ = splitmix64(&mut s);
        NodeRng { state: s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_raw();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl RngCore for NodeRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), RandError> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_derivation() {
        let mut a = NodeRng::derive(7, 3, 1);
        let mut b = NodeRng::derive(7, 3, 1);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut base = NodeRng::derive(7, 3, 1);
        let mut other_node = NodeRng::derive(7, 4, 1);
        let mut other_round = NodeRng::derive(7, 3, 2);
        let mut other_seed = NodeRng::derive(8, 3, 1);
        let b: Vec<u64> = (0..4).map(|_| base.next_raw()).collect();
        assert_ne!(b, (0..4).map(|_| other_node.next_raw()).collect::<Vec<_>>());
        assert_ne!(b, (0..4).map(|_| other_round.next_raw()).collect::<Vec<_>>());
        assert_ne!(b, (0..4).map(|_| other_seed.next_raw()).collect::<Vec<_>>());
    }

    #[test]
    fn derive_keyed_separates_xor_colliding_coordinates() {
        // Pairs (seed, key) with identical seed ^ key — the aliasing class
        // the old fold-by-XOR call sites could not distinguish.
        let (s1, k1) = (0x0123_4567_89AB_CDEF_u64, 0x0000_0003_0000_0009_u64);
        let (s2, k2) = (s1 ^ k1 ^ 0x0000_0009_0000_0003, 0x0000_0009_0000_0003_u64);
        assert_eq!(s1 ^ k1, s2 ^ k2);
        let a: Vec<u64> = {
            let mut r = NodeRng::derive_keyed(s1, k1, 0);
            (0..8).map(|_| r.next_raw()).collect()
        };
        let b: Vec<u64> = {
            let mut r = NodeRng::derive_keyed(s2, k2, 0);
            (0..8).map(|_| r.next_raw()).collect()
        };
        assert_ne!(a, b);
        // And the derivation stays deterministic per triple.
        let mut again = NodeRng::derive_keyed(s1, k1, 0);
        assert_eq!(a, (0..8).map(|_| again.next_raw()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = NodeRng::from_seed(99);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = NodeRng::from_seed(123);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut r = NodeRng::from_seed(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            let v = r.below(7);
            assert!(v < 7);
            counts[v as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of tolerance");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = NodeRng::from_seed(1);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(!r.bernoulli(-3.0));
        assert!(r.bernoulli(42.0));
    }

    #[test]
    fn rngcore_fill_bytes_covers_partial_chunks() {
        let mut r = NodeRng::from_seed(2);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
