//! Discrete-event simulation of the CONGEST network under *asynchronous*
//! links, with the α-synchronizer (`synchronizer.rs`) layered on top so
//! lock-step [`NodeLogic`] protocols run unmodified.
//!
//! ## Why
//!
//! The lock-step [`Network`](crate::Network) charges every round one unit
//! of time, which is exactly the CONGEST cost model — but the paper's
//! O(k)-round guarantee is most interesting when rounds cost real,
//! heterogeneous time. The simulator executes the same protocols over an
//! event queue of simulated nanoseconds: per-edge latency drawn from a
//! pluggable distribution, optional per-edge bandwidth (serialization
//! delay), and partition schedules that hold cross-cut traffic. Messages
//! reorder naturally — two envelopes on different edges, or on the same
//! edge in different rounds, arrive in latency order, not send order.
//!
//! ## Machinery
//!
//! A binary heap orders events by `(virtual time, sequence number)`; the
//! sequence number is assigned at push time by a single-threaded loop, so
//! ties break deterministically and the whole simulation is a pure
//! function of `(topology, nodes, master_seed, SimConfig)`. There are two
//! event kinds: the *arrival* of one edge-envelope, and the *step* of one
//! node's next round (scheduled the moment its dependencies are met, see
//! the synchronizer module docs in `synchronizer.rs`).
//!
//! Local computation goes through the same `step_into` routine as the
//! engine — same inbox layout, same `(master seed, node, round)` RNG
//! stream, same outbox ordering — which is why the produced
//! [`Transcript`] is bit-identical to lock-step execution (proptested in
//! `tests/sim_properties.rs`). Message accounting happens at *send* time
//! against the sender's round, matching the engine's convention that
//! round `r`'s statistics describe the messages sent in round `r`.
//!
//! Virtual-clock quantities (latency draws, bandwidth queueing, partition
//! holds, synchronizer pulses) never touch the transcript; they live in
//! the separate [`SimReport`]. When tracing is enabled the simulated
//! timeline is exported through [`distfl_obs::complete_at`] with
//! category `"sim"`, so `--trace` renders virtual rounds in the same
//! Chrome trace as wall-clock spans.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::{step_into, DuplicatePolicy};
use crate::error::CongestError;
use crate::fault::{encode_accusation, FaultPlan, FaultVerdict};
use crate::message::Payload;
use crate::metrics::{RoundStats, Transcript};
use crate::node::{NodeId, NodeLogic};
use crate::rng::NodeRng;
use crate::synchronizer::{Envelope, SyncState};
use crate::topology::Topology;
use crate::trace::{Event, EventKind, Recorder};

/// Per-edge message latency distribution, sampled deterministically from a
/// [`NodeRng`] stream keyed by `(latency seed, directed edge, round)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this many nanoseconds.
    Constant(u64),
    /// Uniform in `[lo, hi]` nanoseconds (inclusive). Wide ranges produce
    /// heavy reordering across edges and rounds.
    Uniform {
        /// Minimum latency.
        lo: u64,
        /// Maximum latency (inclusive; must be `>= lo`).
        hi: u64,
    },
    /// Log-normal with the given median (nanoseconds) and shape `sigma`
    /// (the standard deviation of the underlying normal): a long-tailed
    /// model of real network latency. Samples are clamped to
    /// `[1, 10^15]` ns.
    LogNormal {
        /// Median latency in nanoseconds (`exp(mu)` of the underlying
        /// normal); must be positive and finite.
        median_nanos: f64,
        /// Shape parameter; must be finite and non-negative.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Validates the model's parameters.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range (empty uniform interval,
    /// non-positive median, non-finite or negative sigma).
    fn validate(&self) {
        match *self {
            LatencyModel::Constant(_) => {}
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency needs lo <= hi, got [{lo}, {hi}]");
            }
            LatencyModel::LogNormal { median_nanos, sigma } => {
                assert!(
                    median_nanos.is_finite() && median_nanos > 0.0,
                    "lognormal median must be positive and finite, got {median_nanos}"
                );
                assert!(
                    sigma.is_finite() && sigma >= 0.0,
                    "lognormal sigma must be finite and non-negative, got {sigma}"
                );
            }
        }
    }

    /// Draws one latency in nanoseconds.
    fn sample(&self, rng: &mut NodeRng) -> u64 {
        match *self {
            LatencyModel::Constant(nanos) => nanos,
            LatencyModel::Uniform { lo, hi } => {
                if lo == hi {
                    lo
                } else {
                    lo + rng.below(hi - lo + 1)
                }
            }
            LatencyModel::LogNormal { median_nanos, sigma } => {
                // Box–Muller on two uniforms; u1 shifted into (0, 1] so the
                // logarithm is finite.
                let u1 = 1.0 - rng.next_f64();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (median_nanos * (sigma * z).exp()).clamp(1.0, 1e15) as u64
            }
        }
    }
}

/// A scheduled network partition: while the virtual clock is inside
/// `[start_nanos, end_nanos)`, edges crossing the cut (one endpoint below
/// `boundary`, the other at or above it) hold their traffic; held
/// envelopes depart when the window closes. Timing-only — payloads are
/// never lost to a partition, so transcripts stay unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start (inclusive), in virtual nanoseconds.
    pub start_nanos: u64,
    /// Window end (exclusive), in virtual nanoseconds.
    pub end_nanos: u64,
    /// Nodes with id `< boundary` form one side of the cut.
    pub boundary: u32,
}

impl PartitionWindow {
    /// Whether the directed edge `src → dst` crosses this window's cut.
    fn crosses(&self, src: NodeId, dst: NodeId) -> bool {
        (src.raw() < self.boundary) != (dst.raw() < self.boundary)
    }
}

/// Configuration of one simulated execution.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-edge propagation latency model.
    pub latency: LatencyModel,
    /// Seed of the latency/loss sampling streams. Independent of the
    /// protocol's `master_seed`: changing it reshuffles the timing (and
    /// hence event order) without touching the transcript.
    pub latency_seed: u64,
    /// Virtual nanoseconds of local computation charged per node step;
    /// envelopes depart this long after the step fires.
    pub compute_nanos: u64,
    /// Per-directed-edge serialization rate in bits per microsecond. An
    /// envelope occupies its edge for `bits * 1000 / rate` ns and queues
    /// behind earlier traffic on the same edge. `None` models infinite
    /// bandwidth.
    pub bandwidth_bits_per_us: Option<u64>,
    /// Partition schedule (see [`PartitionWindow`]).
    pub partitions: Vec<PartitionWindow>,
    /// Handling of one-message-per-edge violations, as in the engine.
    pub duplicate_policy: DuplicatePolicy,
    /// Deterministic message-drop plan, identical semantics (and identical
    /// drop decisions) to [`CongestConfig::fault`](crate::CongestConfig).
    pub fault: Option<FaultPlan>,
    /// Additional per-*sender* drop probabilities: `(node, probability)`
    /// marks every payload leaving `node` lost with the given independent
    /// probability. This is the "corrupted node" knob for fault
    /// attribution experiments; equivalence runs leave it empty.
    pub lossy_nodes: Vec<(NodeId, f64)>,
    /// Crash-stop schedule, identical semantics to
    /// [`CongestConfig::crashes`](crate::CongestConfig).
    pub crashes: Vec<(NodeId, u32)>,
    /// Optional hard per-message bit budget, as in the engine.
    pub max_message_bits: Option<u64>,
    /// Whether to record per-message [`Event`]s. The recorder replays
    /// deliveries in the engine's serial order (round, then source, then
    /// outbox position) regardless of arrival order.
    pub record_events: bool,
    /// Fraction of a sender's payloads that must be observed lost before
    /// fault attribution names it
    /// [`FaultVerdict::DroppedAboveThreshold`]; in `[0, 1]`.
    pub drop_threshold: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: LatencyModel::Constant(50_000),
            latency_seed: 0,
            compute_nanos: 1_000,
            bandwidth_bits_per_us: None,
            partitions: Vec::new(),
            duplicate_policy: DuplicatePolicy::default(),
            fault: None,
            lossy_nodes: Vec::new(),
            crashes: Vec::new(),
            max_message_bits: None,
            record_events: false,
            drop_threshold: 0.05,
        }
    }
}

/// Virtual-clock measurements of one simulated run. Everything here is
/// timing — none of it feeds back into the [`Transcript`], which stays
/// bit-identical to lock-step execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Virtual time of the last processed event (simulated makespan).
    pub virtual_nanos: u64,
    /// Events popped from the queue.
    pub events_processed: u64,
    /// Envelopes that carried at least one payload (or a drop record).
    pub protocol_envelopes: u64,
    /// Pure synchronizer pulses (empty envelopes) — the α-synchronizer's
    /// overhead.
    pub pulse_envelopes: u64,
    /// Envelopes whose departure was delayed by a partition window.
    pub partition_holds: u64,
    /// Per round: virtual `(start, end)` of the round's step executions
    /// (end includes the final step's compute time).
    pub round_spans: Vec<(u64, u64)>,
}

/// One queued event: an envelope arrival or a node step.
#[derive(Debug)]
enum Ev<M> {
    Arrival { dst: NodeId, env: Envelope<M> },
    Step { node: NodeId, round: u32 },
}

/// Heap entry ordered by `(time, seq)` — `seq` is assigned in push order
/// by the (single-threaded) event loop, so ties are deterministic.
#[derive(Debug)]
struct Scheduled<M> {
    time: u64,
    seq: u64,
    ev: Ev<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// How one run ended (cached so repeated `run` calls are idempotent).
#[derive(Debug, Clone)]
enum RunOutcome {
    Ok,
    Failed(CongestError),
}

/// The discrete-event CONGEST simulator. See the [module docs](self).
pub struct Simulator<L: NodeLogic> {
    topo: Topology,
    nodes: Vec<L>,
    states: Vec<SyncState<L::Msg>>,
    config: SimConfig,
    master_seed: u64,
    heap: BinaryHeap<Scheduled<L::Msg>>,
    seq: u64,
    now: u64,
    /// Virtual time each node finishes its current step's computation.
    free_at: Vec<u64>,
    /// Round from which each node is crashed (`u32::MAX` = never).
    crash_round: Vec<u32>,
    /// Per-node extra drop probability (dense form of
    /// [`SimConfig::lossy_nodes`]).
    loss_prob: Vec<f64>,
    /// Per-directed-edge (node × neighbor slot) bandwidth busy-until.
    edge_free_at: Vec<Vec<u64>>,
    /// Per-round statistics, indexed by round; grown as rounds execute.
    rows: Vec<RoundStats>,
    /// Rounds executed (1 + highest stepped round; 0 before any step).
    rounds_executed: u32,
    max_rounds: u32,
    transcript: Transcript,
    report: SimReport,
    /// Recorded `(round, src, outbox position, event)` tuples, replayed in
    /// engine order at finalize time.
    recorded: Vec<(u32, u32, usize, Event)>,
    recorder: Recorder,
    outcome: Option<RunOutcome>,
    scratch_inbox: Vec<(NodeId, L::Msg)>,
    scratch_outbox: Vec<(NodeId, L::Msg)>,
    /// Owned copy of the stepping node's adjacency, so envelope emission
    /// can mutate queue/report state without holding a topology borrow.
    scratch_neighbors: Vec<NodeId>,
}

impl<L: NodeLogic> std::fmt::Debug for Simulator<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("num_nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("rounds_executed", &self.rounds_executed)
            .finish_non_exhaustive()
    }
}

impl<L: NodeLogic> Simulator<L> {
    /// Creates a simulator over `topo` running one logic per node.
    ///
    /// # Errors
    ///
    /// Returns [`CongestError::NodeCountMismatch`] if `nodes.len()`
    /// differs from the topology's node count.
    ///
    /// # Panics
    ///
    /// Panics if the latency model, a lossy-node probability, or the drop
    /// threshold is out of range (misconfiguration, like
    /// [`FaultPlan::drop_with_probability`]).
    pub fn new(
        topo: Topology,
        nodes: Vec<L>,
        master_seed: u64,
        config: SimConfig,
    ) -> Result<Self, CongestError> {
        if topo.num_nodes() != nodes.len() {
            return Err(CongestError::NodeCountMismatch {
                topology: topo.num_nodes(),
                logics: nodes.len(),
            });
        }
        config.latency.validate();
        assert!(
            config.drop_threshold.is_finite() && (0.0..=1.0).contains(&config.drop_threshold),
            "drop threshold must be in [0, 1], got {}",
            config.drop_threshold
        );
        let n = nodes.len();
        let mut crash_round = vec![u32::MAX; n];
        for &(id, r) in &config.crashes {
            if let Some(slot) = crash_round.get_mut(id.index()) {
                *slot = (*slot).min(r);
            }
        }
        let mut loss_prob = vec![0.0; n];
        for &(id, p) in &config.lossy_nodes {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "lossy-node probability must be in [0, 1], got {p}"
            );
            if let Some(slot) = loss_prob.get_mut(id.index()) {
                *slot = p;
            }
        }
        let mut config = config;
        // Windows are applied in start order; holding an envelope can push
        // its departure into a later window, never an earlier one.
        config.partitions.sort_by_key(|w| (w.start_nanos, w.end_nanos));
        let recorder =
            if config.record_events { Recorder::enabled() } else { Recorder::disabled() };
        let states = (0..n).map(|i| SyncState::new(topo.degree(NodeId::new(i as u32)))).collect();
        let edge_free_at = (0..n).map(|i| vec![0u64; topo.degree(NodeId::new(i as u32))]).collect();
        Ok(Simulator {
            topo,
            nodes,
            states,
            config,
            master_seed,
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            free_at: vec![0; n],
            crash_round,
            loss_prob,
            edge_free_at,
            rows: Vec::new(),
            rounds_executed: 0,
            max_rounds: u32::MAX,
            transcript: Transcript::new(),
            report: SimReport::default(),
            recorded: Vec::new(),
            recorder,
            outcome: None,
            scratch_inbox: Vec::new(),
            scratch_outbox: Vec::new(),
            scratch_neighbors: Vec::new(),
        })
    }

    /// The communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// All node logics, indexed by node id.
    pub fn nodes(&self) -> &[L] {
        &self.nodes
    }

    /// The statistics accumulated by the run.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Consumes the simulator, returning node logics and transcript.
    pub fn into_parts(self) -> (Vec<L>, Transcript) {
        (self.nodes, self.transcript)
    }

    /// Virtual-clock measurements of the run.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// The event recorder (empty unless `record_events` was set).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Runs the simulation until every node is done (or crashed) or some
    /// node would exceed `max_rounds`. Idempotent: calling again returns
    /// the cached outcome.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors ([`CongestError::NotNeighbor`],
    /// [`CongestError::EdgeCongestion`] under
    /// [`DuplicatePolicy::Reject`], [`CongestError::MessageTooLarge`])
    /// and returns [`CongestError::RoundLimit`] when some *live* node
    /// (crashed nodes count as done, as in the engine's `all_done`) is
    /// still not done after `max_rounds` rounds. In that case the engine
    /// executes exactly `max_rounds` rounds — some as no-ops — so the
    /// simulator pads its transcript with the same empty rows to stay
    /// bit-identical. On a protocol error the transcript is left empty.
    /// Where several violations exist, the one surfaced is the first in
    /// *virtual-time* order, which may differ from the engine's
    /// `(source, position)` order.
    pub fn run(&mut self, max_rounds: u32) -> Result<&Transcript, CongestError> {
        if let Some(outcome) = &self.outcome {
            return match outcome {
                RunOutcome::Ok => Ok(&self.transcript),
                RunOutcome::Failed(err) => Err(err.clone()),
            };
        }
        self.max_rounds = max_rounds;
        match self.drive() {
            Ok(()) => {
                let limit_hit = (0..self.nodes.len())
                    .any(|i| !self.nodes[i].is_done() && self.crash_round[i] > max_rounds);
                if limit_hit {
                    let pending = self.nodes.iter().filter(|l| !l.is_done()).count();
                    // The engine spins no-op rounds (done/crashed nodes
                    // step into empty outboxes) until the limit trips;
                    // replicate its empty trailing stats rows.
                    while self.rows.len() < max_rounds as usize {
                        let r = self.rows.len() as u32;
                        self.rows.push(RoundStats { round: r, ..RoundStats::default() });
                    }
                    self.rounds_executed = max_rounds;
                    self.finalize();
                    let err = CongestError::RoundLimit { limit: max_rounds, pending };
                    self.outcome = Some(RunOutcome::Failed(err.clone()));
                    return Err(err);
                }
                self.finalize();
                self.outcome = Some(RunOutcome::Ok);
                Ok(&self.transcript)
            }
            Err(err) => {
                self.outcome = Some(RunOutcome::Failed(err.clone()));
                Err(err)
            }
        }
    }

    /// Bootstraps round 0 and processes events to completion.
    fn drive(&mut self) -> Result<(), CongestError> {
        // Bootstrap: nodes already done emit a final round-0 pulse (their
        // neighbors will never hear from them — exactly the engine, where
        // a done node is stepped into an empty outbox forever). Crashed-
        // at-0 nodes are covered by the failure-detector initialization
        // below. Everyone else gets its round-0 step scheduled.
        for index in 0..self.nodes.len() {
            let id = NodeId::new(index as u32);
            // Perfect failure detection: receivers know the crash schedule,
            // as the engine's delivery loop does.
            for (j, &nb) in self.topo.neighbors(id).iter().enumerate() {
                let crash = self.crash_round[nb.index()];
                if crash != u32::MAX {
                    self.states[index].silence(j, crash);
                }
            }
        }
        for index in 0..self.nodes.len() {
            let id = NodeId::new(index as u32);
            if self.nodes[index].is_done() {
                self.states[index].done = true;
                self.send_final_pulse(id);
            } else if self.crash_round[index] > 0 {
                self.try_schedule(id, 0);
            }
        }
        while let Some(scheduled) = self.heap.pop() {
            debug_assert!(scheduled.time >= self.now, "virtual time must be monotone");
            self.now = scheduled.time;
            self.report.events_processed += 1;
            self.report.virtual_nanos = self.report.virtual_nanos.max(self.now);
            match scheduled.ev {
                Ev::Arrival { dst, env } => self.process_arrival(dst, env),
                Ev::Step { node, round } => self.process_step(node, round)?,
            }
        }
        Ok(())
    }

    fn push_event(&mut self, time: u64, ev: Ev<L::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, ev });
    }

    /// Buffers an arrived envelope and checks whether it unblocked the
    /// receiver's next round.
    fn process_arrival(&mut self, dst: NodeId, env: Envelope<L::Msg>) {
        let neighbors = self.topo.neighbors(dst);
        let degree = neighbors.len();
        let j = neighbors.binary_search(&env.src).expect("envelope from a non-neighbor");
        let state = &mut self.states[dst.index()];
        state.receive(j, degree, env);
        self.try_schedule(dst, self.now);
    }

    /// Schedules the node's next step if its dependencies are met, it is
    /// live, and the round limit allows it. Steps fire no earlier than the
    /// node's own compute-completion time.
    fn try_schedule(&mut self, node: NodeId, now: u64) {
        let index = node.index();
        let state = &mut self.states[index];
        if state.done || state.step_scheduled {
            return;
        }
        let round = state.next_round;
        if round >= self.crash_round[index] {
            return;
        }
        if round >= self.max_rounds {
            return;
        }
        if !state.ready() {
            return;
        }
        state.step_scheduled = true;
        let at = now.max(self.free_at[index]);
        self.push_event(at, Ev::Step { node, round });
    }

    /// Executes one node step: reassemble the inbox, run the logic through
    /// the engine's `step_into`, account the outbox against the sender's
    /// round, and emit one envelope per edge.
    fn process_step(&mut self, node: NodeId, round: u32) -> Result<(), CongestError> {
        let index = node.index();
        let t = self.now;

        // Reassemble the round inbox in ascending neighbor order; each
        // envelope preserves its sender's outbox order, so this is the
        // engine's inbox byte for byte.
        let envelopes = self.states[index].take_inbox_envelopes(round);
        let mut inbox = std::mem::take(&mut self.scratch_inbox);
        inbox.clear();
        for env in envelopes.into_iter().flatten() {
            let src = env.src;
            inbox.extend(env.payloads.into_iter().map(|m| (src, m)));
        }

        let mut outbox = std::mem::take(&mut self.scratch_outbox);
        let mut error = None;
        step_into(
            &self.topo,
            &mut self.nodes[index],
            index,
            &inbox,
            &mut outbox,
            &mut error,
            false,
            round,
            self.master_seed,
        );
        inbox.clear();
        self.scratch_inbox = inbox;
        if let Some(err) = error {
            self.scratch_outbox = outbox;
            return Err(err);
        }

        // Round bookkeeping. Every stepped round owns a stats row, even if
        // nothing was sent — the engine pushes one RoundStats per executed
        // round too.
        while self.rows.len() <= round as usize {
            let r = self.rows.len() as u32;
            self.rows.push(RoundStats { round: r, ..RoundStats::default() });
        }
        self.rounds_executed = self.rounds_executed.max(round + 1);
        let end = t + self.config.compute_nanos;
        while self.report.round_spans.len() <= round as usize {
            self.report.round_spans.push((t, end));
        }
        let span = &mut self.report.round_spans[round as usize];
        span.0 = span.0.min(t);
        span.1 = span.1.max(end);
        self.report.virtual_nanos = self.report.virtual_nanos.max(end);

        let done = self.nodes[index].is_done();
        let state = &mut self.states[index];
        state.step_scheduled = false;
        state.next_round = round + 1;
        state.done = done;

        let result = self.send_round(node, round, end, done, &mut outbox);
        outbox.clear();
        self.scratch_outbox = outbox;
        result?;

        if !done {
            // The step may already be unblocked (all next-round envelopes
            // arrived while this one computed).
            self.try_schedule(node, end);
        }
        Ok(())
    }

    /// Scans the sorted outbox with the engine's accounting (duplicate
    /// runs, fault drops, size budget) and emits one envelope per incident
    /// edge — a pulse where no payloads are addressed.
    fn send_round(
        &mut self,
        src: NodeId,
        round: u32,
        send_t: u64,
        final_round: bool,
        outbox: &mut [(NodeId, L::Msg)],
    ) -> Result<(), CongestError> {
        let policy = self.config.duplicate_policy;
        let max_bits = self.config.max_message_bits;
        let record = self.recorder.is_enabled();
        let loss = self.loss_prob[src.index()];
        // Stats accumulate in a local copy (written back below) so the
        // loop can freely borrow the queue and report.
        let mut stats = self.rows[round as usize];
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        neighbors.extend_from_slice(self.topo.neighbors(src));

        let mut cursor = 0usize;
        let mut failure = None;
        'edges: for (j, &dst) in neighbors.iter().enumerate() {
            let mut payloads = Vec::new();
            let mut env_dropped = 0u64;
            let mut run_len = 0u64;
            let mut bits_total = 0u64;
            let mut loss_rng = (loss > 0.0).then(|| {
                let key = (u64::from(src.raw()) << 32) | u64::from(dst.raw());
                NodeRng::derive_keyed(self.config.latency_seed ^ 0x105_5E5, key, round)
            });
            while let Some((d, _)) = outbox.get(cursor) {
                if *d != dst {
                    debug_assert!(*d > dst, "outbox sorted by destination");
                    break;
                }
                let pos = cursor;
                let (_, msg) = &outbox[pos];
                cursor += 1;
                run_len += 1;
                if run_len > 1 && policy == DuplicatePolicy::Reject {
                    failure = Some(CongestError::EdgeCongestion { from: src, to: dst, round });
                    break 'edges;
                }
                stats.max_messages_per_edge = stats.max_messages_per_edge.max(run_len);
                let injected = self.config.fault.is_some_and(|f| f.drops(round, src, dst));
                let lossy = !injected && loss_rng.as_mut().is_some_and(|rng| rng.bernoulli(loss));
                if injected || lossy {
                    stats.dropped += 1;
                    env_dropped += 1;
                    if record {
                        self.recorded.push((
                            round,
                            src.raw(),
                            pos,
                            Event { round, kind: EventKind::Drop, src, dst },
                        ));
                    }
                    continue;
                }
                let bits = msg.size_bits();
                if let Some(limit) = max_bits {
                    if bits > limit {
                        failure =
                            Some(CongestError::MessageTooLarge { from: src, to: dst, bits, limit });
                        break 'edges;
                    }
                }
                stats.messages += 1;
                stats.bits += bits;
                stats.max_message_bits = stats.max_message_bits.max(bits);
                bits_total += bits;
                if record {
                    self.recorded.push((
                        round,
                        src.raw(),
                        pos,
                        Event { round, kind: EventKind::Deliver, src, dst },
                    ));
                }
                payloads.push(msg.clone());
            }
            if payloads.is_empty() && env_dropped == 0 {
                self.report.pulse_envelopes += 1;
            } else {
                self.report.protocol_envelopes += 1;
            }
            let arrival = self.delivery_time(src, j, dst, round, send_t, bits_total);
            let env = Envelope { src, round, payloads, dropped: env_dropped, final_round };
            self.push_event(arrival, Ev::Arrival { dst, env });
        }
        self.rows[round as usize] = stats;
        neighbors.clear();
        self.scratch_neighbors = neighbors;
        match failure {
            Some(err) => Err(err),
            None => {
                debug_assert_eq!(cursor, outbox.len(), "every outbox message addresses a neighbor");
                Ok(())
            }
        }
    }

    /// When the envelope `src → dst` sent at `send_t` arrives: bandwidth
    /// queueing on the directed edge, partition holds, then one latency
    /// draw from the per-`(edge, round)` stream.
    fn delivery_time(
        &mut self,
        src: NodeId,
        neighbor_slot: usize,
        dst: NodeId,
        round: u32,
        send_t: u64,
        bits: u64,
    ) -> u64 {
        let mut depart = send_t;
        if let Some(rate) = self.config.bandwidth_bits_per_us {
            let tx = bits.saturating_mul(1_000) / rate.max(1);
            let free = &mut self.edge_free_at[src.index()][neighbor_slot];
            depart = (*free).max(send_t) + tx;
            *free = depart;
        }
        for w in &self.config.partitions {
            if depart >= w.start_nanos && depart < w.end_nanos && w.crosses(src, dst) {
                depart = w.end_nanos;
                self.report.partition_holds += 1;
            }
        }
        let key = (u64::from(src.raw()) << 32) | u64::from(dst.raw());
        let mut rng = NodeRng::derive_keyed(self.config.latency_seed, key, round);
        depart + self.config.latency.sample(&mut rng)
    }

    /// Emits the round-0 final pulse of a node that was done before ever
    /// stepping, so its neighbors do not wait on it.
    fn send_final_pulse(&mut self, src: NodeId) {
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        neighbors.clear();
        neighbors.extend_from_slice(self.topo.neighbors(src));
        for (j, &dst) in neighbors.iter().enumerate() {
            self.report.pulse_envelopes += 1;
            let arrival = self.delivery_time(src, j, dst, 0, 0, 0);
            let env =
                Envelope { src, round: 0, payloads: Vec::new(), dropped: 0, final_round: true };
            self.push_event(arrival, Ev::Arrival { dst, env });
        }
        neighbors.clear();
        self.scratch_neighbors = neighbors;
    }

    /// Builds the transcript, replays recorded events in engine order, and
    /// exports the simulated timeline to the obs layer.
    fn finalize(&mut self) {
        for row in self.rows.drain(..) {
            self.transcript.push(row);
        }
        if !self.recorded.is_empty() {
            self.recorded.sort_by_key(|&(round, src, pos, _)| (round, src, pos));
            if let Recorder::On(events) = &mut self.recorder {
                events.extend(self.recorded.drain(..).map(|(_, _, _, ev)| ev));
            }
        }
        if distfl_obs::enabled() {
            for (r, &(start, end)) in self.report.round_spans.iter().enumerate() {
                distfl_obs::complete_at(
                    "sim",
                    "round",
                    start,
                    end.saturating_sub(start),
                    Some(r as u64),
                );
            }
            distfl_obs::complete_at("sim", "run", 0, self.report.virtual_nanos, None);
        }
    }

    /// Per-node fault verdicts from the run's observations: equivocation
    /// and loss are accumulated receiver-side from envelope framing;
    /// crashes come from the failure detector (the schedule). The worst
    /// applicable verdict wins.
    pub fn verdicts(&self) -> Vec<FaultVerdict> {
        let n = self.nodes.len();
        let mut dropped = vec![0u64; n];
        let mut sent = vec![0u64; n];
        let mut duplicate: Vec<Option<u32>> = vec![None; n];
        for (index, state) in self.states.iter().enumerate() {
            let observer = NodeId::new(index as u32);
            for (j, &nb) in self.topo.neighbors(observer).iter().enumerate() {
                dropped[nb.index()] += state.observed_dropped[j];
                sent[nb.index()] += state.observed_payloads[j];
                if let Some(r) = state.observed_duplicate[j] {
                    let slot = &mut duplicate[nb.index()];
                    *slot = Some(slot.map_or(r, |prev| prev.min(r)));
                }
            }
        }
        (0..n)
            .map(|i| {
                if let Some(round) = duplicate[i] {
                    return FaultVerdict::Equivocated { round };
                }
                if sent[i] > 0 {
                    let rate = dropped[i] as f64 / sent[i] as f64;
                    if dropped[i] > 0 && rate > self.config.drop_threshold {
                        return FaultVerdict::DroppedAboveThreshold {
                            dropped: dropped[i],
                            sent: sent[i],
                        };
                    }
                }
                if self.crash_round[i] < self.rounds_executed {
                    return FaultVerdict::Crashed { round: self.crash_round[i] };
                }
                FaultVerdict::Honest
            })
            .collect()
    }

    /// Per-node accusations for the audit convergecast: each node reports
    /// the worst fault it *locally* observed among its neighbors, encoded
    /// with [`encode_accusation`] so a max-aggregate names the worst
    /// offender network-wide. Nodes never accuse themselves.
    pub fn accusations(&self) -> Vec<f64> {
        self.states
            .iter()
            .enumerate()
            .map(|(index, state)| {
                let observer = NodeId::new(index as u32);
                let mut best = 0.0f64;
                for (j, &nb) in self.topo.neighbors(observer).iter().enumerate() {
                    let severity = if state.observed_duplicate[j].is_some() {
                        3
                    } else if state.observed_payloads[j] > 0
                        && state.observed_dropped[j] > 0
                        && state.observed_dropped[j] as f64 / state.observed_payloads[j] as f64
                            > self.config.drop_threshold
                    {
                        2
                    } else if self.crash_round[nb.index()] < self.rounds_executed {
                        1
                    } else {
                        0
                    };
                    best = best.max(encode_accusation(nb, severity));
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CongestConfig, Network};
    use crate::fault::decode_accusation;

    /// Variable-width payload so bit accounting is non-trivial.
    #[derive(Clone, Debug, PartialEq)]
    struct Num(u64);
    impl Payload for Num {
        fn size_bits(&self) -> u64 {
            u64::from(64 - self.0.leading_zeros()) + 8
        }
    }

    /// A gossip protocol exercising inbox order, per-round RNG, and
    /// variable fan-out: every round each node folds its inbox into an
    /// accumulator, then broadcasts a salted digest until its horizon.
    #[derive(Clone, Debug, PartialEq)]
    struct Gossip {
        horizon: u32,
        acc: u64,
        done: bool,
    }
    impl Gossip {
        fn new(horizon: u32) -> Self {
            Gossip { horizon, acc: 0, done: false }
        }
    }
    impl NodeLogic for Gossip {
        type Msg = Num;
        fn step(&mut self, ctx: &mut crate::engine::StepCtx<'_, Num>) {
            for (src, m) in ctx.inbox() {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(m.0 ^ u64::from(src.raw()));
            }
            if ctx.round() + 1 >= self.horizon {
                self.done = true;
                return;
            }
            let salt = ctx.rng().below(1 << 20);
            ctx.broadcast(Num(self.acc.wrapping_add(salt) & 0xFFFF));
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn engine_run(
        topo: &Topology,
        nodes: Vec<Gossip>,
        seed: u64,
        config: CongestConfig,
        max_rounds: u32,
    ) -> (Result<(), CongestError>, Transcript, Vec<Gossip>) {
        let mut net = Network::with_config(topo.clone(), nodes, seed, config).unwrap();
        let res = net.run(max_rounds).map(|_| ()).map_err(|e| e.clone());
        (res, net.transcript().clone(), net.nodes().to_vec())
    }

    fn sim_run(
        topo: &Topology,
        nodes: Vec<Gossip>,
        seed: u64,
        config: SimConfig,
        max_rounds: u32,
    ) -> (Result<(), CongestError>, Simulator<Gossip>) {
        let mut sim = Simulator::new(topo.clone(), nodes, seed, config).unwrap();
        let res = sim.run(max_rounds).map(|_| ()).map_err(|e| e.clone());
        (res, sim)
    }

    fn gossips(n: usize, horizon: u32) -> Vec<Gossip> {
        (0..n).map(|_| Gossip::new(horizon)).collect()
    }

    #[test]
    fn transcript_matches_engine_on_default_config() {
        let topo = Topology::ring(6).unwrap();
        let (eres, etr, enodes) =
            engine_run(&topo, gossips(6, 5), 42, CongestConfig::default(), 20);
        let (sres, sim) = sim_run(&topo, gossips(6, 5), 42, SimConfig::default(), 20);
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
        assert_eq!(&enodes, sim.nodes());
        assert!(etr.total_messages() > 0);
    }

    #[test]
    fn transcript_matches_engine_across_latency_models() {
        let topo = Topology::grid(3, 4).unwrap();
        let (_, etr, enodes) = engine_run(&topo, gossips(12, 6), 7, CongestConfig::default(), 20);
        let models = [
            LatencyModel::Constant(10),
            LatencyModel::Uniform { lo: 1, hi: 1_000_000 },
            LatencyModel::LogNormal { median_nanos: 50_000.0, sigma: 1.5 },
        ];
        for model in models {
            for latency_seed in [0u64, 99] {
                let config = SimConfig { latency: model, latency_seed, ..SimConfig::default() };
                let (res, sim) = sim_run(&topo, gossips(12, 6), 7, config, 20);
                assert_eq!(res, Ok(()), "{model:?}");
                assert_eq!(&etr, sim.transcript(), "{model:?} seed {latency_seed}");
                assert_eq!(&enodes, sim.nodes(), "{model:?} seed {latency_seed}");
            }
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let topo = Topology::ring(5).unwrap();
        let config = SimConfig {
            latency: LatencyModel::Uniform { lo: 10, hi: 500_000 },
            latency_seed: 3,
            ..SimConfig::default()
        };
        let (_, a) = sim_run(&topo, gossips(5, 7), 11, config.clone(), 20);
        let (_, b) = sim_run(&topo, gossips(5, 7), 11, config, 20);
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.report(), b.report());
        assert_eq!(a.nodes(), b.nodes());
    }

    #[test]
    fn latency_seed_reshuffles_timing_but_not_transcript() {
        let topo = Topology::ring(5).unwrap();
        let mk = |latency_seed| SimConfig {
            latency: LatencyModel::Uniform { lo: 10, hi: 500_000 },
            latency_seed,
            ..SimConfig::default()
        };
        let (_, a) = sim_run(&topo, gossips(5, 7), 11, mk(3), 20);
        let (_, b) = sim_run(&topo, gossips(5, 7), 11, mk(4), 20);
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.nodes(), b.nodes());
        assert_ne!(
            a.report().virtual_nanos,
            b.report().virtual_nanos,
            "different latency seeds should land on different makespans"
        );
    }

    #[test]
    fn fault_plan_drops_identically_to_engine() {
        let topo = Topology::ring(5).unwrap();
        let plan = FaultPlan::drop_with_probability(0.3, 77);
        let econfig = CongestConfig { fault: Some(plan), ..CongestConfig::default() };
        let sconfig = SimConfig { fault: Some(plan), ..SimConfig::default() };
        let (eres, etr, enodes) = engine_run(&topo, gossips(5, 8), 13, econfig, 20);
        let (sres, sim) = sim_run(&topo, gossips(5, 8), 13, sconfig, 20);
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
        assert_eq!(&enodes, sim.nodes());
        assert!(etr.total_dropped() > 0, "plan should actually drop something");
    }

    #[test]
    fn crash_stops_a_node_like_engine_and_is_attributed() {
        let topo = Topology::ring(4).unwrap();
        let crashes = vec![(NodeId::new(1), 2)];
        let econfig = CongestConfig { crashes: crashes.clone(), ..CongestConfig::default() };
        let sconfig = SimConfig { crashes, ..SimConfig::default() };
        let (eres, etr, enodes) = engine_run(&topo, gossips(4, 6), 5, econfig, 10);
        let (sres, sim) = sim_run(&topo, gossips(4, 6), 5, sconfig, 10);
        assert_eq!(eres, Ok(()), "crashed nodes count as done for termination");
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
        assert_eq!(&enodes, sim.nodes());
        let verdicts = sim.verdicts();
        assert_eq!(verdicts[1], FaultVerdict::Crashed { round: 2 });
        assert!(verdicts.iter().enumerate().all(|(i, v)| i == 1 || *v == FaultVerdict::Honest));
    }

    #[test]
    fn crash_past_the_limit_still_trips_round_limit() {
        // Node 2 crashes *after* the limit, so it does not count as done
        // and both executions must report it pending.
        let topo = Topology::ring(4).unwrap();
        let crashes = vec![(NodeId::new(2), 50)];
        let econfig = CongestConfig { crashes: crashes.clone(), ..CongestConfig::default() };
        let sconfig = SimConfig { crashes, ..SimConfig::default() };
        let (eres, etr, _) = engine_run(&topo, gossips(4, 1_000), 5, econfig, 6);
        let (sres, sim) = sim_run(&topo, gossips(4, 1_000), 5, sconfig, 6);
        assert_eq!(eres, Err(CongestError::RoundLimit { limit: 6, pending: 4 }));
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
    }

    #[test]
    fn round_limit_without_faults_matches_engine() {
        let topo = Topology::ring(3).unwrap();
        let (eres, etr, _) = engine_run(&topo, gossips(3, 1_000), 9, CongestConfig::default(), 5);
        let (sres, sim) = sim_run(&topo, gossips(3, 1_000), 9, SimConfig::default(), 5);
        assert_eq!(eres, Err(CongestError::RoundLimit { limit: 5, pending: 3 }));
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
    }

    #[test]
    fn partition_delays_delivery_without_changing_transcript() {
        let topo = Topology::ring(4).unwrap();
        let (_, etr, enodes) = engine_run(&topo, gossips(4, 6), 21, CongestConfig::default(), 20);
        let config = SimConfig {
            partitions: vec![PartitionWindow {
                start_nanos: 0,
                end_nanos: 1_000_000_000,
                boundary: 2,
            }],
            ..SimConfig::default()
        };
        let (res, sim) = sim_run(&topo, gossips(4, 6), 21, config, 20);
        assert_eq!(res, Ok(()));
        assert_eq!(&etr, sim.transcript());
        assert_eq!(&enodes, sim.nodes());
        assert!(sim.report().partition_holds > 0, "the cut must actually hold traffic");
        assert!(
            sim.report().virtual_nanos >= 1_000_000_000,
            "held envelopes push the makespan past the window"
        );
    }

    #[test]
    fn bandwidth_cap_slows_the_clock_but_not_the_protocol() {
        let topo = Topology::ring(4).unwrap();
        let fast = SimConfig::default();
        let slow = SimConfig { bandwidth_bits_per_us: Some(1), ..SimConfig::default() };
        let (_, a) = sim_run(&topo, gossips(4, 6), 33, fast, 20);
        let (res, b) = sim_run(&topo, gossips(4, 6), 33, slow, 20);
        assert_eq!(res, Ok(()));
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.nodes(), b.nodes());
        assert!(b.report().virtual_nanos > a.report().virtual_nanos);
    }

    #[test]
    fn recorder_replays_events_in_engine_order() {
        let topo = Topology::ring(4).unwrap();
        let plan = FaultPlan::drop_with_probability(0.25, 5);
        let econfig =
            CongestConfig { fault: Some(plan), record_events: true, ..CongestConfig::default() };
        let sconfig = SimConfig {
            fault: Some(plan),
            record_events: true,
            latency: LatencyModel::Uniform { lo: 1, hi: 900_000 },
            ..SimConfig::default()
        };
        let nodes = gossips(4, 5);
        let mut net = Network::with_config(topo.clone(), nodes.clone(), 3, econfig).unwrap();
        net.run(20).unwrap();
        let (res, sim) = sim_run(&topo, nodes, 3, sconfig, 20);
        assert_eq!(res, Ok(()));
        assert_eq!(net.recorder().events(), sim.recorder().events());
        assert!(!sim.recorder().events().is_empty());
    }

    #[test]
    fn lossy_node_is_named_by_verdicts_and_accusations() {
        let topo = Topology::ring(6).unwrap();
        let config = SimConfig { lossy_nodes: vec![(NodeId::new(3), 0.8)], ..SimConfig::default() };
        let (res, sim) = sim_run(&topo, gossips(6, 20), 17, config, 40);
        assert_eq!(res, Ok(()));
        match sim.verdicts()[3] {
            FaultVerdict::DroppedAboveThreshold { dropped, sent } => {
                assert!(dropped > 0 && dropped <= sent);
            }
            ref v => panic!("expected a drop verdict for the lossy node, got {v:?}"),
        }
        assert!(sim
            .verdicts()
            .iter()
            .enumerate()
            .all(|(i, v)| i == 3 || *v == FaultVerdict::Honest));
        let worst = sim.accusations().into_iter().fold(0.0f64, f64::max);
        assert_eq!(
            decode_accusation(worst),
            Some((NodeId::new(3), 2)),
            "the convergecast input must name the lossy node"
        );
    }

    #[test]
    fn done_at_start_node_is_skipped_like_engine() {
        let topo = Topology::ring(4).unwrap();
        let mut nodes = gossips(4, 4);
        nodes[0].done = true;
        let (eres, etr, enodes) = engine_run(&topo, nodes.clone(), 8, CongestConfig::default(), 20);
        let (sres, sim) = sim_run(&topo, nodes, 8, SimConfig::default(), 20);
        assert_eq!(eres, sres);
        assert_eq!(&etr, sim.transcript());
        assert_eq!(&enodes, sim.nodes());
    }

    #[test]
    fn report_counts_pulses_and_protocol_envelopes() {
        let topo = Topology::ring(4).unwrap();
        let (_, sim) = sim_run(&topo, gossips(4, 4), 2, SimConfig::default(), 20);
        let report = sim.report();
        assert!(report.protocol_envelopes > 0);
        assert!(report.pulse_envelopes > 0, "final rounds ride on pulse envelopes");
        assert!(report.events_processed > 0);
        assert_eq!(report.round_spans.len(), sim.transcript().num_rounds() as usize);
        assert!(report.round_spans.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(report.round_spans.iter().all(|&(s, e)| s < e));
    }

    #[test]
    fn run_is_idempotent() {
        let topo = Topology::ring(3).unwrap();
        let (_, mut sim) = sim_run(&topo, gossips(3, 3), 1, SimConfig::default(), 20);
        let first = sim.transcript().clone();
        let again = sim.run(20).unwrap().clone();
        assert_eq!(first, again);
    }

    #[test]
    fn latency_models_sample_within_bounds() {
        let mut rng = NodeRng::derive(1, 2, 3);
        assert_eq!(LatencyModel::Constant(42).sample(&mut rng), 42);
        for _ in 0..1_000 {
            let v = LatencyModel::Uniform { lo: 10, hi: 20 }.sample(&mut rng);
            assert!((10..=20).contains(&v));
            let l = LatencyModel::LogNormal { median_nanos: 1_000.0, sigma: 2.0 }.sample(&mut rng);
            assert!(l >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "uniform latency needs lo <= hi")]
    fn invalid_uniform_latency_is_rejected() {
        let topo = Topology::ring(3).unwrap();
        let config =
            SimConfig { latency: LatencyModel::Uniform { lo: 5, hi: 4 }, ..SimConfig::default() };
        let _ = Simulator::new(topo, gossips(3, 3), 0, config);
    }
}
