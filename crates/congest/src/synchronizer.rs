//! The α-synchronizer: per-node round bookkeeping that lets lock-step
//! [`NodeLogic`](crate::NodeLogic) protocols run over an asynchronous
//! message substrate **unmodified**.
//!
//! ## Protocol
//!
//! Every time a node finishes its local step of round `r`, it emits exactly
//! one [`Envelope`] per incident edge: the protocol messages addressed to
//! that neighbor in round `r`, or an empty *pulse* when there are none.
//! Envelopes are round-tagged, so links need not be FIFO — a late round-3
//! envelope overtaken by a round-4 one is buffered under its own round and
//! consumed in order. A node may step round `r + 1` once it holds the
//! round-`r` envelope of every neighbor that can still send one:
//!
//! * a neighbor whose round-`d` envelope carried the *final* flag (its
//!   logic reported done during round `d`) is silent from round `d + 1` on;
//! * a crashed neighbor is silent from its crash round on — the simulator
//!   plays the role of a perfect failure detector, which is sound in this
//!   setting because crash schedules are part of the (deterministic)
//!   configuration, exactly like the lock-step engine's
//!   [`CongestConfig::crashes`](crate::CongestConfig::crashes).
//!
//! Dropped payloads still occupy their envelope: fault injection removes
//! the protocol *message*, not the link-layer framing, so a lossy edge
//! never deadlocks the synchronizer and the receiver can *count* what it
//! lost — the raw observation behind
//! [`FaultVerdict::DroppedAboveThreshold`](crate::FaultVerdict).
//!
//! ## Equivalence
//!
//! Because a node's round-`r` inbox is reassembled from the round-`r`
//! envelopes in ascending neighbor order (and each envelope preserves the
//! sender's outbox order), the inbox slice handed to `NodeLogic::step` is
//! byte-for-byte the one the lock-step engine would have produced; the
//! node RNG stream is derived from the same `(master seed, node, round)`
//! triple. Local computation is therefore bit-identical, and with it the
//! whole [`Transcript`](crate::Transcript) — the property pinned by the
//! `sim_matches_lockstep` proptests.

use crate::message::Payload;
use crate::node::NodeId;

/// Everything one directed edge carries for one round: the payloads (often
/// none — then the envelope is a pure synchronizer pulse), how many
/// payloads fault injection stripped in transit, and whether the sender's
/// logic completed during this round.
#[derive(Debug, Clone)]
pub(crate) struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Round the sender executed when emitting this envelope.
    pub round: u32,
    /// Protocol messages for the receiver, in the sender's outbox order.
    pub payloads: Vec<M>,
    /// Payloads removed by fault injection (the framing still arrives).
    pub dropped: u64,
    /// The sender reported done during this round: no envelope with a
    /// higher round will ever leave it.
    pub final_round: bool,
}

/// Envelopes buffered for one future round, one slot per neighbor (indexed
/// by the neighbor's position in the node's sorted neighbor list).
#[derive(Debug)]
struct RoundBuf<M> {
    slots: Vec<Option<Envelope<M>>>,
}

impl<M> RoundBuf<M> {
    fn new(degree: usize) -> Self {
        RoundBuf { slots: (0..degree).map(|_| None).collect() }
    }
}

/// Per-node synchronizer state: which round the node steps next, which
/// neighbors have gone silent, and the per-round envelope buffers.
#[derive(Debug)]
pub(crate) struct SyncState<M> {
    /// The next round this node's logic executes.
    pub next_round: u32,
    /// Whether a `Step` event for `next_round` is already on the queue.
    pub step_scheduled: bool,
    /// The logic reported done (checked after each step, and once at
    /// bootstrap, mirroring the engine's pre-step `is_done` gate).
    pub done: bool,
    /// First round from which each neighbor sends nothing, `u32::MAX`
    /// while the neighbor is live. Set by crash schedules (failure
    /// detector) and by final envelopes.
    silent_from: Vec<u32>,
    /// Buffered envelopes keyed by round. Entries are created on first
    /// arrival and consumed (removed) when the node steps past the round.
    bufs: std::collections::BTreeMap<u32, RoundBuf<M>>,
    /// Payloads observed as dropped per incoming edge, and envelopes
    /// received per incoming edge — the receiver-side evidence for fault
    /// attribution.
    pub observed_dropped: Vec<u64>,
    pub observed_payloads: Vec<u64>,
    /// First round (if any) an incoming edge carried more than one payload
    /// — a CONGEST duplicate observed by *this* receiver.
    pub observed_duplicate: Vec<Option<u32>>,
}

impl<M: Payload> SyncState<M> {
    pub fn new(degree: usize) -> Self {
        SyncState {
            next_round: 0,
            step_scheduled: false,
            done: false,
            silent_from: vec![u32::MAX; degree],
            bufs: std::collections::BTreeMap::new(),
            observed_dropped: vec![0; degree],
            observed_payloads: vec![0; degree],
            observed_duplicate: vec![None; degree],
        }
    }

    /// Marks a neighbor silent from `round` on (keeps the earliest bound).
    pub fn silence(&mut self, neighbor_index: usize, round: u32) {
        let slot = &mut self.silent_from[neighbor_index];
        *slot = (*slot).min(round);
    }

    /// Buffers an arrived envelope and updates the receiver-side fault
    /// observations. `degree` is this node's degree (buffer width).
    pub fn receive(&mut self, neighbor_index: usize, degree: usize, env: Envelope<M>) {
        self.observed_dropped[neighbor_index] += env.dropped;
        self.observed_payloads[neighbor_index] += env.payloads.len() as u64 + env.dropped;
        if env.payloads.len() as u64 + env.dropped > 1 {
            let first = &mut self.observed_duplicate[neighbor_index];
            *first = Some(first.map_or(env.round, |r| r.min(env.round)));
        }
        if env.final_round {
            self.silence(neighbor_index, env.round + 1);
        }
        let buf = self.bufs.entry(env.round).or_insert_with(|| RoundBuf::new(degree));
        debug_assert!(buf.slots[neighbor_index].is_none(), "one envelope per edge per round");
        buf.slots[neighbor_index] = Some(env);
    }

    /// Whether the node can execute `self.next_round`: every neighbor has
    /// either delivered its envelope for the *previous* round or gone
    /// silent before it. Round 0 has no dependencies.
    pub fn ready(&self) -> bool {
        let round = self.next_round;
        if round == 0 {
            return true;
        }
        let need = round - 1;
        let buf = self.bufs.get(&need);
        self.silent_from
            .iter()
            .enumerate()
            .all(|(j, &silent)| need >= silent || buf.is_some_and(|b| b.slots[j].is_some()))
    }

    /// Removes and returns the envelopes feeding the inbox of `round`
    /// (i.e. the buffered round `round - 1` envelopes), discarding any
    /// older buffered rounds. Slots of silent neighbors are `None`.
    pub fn take_inbox_envelopes(&mut self, round: u32) -> Vec<Option<Envelope<M>>> {
        if round == 0 {
            return Vec::new();
        }
        let need = round - 1;
        while let Some((&r, _)) = self.bufs.first_key_value() {
            if r < need {
                self.bufs.pop_first();
            } else {
                break;
            }
        }
        match self.bufs.remove(&need) {
            Some(buf) => buf.slots,
            None => Vec::new(),
        }
    }
}
