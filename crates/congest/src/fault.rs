//! Deterministic fault injection.
//!
//! The PODC 2005 model is synchronous and fault-free; fault injection exists
//! so the test suite can check that the algorithms' *safety* properties
//! (feasibility of the output where produced, no CONGEST violations) are
//! robust to lossy links, and to exercise engine code paths.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::rng::NodeRng;

/// A deterministic plan for dropping messages.
///
/// Whether a given `(round, src, dst)` delivery is dropped is a pure
/// function of the plan, so replays with the same plan observe identical
/// faults regardless of execution order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Independent drop probability per delivered message, in `[0, 1]`.
    drop_prob: f64,
    /// Seed decorrelating this plan from the protocol's own randomness.
    seed: u64,
}

impl FaultPlan {
    /// Creates a plan that drops each message independently with
    /// probability `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is not a probability (`NaN` or outside
    /// `[0, 1]`).
    pub fn drop_with_probability(drop_prob: f64, seed: u64) -> Self {
        assert!(
            drop_prob.is_finite() && (0.0..=1.0).contains(&drop_prob),
            "drop probability must be in [0, 1], got {drop_prob}"
        );
        FaultPlan { drop_prob, seed }
    }

    /// The configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Whether the message `src → dst` in `round` is dropped.
    pub fn drops(&self, round: u32, src: NodeId, dst: NodeId) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        if self.drop_prob >= 1.0 {
            return true;
        }
        // Derive a one-shot stream keyed by the full delivery coordinate.
        let key = (u64::from(src.raw()) << 32) | u64::from(dst.raw());
        let mut rng = NodeRng::derive(self.seed ^ key, src.raw() ^ 0xFA17, round);
        rng.bernoulli(self.drop_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_drops() {
        let plan = FaultPlan::drop_with_probability(0.0, 1);
        for r in 0..50 {
            assert!(!plan.drops(r, NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    fn one_probability_always_drops() {
        let plan = FaultPlan::drop_with_probability(1.0, 1);
        for r in 0..50 {
            assert!(plan.drops(r, NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    fn drops_are_deterministic() {
        let plan = FaultPlan::drop_with_probability(0.5, 77);
        for r in 0..100 {
            let a = plan.drops(r, NodeId::new(3), NodeId::new(9));
            let b = plan.drops(r, NodeId::new(3), NodeId::new(9));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn drop_rate_close_to_requested() {
        let plan = FaultPlan::drop_with_probability(0.3, 42);
        let mut dropped = 0u32;
        let trials = 20_000u32;
        for r in 0..trials {
            if plan.drops(r, NodeId::new(r % 17), NodeId::new(r % 13)) {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(trials);
        assert!((rate - 0.3).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn direction_matters() {
        let plan = FaultPlan::drop_with_probability(0.5, 7);
        let forward: Vec<bool> =
            (0..64).map(|r| plan.drops(r, NodeId::new(1), NodeId::new(2))).collect();
        let backward: Vec<bool> =
            (0..64).map(|r| plan.drops(r, NodeId::new(2), NodeId::new(1))).collect();
        assert_ne!(forward, backward);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = FaultPlan::drop_with_probability(1.5, 0);
    }
}
