//! Deterministic fault injection.
//!
//! The PODC 2005 model is synchronous and fault-free; fault injection exists
//! so the test suite can check that the algorithms' *safety* properties
//! (feasibility of the output where produced, no CONGEST violations) are
//! robust to lossy links, and to exercise engine code paths.

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::rng::NodeRng;

/// A deterministic plan for dropping messages.
///
/// Whether a given `(round, src, dst)` delivery is dropped is a pure
/// function of the plan, so replays with the same plan observe identical
/// faults regardless of execution order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Independent drop probability per delivered message, in `[0, 1]`.
    drop_prob: f64,
    /// Seed decorrelating this plan from the protocol's own randomness.
    seed: u64,
}

impl FaultPlan {
    /// Creates a plan that drops each message independently with
    /// probability `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is not a probability (`NaN` or outside
    /// `[0, 1]`).
    pub fn drop_with_probability(drop_prob: f64, seed: u64) -> Self {
        assert!(
            drop_prob.is_finite() && (0.0..=1.0).contains(&drop_prob),
            "drop probability must be in [0, 1], got {drop_prob}"
        );
        FaultPlan { drop_prob, seed }
    }

    /// The configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Whether the message `src → dst` in `round` is dropped.
    pub fn drops(&self, round: u32, src: NodeId, dst: NodeId) -> bool {
        if self.drop_prob <= 0.0 {
            return false;
        }
        if self.drop_prob >= 1.0 {
            return true;
        }
        // Derive a one-shot stream keyed by the full delivery coordinate.
        // The seed and the edge key are absorbed sequentially by
        // `derive_keyed` — folding them together with XOR here would alias
        // every `(seed, src, dst)` pair sharing the same `seed ^ key`.
        let key = (u64::from(src.raw()) << 32) | u64::from(dst.raw());
        let mut rng = NodeRng::derive_keyed(self.seed, key, round);
        rng.bernoulli(self.drop_prob)
    }
}

/// A typed per-node verdict produced by fault attribution: *which* nodes
/// misbehaved during a run, and how. Modeled on tofn's `ProtocolFaulters`
/// idea — a protocol should identify faulters, not merely tolerate them.
///
/// Verdicts are severity-ordered (see [`FaultVerdict::severity`]) so a
/// convergecast can aggregate "worst offender" with a plain max.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultVerdict {
    /// No fault observed for this node.
    Honest,
    /// The node stopped participating at the given round (crash-stop).
    Crashed {
        /// First round the node no longer executed.
        round: u32,
    },
    /// The share of the node's outbound payloads that were lost exceeded
    /// the attribution threshold.
    DroppedAboveThreshold {
        /// Payloads lost in transit from this node.
        dropped: u64,
        /// Total payloads the node sent.
        sent: u64,
    },
    /// The node sent more than one message over a single directed edge in
    /// one round — a CONGEST bandwidth violation (duplicate/equivocation).
    Equivocated {
        /// First round the violation was observed.
        round: u32,
    },
}

impl FaultVerdict {
    /// Severity rank for max-aggregation: `Honest` < `Crashed` (fail-stop)
    /// < `DroppedAboveThreshold` (lossy) < `Equivocated` (protocol
    /// violation).
    pub fn severity(&self) -> u32 {
        match self {
            FaultVerdict::Honest => 0,
            FaultVerdict::Crashed { .. } => 1,
            FaultVerdict::DroppedAboveThreshold { .. } => 2,
            FaultVerdict::Equivocated { .. } => 3,
        }
    }

    /// Whether the verdict names an actual fault.
    pub fn is_faulty(&self) -> bool {
        self.severity() > 0
    }
}

/// Packs an accusation `(accused, severity)` into an `f64` that a max
/// convergecast aggregates losslessly: `severity * 2^32 + accused.raw()`.
/// Both components fit well inside the 53-bit mantissa, any real
/// accusation (severity ≥ 1) dominates every "nothing to report" value
/// (severity 0), and ties within a severity resolve to the highest node
/// id — deterministically.
pub fn encode_accusation(accused: NodeId, severity: u32) -> f64 {
    ((u64::from(severity) << 32) | u64::from(accused.raw())) as f64
}

/// Inverse of [`encode_accusation`]. Returns `None` when the encoded value
/// carries no fault (severity 0) or is out of range.
pub fn decode_accusation(encoded: f64) -> Option<(NodeId, u32)> {
    if !(encoded.is_finite() && encoded >= 0.0 && encoded.fract() == 0.0) {
        return None;
    }
    let bits = encoded as u64;
    if bits >= (1u64 << 53) {
        return None;
    }
    let severity = (bits >> 32) as u32;
    if severity == 0 {
        return None;
    }
    Some((NodeId::new(bits as u32), severity))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_drops() {
        let plan = FaultPlan::drop_with_probability(0.0, 1);
        for r in 0..50 {
            assert!(!plan.drops(r, NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    fn one_probability_always_drops() {
        let plan = FaultPlan::drop_with_probability(1.0, 1);
        for r in 0..50 {
            assert!(plan.drops(r, NodeId::new(0), NodeId::new(1)));
        }
    }

    #[test]
    fn drops_are_deterministic() {
        let plan = FaultPlan::drop_with_probability(0.5, 77);
        for r in 0..100 {
            let a = plan.drops(r, NodeId::new(3), NodeId::new(9));
            let b = plan.drops(r, NodeId::new(3), NodeId::new(9));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn drop_rate_close_to_requested() {
        let plan = FaultPlan::drop_with_probability(0.3, 42);
        let mut dropped = 0u32;
        let trials = 20_000u32;
        for r in 0..trials {
            if plan.drops(r, NodeId::new(r % 17), NodeId::new(r % 13)) {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(trials);
        assert!((rate - 0.3).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn direction_matters() {
        let plan = FaultPlan::drop_with_probability(0.5, 7);
        let forward: Vec<bool> =
            (0..64).map(|r| plan.drops(r, NodeId::new(1), NodeId::new(2))).collect();
        let backward: Vec<bool> =
            (0..64).map(|r| plan.drops(r, NodeId::new(2), NodeId::new(1))).collect();
        assert_ne!(forward, backward);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = FaultPlan::drop_with_probability(1.5, 0);
    }

    /// Cross-plan decorrelation: distinct `(seed, src, dst)` coordinates
    /// whose `seed ^ key` collide must not share drop streams. Under the
    /// old fold-by-XOR derivation every pair below observed *identical*
    /// drops on every round.
    #[test]
    fn xor_colliding_plans_are_decorrelated() {
        let rounds = 256u32;
        for (s1, d1, s2, d2) in
            [(3u32, 9u32, 9u32, 3u32), (1, 2, 5, 6), (0, 7, 7, 0), (10, 20, 30, 40)]
        {
            let key = |a: u32, b: u32| (u64::from(a) << 32) | u64::from(b);
            let seed_a = 0xDEAD_BEEF_u64;
            // Choose seed_b so the XOR-folded stream keys collide exactly.
            let seed_b = seed_a ^ key(s1, d1) ^ key(s2, d2);
            let plan_a = FaultPlan::drop_with_probability(0.5, seed_a);
            let plan_b = FaultPlan::drop_with_probability(0.5, seed_b);
            let a: Vec<bool> =
                (0..rounds).map(|r| plan_a.drops(r, NodeId::new(s1), NodeId::new(d1))).collect();
            let b: Vec<bool> =
                (0..rounds).map(|r| plan_b.drops(r, NodeId::new(s2), NodeId::new(d2))).collect();
            assert_ne!(a, b, "colliding coordinates ({s1},{d1})/({s2},{d2}) share a stream");
        }
    }

    #[test]
    fn distinct_seeds_decorrelate_same_edge() {
        let edge = (NodeId::new(4), NodeId::new(11));
        let a = FaultPlan::drop_with_probability(0.5, 1);
        let b = FaultPlan::drop_with_probability(0.5, 2);
        let da: Vec<bool> = (0..256).map(|r| a.drops(r, edge.0, edge.1)).collect();
        let db: Vec<bool> = (0..256).map(|r| b.drops(r, edge.0, edge.1)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn verdict_severity_is_totally_ordered() {
        let verdicts = [
            FaultVerdict::Honest,
            FaultVerdict::Crashed { round: 3 },
            FaultVerdict::DroppedAboveThreshold { dropped: 5, sent: 10 },
            FaultVerdict::Equivocated { round: 1 },
        ];
        for w in verdicts.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
        assert!(!verdicts[0].is_faulty());
        assert!(verdicts[1..].iter().all(FaultVerdict::is_faulty));
    }

    #[test]
    fn accusation_encoding_round_trips_and_orders() {
        // Severity dominates node id under max-aggregation.
        let low = encode_accusation(NodeId::new(u32::MAX), 1);
        let high = encode_accusation(NodeId::new(0), 2);
        assert!(high > low);
        assert!(low > encode_accusation(NodeId::new(u32::MAX), 0));
        assert_eq!(decode_accusation(high), Some((NodeId::new(0), 2)));
        assert_eq!(decode_accusation(low), Some((NodeId::new(u32::MAX), 1)));
        // Severity 0 ("nothing to report") and junk decode to no fault.
        assert_eq!(decode_accusation(encode_accusation(NodeId::new(7), 0)), None);
        assert_eq!(decode_accusation(-1.0), None);
        assert_eq!(decode_accusation(f64::NAN), None);
        assert_eq!(decode_accusation(1.5), None);
    }
}
